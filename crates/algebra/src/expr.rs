//! Scalar expressions over tuples.

use crate::error::AlgebraError;
use crate::Result;
use pcqe_storage::{DataType, Schema, Value};
use std::cmp::Ordering;
use std::fmt;

/// Binary operators on scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always real division)
    Div,
    /// SQL `LIKE` pattern match (`%` = any run, `_` = any one character).
    Like,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Like => "LIKE",
        };
        f.write_str(s)
    }
}

/// Unary operators on scalar values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// SQL `IS NULL` (never NULL itself: true/false).
    IsNull,
    /// SQL `IS NOT NULL`.
    IsNotNull,
}

/// A scalar expression, with column references already resolved to indexes
/// in the input schema (the SQL planner does the resolution).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Value of the input column at the given index.
    Column(usize),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<ScalarExpr>,
    },
}

impl ScalarExpr {
    /// Column reference by index.
    pub fn column(i: usize) -> ScalarExpr {
        ScalarExpr::Column(i)
    }

    /// Literal value.
    pub fn literal(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    /// Column reference resolved by (possibly qualified) name.
    pub fn named(schema: &Schema, qualifier: Option<&str>, name: &str) -> Result<ScalarExpr> {
        Ok(ScalarExpr::Column(schema.resolve(qualifier, name)?))
    }

    fn binary(self, op: BinaryOp, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self = rhs`
    pub fn eq(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Eq, rhs)
    }

    /// `self <> rhs`
    pub fn ne(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Ne, rhs)
    }

    /// `self < rhs`
    pub fn lt(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Lt, rhs)
    }

    /// `self <= rhs`
    pub fn le(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Le, rhs)
    }

    /// `self > rhs`
    pub fn gt(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Gt, rhs)
    }

    /// `self >= rhs`
    pub fn ge(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Ge, rhs)
    }

    /// `self AND rhs`
    pub fn and(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::And, rhs)
    }

    /// `self OR rhs`
    pub fn or(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Or, rhs)
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> ScalarExpr {
        ScalarExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(self),
        }
    }

    /// `self + rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Add, rhs)
    }

    /// `self - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Sub, rhs)
    }

    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Mul, rhs)
    }

    /// `self / rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: ScalarExpr) -> ScalarExpr {
        self.binary(BinaryOp::Div, rhs)
    }

    /// All column indexes referenced anywhere in the expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        fn collect(e: &ScalarExpr, out: &mut Vec<usize>) {
            match e {
                ScalarExpr::Column(i) => {
                    if !out.contains(i) {
                        out.push(*i);
                    }
                }
                ScalarExpr::Literal(_) => {}
                ScalarExpr::Binary { left, right, .. } => {
                    collect(left, out);
                    collect(right, out);
                }
                ScalarExpr::Unary { expr, .. } => collect(expr, out),
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// Shift every column index by `delta` (used when a predicate moves
    /// from a joined schema onto the right input).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a shift would underflow.
    pub fn shift_columns(&self, delta: isize) -> ScalarExpr {
        match self {
            ScalarExpr::Column(i) => {
                let shifted = *i as isize + delta;
                debug_assert!(shifted >= 0, "column shift underflow");
                ScalarExpr::Column(shifted.max(0) as usize)
            }
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.shift_columns(delta)),
                right: Box::new(right.shift_columns(delta)),
            },
            ScalarExpr::Unary { op, expr } => ScalarExpr::Unary {
                op: *op,
                expr: Box::new(expr.shift_columns(delta)),
            },
        }
    }

    /// Infer the expression's output type against an input schema.
    pub fn infer_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            ScalarExpr::Column(i) => schema
                .columns()
                .get(*i)
                .map(|c| c.data_type)
                .ok_or_else(|| AlgebraError::Type(format!("column index {i} out of range"))),
            ScalarExpr::Literal(v) => Ok(v.data_type().unwrap_or(DataType::Text)),
            ScalarExpr::Binary { op, left, right } => {
                let lt = left.infer_type(schema)?;
                let rt = right.infer_type(schema)?;
                match op {
                    BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
                    | BinaryOp::And
                    | BinaryOp::Or => Ok(DataType::Bool),
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul => {
                        if lt == DataType::Int && rt == DataType::Int {
                            Ok(DataType::Int)
                        } else {
                            Ok(DataType::Real)
                        }
                    }
                    BinaryOp::Div => Ok(DataType::Real),
                    BinaryOp::Like => Ok(DataType::Bool),
                }
            }
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Not | UnaryOp::IsNull | UnaryOp::IsNotNull => Ok(DataType::Bool),
                UnaryOp::Neg => expr.infer_type(schema),
            },
        }
    }

    /// Evaluate the expression on a row of values.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        self.eval_view(&row)
    }

    /// Evaluate the expression against any [`RowView`] — a row-major
    /// slice or one logical row of a columnar batch. Monomorphization
    /// makes the slice instantiation exactly the old [`ScalarExpr::eval`]
    /// body, so both executors run the same evaluation order and surface
    /// the same first error.
    pub fn eval_view<V: RowView>(&self, row: &V) -> Result<Value> {
        match self {
            ScalarExpr::Column(i) => row
                .col(*i)
                .cloned()
                .ok_or_else(|| AlgebraError::Type(format!("column index {i} out of range"))),
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Binary { op, left, right } => {
                // Logical connectives get SQL-ish short-circuit treatment.
                match op {
                    BinaryOp::And => {
                        let l = left.eval_view(row)?;
                        if l == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = right.eval_view(row)?;
                        return eval_logic(BinaryOp::And, &l, &r);
                    }
                    BinaryOp::Or => {
                        let l = left.eval_view(row)?;
                        if l == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = right.eval_view(row)?;
                        return eval_logic(BinaryOp::Or, &l, &r);
                    }
                    _ => {}
                }
                let l = left.eval_view(row)?;
                let r = right.eval_view(row)?;
                match op {
                    BinaryOp::Eq
                    | BinaryOp::Ne
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge => eval_cmp(*op, &l, &r),
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                        eval_arith(*op, &l, &r)
                    }
                    BinaryOp::Like => eval_like(&l, &r),
                    // Short-circuit handling above returned early; if
                    // control ever falls through, `eval_logic` computes the
                    // same three-valued result (no panic path, PCQE-P002).
                    BinaryOp::And | BinaryOp::Or => eval_logic(*op, &l, &r),
                }
            }
            ScalarExpr::Unary { op, expr } => {
                let v = expr.eval_view(row)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        Value::Null => Ok(Value::Null),
                        other => Err(AlgebraError::Type(format!("NOT applied to {other}"))),
                    },
                    UnaryOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Real(r) => Ok(Value::Real(-r)),
                        Value::Null => Ok(Value::Null),
                        other => Err(AlgebraError::Type(format!("negation of {other}"))),
                    },
                    UnaryOp::IsNull => Ok(Value::Bool(v.is_null())),
                    UnaryOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
                }
            }
        }
    }

    /// Evaluate the expression as a predicate: `true` only when the result
    /// is boolean true (NULL counts as false, SQL-style).
    pub fn eval_predicate(&self, row: &[Value]) -> Result<bool> {
        self.eval_predicate_view(&row)
    }

    /// [`ScalarExpr::eval_predicate`] over any [`RowView`].
    pub fn eval_predicate_view<V: RowView>(&self, row: &V) -> Result<bool> {
        match self.eval_view(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(AlgebraError::Type(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }
}

/// Row access for expression evaluation: implemented by row-major value
/// slices and by one logical row of a columnar batch, so the tuple and
/// vectorized executors share a single evaluation body.
pub trait RowView {
    /// The value in column `i`, if in range.
    fn col(&self, i: usize) -> Option<&Value>;
}

impl RowView for &[Value] {
    fn col(&self, i: usize) -> Option<&Value> {
        self.get(i)
    }
}

/// One logical row of a columnar batch: borrowed column vectors plus a
/// row index, evaluated without gathering the row into a scratch buffer.
pub struct ColumnarRow<'a> {
    /// The batch's column vectors (all the same length).
    pub cols: &'a [Vec<Value>],
    /// The row index within each column.
    pub row: usize,
}

impl RowView for ColumnarRow<'_> {
    fn col(&self, i: usize) -> Option<&Value> {
        self.cols.get(i).and_then(|c| c.get(self.row))
    }
}

fn eval_logic(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    let as_bool = |v: &Value| -> Result<Option<bool>> {
        match v {
            Value::Bool(b) => Ok(Some(*b)),
            Value::Null => Ok(None),
            other => Err(AlgebraError::Type(format!("logic applied to {other}"))),
        }
    };
    let (a, b) = (as_bool(l)?, as_bool(r)?);
    // Three-valued logic.
    let out = match op {
        BinaryOp::And => match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinaryOp::Or => match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        other => {
            return Err(AlgebraError::Type(format!(
                "{other:?} is not a logical connective"
            )))
        }
    };
    Ok(out.map_or(Value::Null, Value::Bool))
}

fn eval_cmp(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    let Some(ord) = l.sql_cmp(r) else {
        // NULL or incomparable types → NULL (filtered out by predicates).
        if l.is_null() || r.is_null() {
            return Ok(Value::Null);
        }
        return Err(AlgebraError::Type(format!("cannot compare {l} with {r}")));
    };
    let b = match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::Ne => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::Le => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::Ge => ord != Ordering::Less,
        other => {
            return Err(AlgebraError::Type(format!(
                "{other:?} is not a comparison operator"
            )))
        }
    };
    Ok(Value::Bool(b))
}

/// SQL LIKE: `%` matches any run (including empty), `_` any one char.
fn eval_like(l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let (Some(text), Some(pattern)) = (l.as_text(), r.as_text()) else {
        return Err(AlgebraError::Type(format!(
            "LIKE needs text operands, got {l} and {r}"
        )));
    };
    Ok(Value::Bool(like_match(
        &text.chars().collect::<Vec<_>>(),
        &pattern.chars().collect::<Vec<_>>(),
    )))
}

fn like_match(text: &[char], pattern: &[char]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some(('%', rest)) => {
            // Greedy with backtracking: try every split point. `get`
            // instead of slicing keeps the matcher panic-free (PCQE-P002).
            (0..=text.len()).any(|i| text.get(i..).is_some_and(|t| like_match(t, rest)))
        }
        Some(('_', rest)) => text.split_first().is_some_and(|(_, t)| like_match(t, rest)),
        Some((c, rest)) => text
            .split_first()
            .is_some_and(|(t0, t)| t0 == c && like_match(t, rest)),
    }
}

fn eval_arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op != BinaryOp::Div {
        if let (Value::Int(a), Value::Int(b)) = (l, r) {
            let out = match op {
                BinaryOp::Add => a.checked_add(*b),
                BinaryOp::Sub => a.checked_sub(*b),
                BinaryOp::Mul => a.checked_mul(*b),
                other => {
                    return Err(AlgebraError::Type(format!(
                        "{other:?} is not an arithmetic operator"
                    )))
                }
            };
            return out
                .map(Value::Int)
                .ok_or_else(|| AlgebraError::Type("integer overflow".into()));
        }
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(AlgebraError::Type(format!(
                "arithmetic on non-numeric values {l}, {r}"
            )))
        }
    };
    let out = match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            // Exact-zero check on purpose (see lint-allow.toml, PCQE-D004).
            #[allow(clippy::float_cmp)]
            if b == 0.0 {
                return Err(AlgebraError::Type("division by zero".into()));
            }
            a / b
        }
        other => {
            return Err(AlgebraError::Type(format!(
                "{other:?} is not an arithmetic operator"
            )))
        }
    };
    Ok(Value::Real(out))
}

impl fmt::Display for ScalarExpr {
    /// Compact infix rendering for plan output: columns as `#i` (positions
    /// in the input schema), text literals quoted, compound expressions
    /// parenthesised. Deterministic — used in golden EXPLAIN snapshots.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(i) => write!(f, "#{i}"),
            ScalarExpr::Literal(Value::Text(s)) => write!(f, "'{s}'"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::IsNull => write!(f, "({expr} IS NULL)"),
                UnaryOp::IsNotNull => write!(f, "({expr} IS NOT NULL)"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::text("abc"),
            Value::Real(2.5),
            Value::Null,
        ]
    }

    #[test]
    fn column_and_literal() {
        let r = row();
        assert_eq!(ScalarExpr::column(0).eval(&r).unwrap(), Value::Int(10));
        assert_eq!(
            ScalarExpr::literal(Value::Bool(true)).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert!(ScalarExpr::column(9).eval(&r).is_err());
    }

    #[test]
    fn comparisons_coerce_numerics() {
        let r = row();
        let e = ScalarExpr::column(0).gt(ScalarExpr::literal(Value::Real(9.5)));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e = ScalarExpr::column(2).le(ScalarExpr::literal(Value::Int(2)));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn null_comparisons_yield_null_and_fail_predicates() {
        let r = row();
        let e = ScalarExpr::column(3).eq(ScalarExpr::literal(Value::Int(1)));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&r).unwrap());
    }

    #[test]
    fn incomparable_types_error() {
        let r = row();
        let e = ScalarExpr::column(1).lt(ScalarExpr::literal(Value::Int(1)));
        assert!(e.eval(&r).is_err());
    }

    #[test]
    fn three_valued_logic() {
        let r = row();
        let null_cmp = ScalarExpr::column(3).eq(ScalarExpr::literal(Value::Int(1)));
        let truth = ScalarExpr::literal(Value::Bool(true));
        let falsity = ScalarExpr::literal(Value::Bool(false));
        // NULL OR TRUE = TRUE; NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
        assert_eq!(
            null_cmp.clone().or(truth.clone()).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            null_cmp.clone().and(falsity).eval(&r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(null_cmp.and(truth).eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        let r = row();
        // RHS would error (NOT on an int), but LHS short-circuits.
        let bad = ScalarExpr::column(0).not();
        let e = ScalarExpr::literal(Value::Bool(false)).and(bad.clone());
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
        let e = ScalarExpr::literal(Value::Bool(true)).or(bad);
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic_typing() {
        let r = row();
        let int_sum = ScalarExpr::column(0).add(ScalarExpr::literal(Value::Int(5)));
        assert_eq!(int_sum.eval(&r).unwrap(), Value::Int(15));
        let mixed = ScalarExpr::column(0).mul(ScalarExpr::column(2));
        assert_eq!(mixed.eval(&r).unwrap(), Value::Real(25.0));
        let div = ScalarExpr::column(0).div(ScalarExpr::literal(Value::Int(4)));
        assert_eq!(div.eval(&r).unwrap(), Value::Real(2.5));
        let div0 = ScalarExpr::column(0).div(ScalarExpr::literal(Value::Int(0)));
        assert!(div0.eval(&r).is_err());
    }

    #[test]
    fn overflow_is_reported() {
        let r = vec![Value::Int(i64::MAX)];
        let e = ScalarExpr::column(0).add(ScalarExpr::literal(Value::Int(1)));
        assert!(e.eval(&r).is_err());
    }

    #[test]
    fn like_patterns() {
        let like = |text: &str, pattern: &str| {
            ScalarExpr::literal(Value::text(text))
                .binary(BinaryOp::Like, ScalarExpr::literal(Value::text(pattern)))
                .eval(&[])
                .unwrap()
        };
        assert_eq!(like("SkyCam", "Sky%"), Value::Bool(true));
        assert_eq!(like("SkyCam", "%Cam"), Value::Bool(true));
        assert_eq!(like("SkyCam", "S_yCam"), Value::Bool(true));
        assert_eq!(like("SkyCam", "sky%"), Value::Bool(false), "case-sensitive");
        assert_eq!(like("", "%"), Value::Bool(true));
        assert_eq!(like("", "_"), Value::Bool(false));
        assert_eq!(like("abc", "%b%"), Value::Bool(true));
        assert_eq!(like("abc", "a%c%d"), Value::Bool(false));
        // NULL propagates; non-text errors.
        let null_like = ScalarExpr::literal(Value::Null)
            .binary(BinaryOp::Like, ScalarExpr::literal(Value::text("%")));
        assert_eq!(null_like.eval(&[]).unwrap(), Value::Null);
        let bad = ScalarExpr::literal(Value::Int(1))
            .binary(BinaryOp::Like, ScalarExpr::literal(Value::text("%")));
        assert!(bad.eval(&[]).is_err());
    }

    #[test]
    fn is_null_operators() {
        let r = vec![Value::Null, Value::Int(1)];
        let isnull = |i: usize| ScalarExpr::Unary {
            op: UnaryOp::IsNull,
            expr: Box::new(ScalarExpr::column(i)),
        };
        let isnotnull = |i: usize| ScalarExpr::Unary {
            op: UnaryOp::IsNotNull,
            expr: Box::new(ScalarExpr::column(i)),
        };
        assert_eq!(isnull(0).eval(&r).unwrap(), Value::Bool(true));
        assert_eq!(isnull(1).eval(&r).unwrap(), Value::Bool(false));
        assert_eq!(isnotnull(0).eval(&r).unwrap(), Value::Bool(false));
        assert_eq!(isnotnull(1).eval(&r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unary_ops() {
        let r = row();
        let neg = ScalarExpr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(ScalarExpr::column(0)),
        };
        assert_eq!(neg.eval(&r).unwrap(), Value::Int(-10));
        let not = ScalarExpr::literal(Value::Bool(true)).not();
        assert_eq!(not.eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn type_inference() {
        use pcqe_storage::{Column, Schema};
        let schema = Schema::new(vec![
            Column::new("i", DataType::Int),
            Column::new("r", DataType::Real),
        ])
        .unwrap();
        let ii = ScalarExpr::column(0).add(ScalarExpr::column(0));
        assert_eq!(ii.infer_type(&schema).unwrap(), DataType::Int);
        let ir = ScalarExpr::column(0).add(ScalarExpr::column(1));
        assert_eq!(ir.infer_type(&schema).unwrap(), DataType::Real);
        let cmp = ScalarExpr::column(0).lt(ScalarExpr::column(1));
        assert_eq!(cmp.infer_type(&schema).unwrap(), DataType::Bool);
    }
}
