//! Lowering logical plans to physical plans with a deterministic cost
//! model.
//!
//! The planner consumes the *optimised* logical plan (selections already
//! pushed to just above the scans by [`crate::optimize`]) and makes two
//! kinds of decisions:
//!
//! * **Access paths** — a `Select` directly over a `Scan` becomes either a
//!   [`PhysicalPlan::TableScan`] with the predicate pushed in as a
//!   residual, or — when an equality conjunct `column = literal` hits an
//!   [`pcqe_storage::EqualityIndex`] — a [`PhysicalPlan::IndexScan`] that
//!   fetches only the matching rows.
//! * **Join strategies** — a `Join` with hashable equality conjuncts
//!   becomes a [`PhysicalPlan::HashJoin`] or a
//!   [`PhysicalPlan::NestedLoopJoin`] depending on estimated input
//!   cardinalities; without equality conjuncts it is always a nested loop.
//!
//! # Why every choice is output-identical
//!
//! Correctness never depends on the cost model — only running time does:
//!
//! * An index lookup returns row positions in insertion order, the exact
//!   subset a sequential scan + filter would keep (index keys are typed
//!   exactly: only `INT`/`TEXT`/`BOOL` columns are indexable, and the key
//!   literal's type must match the column's, so map equality coincides
//!   with SQL `=`; `NULL` never matches in either implementation).
//! * Hash join and nested loop produce identical row order: both emit,
//!   for each left row in input order, its matching right rows in right
//!   input order. The planner may only *substitute* a nested loop for a
//!   hash join when every key column's type has exact equality
//!   (`INT`/`TEXT`/`BOOL`), where `=`'s coercing comparison and the hash
//!   table's ordered-map equality provably agree; `REAL` keys (where
//!   `0.0`/`-0.0` and NaN make the two differ) always keep the hash
//!   strategy the logical executor uses.

use crate::exec::split_equi_conjuncts;
use crate::expr::{BinaryOp, ScalarExpr};
use crate::physical::plan::PhysicalPlan;
use crate::plan::Plan;
use crate::Result;
use pcqe_storage::{Catalog, DataType, TableStats, Value};

/// Per-row cost multiplier for building the hash table, relative to one
/// nested-loop predicate evaluation. Build inserts clone key values into an
/// ordered map, so they are several times the cost of a probe comparison.
const HASH_BUILD_COST: usize = 4;

/// Lower an (already optimised) logical plan to a physical plan.
pub fn lower(plan: &Plan, catalog: &Catalog) -> Result<PhysicalPlan> {
    Ok(match plan {
        Plan::Scan { table, alias } => PhysicalPlan::TableScan {
            table: table.clone(),
            alias: alias.clone(),
            residual: None,
        },
        Plan::Select { input, predicate } => match &**input {
            Plan::Scan { table, alias } => plan_scan(table, alias.clone(), predicate, catalog)?,
            other => PhysicalPlan::Filter {
                input: Box::new(lower(other, catalog)?),
                predicate: predicate.clone(),
            },
        },
        Plan::Project {
            input,
            items,
            distinct,
        } => PhysicalPlan::Project {
            input: Box::new(lower(input, catalog)?),
            items: items.clone(),
            distinct: *distinct,
        },
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let left_schema = left.schema(catalog)?;
            let right_schema = right.schema(catalog)?;
            let left_arity = left_schema.arity();
            // Same hashability rule as the logical executor: only
            // same-typed column pairs may be hash keys.
            let hashable = |lc: usize, rc: usize| {
                let lt = left_schema.columns().get(lc).map(|c| c.data_type);
                let rt = right_schema
                    .columns()
                    .get(rc - left_arity)
                    .map(|c| c.data_type);
                lt.is_some() && lt == rt
            };
            let (equi, residual) = split_equi_conjuncts(predicate, left_arity, hashable);
            let l = lower(left, catalog)?;
            let r = lower(right, catalog)?;
            if equi.is_empty() {
                PhysicalPlan::NestedLoopJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                    predicate: Some(predicate.clone()),
                }
            } else {
                // A nested loop may replace the hash join only when every
                // key type has exact (non-coercing) equality — see module
                // docs for the REAL-key caveat.
                let exact_keys = equi.iter().all(|&(lc, _)| {
                    matches!(
                        left_schema.columns().get(lc).map(|c| c.data_type),
                        Some(DataType::Int | DataType::Text | DataType::Bool)
                    )
                });
                let lrows = estimate(&l, catalog);
                let rrows = estimate(&r, catalog);
                let cost_nl = lrows.saturating_mul(rrows);
                let cost_hash = lrows.saturating_add(rrows.saturating_mul(HASH_BUILD_COST));
                if exact_keys && cost_nl < cost_hash {
                    PhysicalPlan::NestedLoopJoin {
                        left: Box::new(l),
                        right: Box::new(r),
                        predicate: Some(predicate.clone()),
                    }
                } else {
                    PhysicalPlan::HashJoin {
                        left: Box::new(l),
                        right: Box::new(r),
                        keys: equi,
                        residual,
                    }
                }
            }
        }
        Plan::Product { left, right } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(lower(left, catalog)?),
            right: Box::new(lower(right, catalog)?),
            predicate: None,
        },
        Plan::Union { left, right } => PhysicalPlan::Union {
            left: Box::new(lower(left, catalog)?),
            right: Box::new(lower(right, catalog)?),
        },
        Plan::Difference { left, right } => PhysicalPlan::Difference {
            left: Box::new(lower(left, catalog)?),
            right: Box::new(lower(right, catalog)?),
        },
        Plan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(lower(input, catalog)?),
            keys: keys.clone(),
        },
        Plan::Limit { input, count } => PhysicalPlan::Limit {
            input: Box::new(lower(input, catalog)?),
            count: *count,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => PhysicalPlan::Aggregate {
            input: Box::new(lower(input, catalog)?),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
    })
}

/// Choose the access path for a filtered base-table scan.
fn plan_scan(
    table: &str,
    alias: Option<String>,
    predicate: &ScalarExpr,
    catalog: &Catalog,
) -> Result<PhysicalPlan> {
    let t = catalog.table(table)?;
    let stats = t.stats();
    let mut conjuncts = Vec::new();
    collect_conjuncts(predicate, &mut conjuncts);
    // Find the cheapest usable index among `column = literal` conjuncts.
    // Determinism: strict improvement (`<`) keeps the earliest conjunct on
    // ties, so the choice is a pure function of plan + catalog state.
    let mut best: Option<(usize, usize, Value)> = None; // (est, conjunct idx, key)
    let mut best_column = 0usize;
    for (i, c) in conjuncts.iter().enumerate() {
        let Some((column, key)) = index_key(c) else {
            continue;
        };
        let Some(col) = t.schema().columns().get(column) else {
            continue;
        };
        // The key literal's type must match the column exactly; a coerced
        // key (e.g. REAL literal on an INT column) cannot use the index
        // because map equality would not coincide with SQL `=`.
        if key.is_null() || key.data_type() != Some(col.data_type) {
            continue;
        }
        if t.index_on(column).is_none() {
            continue;
        }
        let est = stats.eq_selectivity_rows(column);
        if best.as_ref().is_none_or(|(b, _, _)| est < *b) {
            best = Some((est, i, key.clone()));
            best_column = column;
        }
    }
    match best {
        Some((_, chosen, key)) => {
            let residual = and_all(
                conjuncts
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != chosen)
                    .map(|(_, c)| c.clone())
                    .collect(),
            );
            let column_name = t
                .schema()
                .columns()
                .get(best_column)
                .map(|c| c.name.clone())
                .unwrap_or_default();
            Ok(PhysicalPlan::IndexScan {
                table: table.to_owned(),
                alias,
                column: best_column,
                column_name,
                key,
                residual,
            })
        }
        None => Ok(PhysicalPlan::TableScan {
            table: table.to_owned(),
            alias,
            residual: Some(predicate.clone()),
        }),
    }
}

/// If `expr` is `column = literal` (either side), return the pair.
fn index_key(expr: &ScalarExpr) -> Option<(usize, &Value)> {
    let ScalarExpr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = expr
    else {
        return None;
    };
    match (&**left, &**right) {
        (ScalarExpr::Column(c), ScalarExpr::Literal(v))
        | (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => Some((*c, v)),
        _ => None,
    }
}

/// Split on top-level ANDs.
fn collect_conjuncts(expr: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match expr {
        ScalarExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// AND a list of conjuncts back together (`None` when empty).
fn and_all(mut conjuncts: Vec<ScalarExpr>) -> Option<ScalarExpr> {
    if conjuncts.is_empty() {
        return None;
    }
    let first = conjuncts.remove(0);
    Some(conjuncts.into_iter().fold(first, |acc, c| acc.and(c)))
}

/// Estimated output cardinality of a physical operator.
///
/// Deterministic integer arithmetic over live table statistics
/// ([`pcqe_storage::TableStats`]): scans use real row counts; equality
/// conjuncts on a column with a known NDV divide by that NDV, falling
/// back to the textbook 1/10 only when no statistic exists; comparisons
/// use 1/3; joins assume 1/10 selectivity over the cross product.
/// Estimates steer strategy choice only — never results.
pub fn estimate(plan: &PhysicalPlan, catalog: &Catalog) -> usize {
    match plan {
        PhysicalPlan::TableScan {
            table, residual, ..
        } => {
            let t = catalog.table(table).ok();
            let base = t.map(|t| t.len()).unwrap_or(0);
            match residual {
                Some(p) => predicate_rows(base, p, t.map(|t| t.stats()).as_ref()),
                None => base,
            }
        }
        PhysicalPlan::IndexScan {
            table,
            column,
            residual,
            ..
        } => {
            let stats = catalog.table(table).ok().map(|t| t.stats());
            let base = stats
                .as_ref()
                .map(|s| s.eq_selectivity_rows(*column))
                .unwrap_or(0);
            match residual {
                Some(p) => predicate_rows(base, p, stats.as_ref()),
                None => base,
            }
        }
        PhysicalPlan::Filter { input, predicate } => {
            predicate_rows(estimate(input, catalog), predicate, None)
        }
        PhysicalPlan::Project { input, .. } | PhysicalPlan::Sort { input, .. } => {
            estimate(input, catalog)
        }
        PhysicalPlan::HashJoin { left, right, .. } => estimate(left, catalog)
            .saturating_mul(estimate(right, catalog))
            .div_ceil(10),
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let cross = estimate(left, catalog).saturating_mul(estimate(right, catalog));
            match predicate {
                Some(p) => predicate_rows(cross, p, None),
                None => cross,
            }
        }
        PhysicalPlan::Union { left, right } => {
            estimate(left, catalog).saturating_add(estimate(right, catalog))
        }
        PhysicalPlan::Difference { left, .. } => estimate(left, catalog),
        PhysicalPlan::Limit { input, count } => estimate(input, catalog).min(*count),
        PhysicalPlan::Aggregate { input, .. } => estimate(input, catalog).div_ceil(10).max(1),
    }
}

/// Scale a cardinality by per-conjunct selectivity guesses. When `stats`
/// are available (the predicate reads a base table directly), an
/// equality conjunct `column = literal` on a column with a known NDV
/// keeps `rows / ndv` rows — the uniform-distribution estimate the index
/// path already uses — instead of the blind 1/10. An NDV of 2 then
/// correctly predicts half the rows surviving where 1/10 would
/// undercount five-fold and steer the join chooser toward a nested loop
/// that is quadratically wrong on the real cardinality.
fn predicate_rows(base: usize, predicate: &ScalarExpr, stats: Option<&TableStats>) -> usize {
    let mut conjuncts = Vec::new();
    collect_conjuncts(predicate, &mut conjuncts);
    let mut rows = base;
    for c in &conjuncts {
        if let ScalarExpr::Binary { op, .. } = c {
            rows = match op {
                BinaryOp::Eq => {
                    let ndv = stats
                        .zip(index_key(c))
                        .and_then(|(s, (column, _))| s.distinct_keys(column));
                    match ndv {
                        Some(n) if n > 0 => rows.div_ceil(n),
                        _ => rows.div_ceil(10),
                    }
                }
                BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => rows.div_ceil(3),
                _ => rows,
            };
        }
    }
    rows.min(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcqe_storage::{Column, Schema};

    /// 36 orders (cust = i%6, region = i%2, flag = i%3) joined to 5
    /// customers. With both filter columns indexed the planner knows
    /// NDV(flag) = 3 < NDV(region)'s estimate, so the index scan takes
    /// `flag = 1` and `region = 0` stays residual.
    fn crossover_catalog(index_region: bool) -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "orders",
            Schema::new(vec![
                Column::new("cust", DataType::Int),
                Column::new("region", DataType::Int),
                Column::new("flag", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "customers",
            Schema::new(vec![Column::new("id", DataType::Int)]).unwrap(),
        )
        .unwrap();
        for i in 0..36i64 {
            c.insert(
                "orders",
                vec![Value::Int(i % 6), Value::Int(i % 2), Value::Int(i % 3)],
                0.9,
            )
            .unwrap();
        }
        for id in 0..5i64 {
            c.insert("customers", vec![Value::Int(id)], 0.9).unwrap();
        }
        c.create_index("orders", "flag").unwrap();
        if index_region {
            c.create_index("orders", "region").unwrap();
        }
        c
    }

    /// The filtered-orders ⋈ customers plan, selections already pushed
    /// down as the optimiser would leave them.
    fn crossover_plan() -> Plan {
        let filtered = Plan::scan("orders").select(
            ScalarExpr::column(1)
                .eq(ScalarExpr::literal(Value::Int(0)))
                .and(ScalarExpr::column(2).eq(ScalarExpr::literal(Value::Int(1)))),
        );
        filtered.join(
            Plan::scan("customers"),
            ScalarExpr::column(0).eq(ScalarExpr::column(3)),
        )
    }

    /// NDV-aware residual selectivity flips the join strategy across the
    /// hash/nested-loop crossover. With NDV(region) = 2 known, 6 of the
    /// 12 index-scanned rows survive the residual and the hash join wins
    /// (30 = 6·5 nested-loop probes vs 26 = 6 + 4·5 build+probe); blind
    /// to the statistic, the old 1/10 guess predicted 2 rows and picked
    /// the nested loop (10 < 22). Both strategies return identical rows —
    /// only speed is at stake — but the estimate must use what it knows.
    #[test]
    fn ndv_aware_selectivity_crosses_the_join_strategy_over() {
        let with_stats = crossover_catalog(true);
        let phys = lower(&crossover_plan(), &with_stats).unwrap();
        assert!(
            phys.to_string().contains("HashJoin"),
            "NDV-aware estimate must pick the hash join:\n{phys}"
        );

        let without_stats = crossover_catalog(false);
        let phys = lower(&crossover_plan(), &without_stats).unwrap();
        assert!(
            phys.to_string().contains("NestedLoopJoin"),
            "without region stats the 1/10 fallback keeps the nested loop:\n{phys}"
        );
    }

    /// The estimate itself: 36 rows → 12 past the `flag = 1` index scan
    /// (NDV 3) → 6 past the `region = 0` residual (NDV 2), against the
    /// flat-guess 2 when the region index (and hence its NDV) is absent.
    #[test]
    fn residual_equality_estimates_divide_by_known_ndv() {
        let with_stats = crossover_catalog(true);
        let scan = lower(
            &Plan::scan("orders").select(
                ScalarExpr::column(1)
                    .eq(ScalarExpr::literal(Value::Int(0)))
                    .and(ScalarExpr::column(2).eq(ScalarExpr::literal(Value::Int(1)))),
            ),
            &with_stats,
        )
        .unwrap();
        assert_eq!(estimate(&scan, &with_stats), 6);

        let without_stats = crossover_catalog(false);
        let scan = lower(
            &Plan::scan("orders").select(
                ScalarExpr::column(1)
                    .eq(ScalarExpr::literal(Value::Int(0)))
                    .and(ScalarExpr::column(2).eq(ScalarExpr::literal(Value::Int(1)))),
            ),
            &without_stats,
        )
        .unwrap();
        assert_eq!(estimate(&scan, &without_stats), 2);
    }
}
