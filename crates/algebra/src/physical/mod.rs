//! Logical → physical planning and physical execution.
//!
//! This module turns the optimised logical [`crate::Plan`] into a
//! [`PhysicalPlan`] — a tree of *concrete* operators with explicit access
//! paths (table scan vs equality-index scan), join strategies (hash join
//! vs nested loop, chosen by deterministic cardinality estimates over
//! [`pcqe_storage::TableStats`]) and pushed-down predicates — and then
//! executes that tree with the same lineage semantics as the logical
//! executor.
//!
//! Layering:
//!
//! * [`plan`] — the [`PhysicalPlan`] tree, its schema rules, its
//!   `EXPLAIN`-grade rendering and [`render_side_by_side`] for the shell's
//!   `.plan` command;
//! * [`planner`] — [`lower`], the cost-based lowering, plus the
//!   [`estimate`] cardinality model that drives it;
//! * [`exec`] — [`execute_physical`] and friends, bit-identical to the
//!   logical [`crate::execute`] for any lowered plan.
//!
//! The invariant tying the three together: **planning is a pure
//! performance decision**. Every physical plan produced by [`lower`]
//! executes to a result set bit-identical to the logical plan it came
//! from — same rows, same order, same lineage — so confidence policies
//! (Section 3 of the paper) see exactly the same tuples regardless of
//! which strategies the planner picked.

pub mod exec;
pub mod plan;
pub mod planner;
pub mod vexec;

pub use exec::{
    execute_physical, execute_physical_profiled, execute_physical_traced, execute_physical_with,
};
pub use plan::{render_side_by_side, PhysicalPlan};
pub use planner::{estimate, lower};
pub use vexec::{
    execute_vectorized, execute_vectorized_profiled, execute_vectorized_traced,
    execute_vectorized_with,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::eq_columns;
    use crate::expr::ScalarExpr;
    use crate::plan::{Plan, ProjItem};
    use crate::{execute, execute_profiled, optimize};
    use pcqe_par::Parallelism;
    use pcqe_storage::{Catalog, Column, DataType, Schema, Value};

    /// The paper's running-example database (Tables 1 and 2).
    fn paper_db() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "Proposal",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("proposal", DataType::Text),
                Column::new("funding", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "CompanyInfo",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("income", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        c.insert(
            "Proposal",
            vec![
                Value::text("HighReach"),
                Value::text("expansion"),
                Value::Real(2_000_000.0),
            ],
            0.5,
        )
        .unwrap();
        c.insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v1"),
                Value::Real(800_000.0),
            ],
            0.3,
        )
        .unwrap();
        c.insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v2"),
                Value::Real(900_000.0),
            ],
            0.4,
        )
        .unwrap();
        c.insert(
            "CompanyInfo",
            vec![Value::text("SkyCam"), Value::Real(500_000.0)],
            0.1,
        )
        .unwrap();
        c
    }

    /// Π_company,income( σ_funding<1M(Proposal) ⋈ CompanyInfo ).
    fn paper_plan(catalog: &Catalog) -> Plan {
        let scan_p = Plan::scan("Proposal");
        let p_schema = scan_p.schema(catalog).unwrap();
        let sel = scan_p.select(
            ScalarExpr::named(&p_schema, None, "funding")
                .unwrap()
                .lt(ScalarExpr::literal(Value::Real(1_000_000.0))),
        );
        let joined_schema = sel
            .schema(catalog)
            .unwrap()
            .join(&Plan::scan("CompanyInfo").schema(catalog).unwrap());
        let join = sel.join(
            Plan::scan("CompanyInfo"),
            eq_columns(
                &joined_schema,
                (Some("Proposal"), "company"),
                (Some("CompanyInfo"), "company"),
            )
            .unwrap(),
        );
        let join_schema = join.schema(catalog).unwrap();
        join.project(vec![
            ProjItem::new(
                ScalarExpr::named(&join_schema, Some("CompanyInfo"), "company").unwrap(),
                "company",
            ),
            ProjItem::new(
                ScalarExpr::named(&join_schema, Some("CompanyInfo"), "income").unwrap(),
                "income",
            ),
        ])
    }

    #[test]
    fn paper_example_lowers_to_nested_loop_on_tiny_inputs() {
        let catalog = paper_db();
        let plan = optimize(&paper_plan(&catalog), &catalog).unwrap();
        let phys = lower(&plan, &catalog).unwrap();
        let text = phys.to_string();
        // 3×1 rows: a nested loop beats building a hash table. The σ is
        // pushed into the Proposal scan as a residual.
        assert!(text.contains("NestedLoopJoin"), "got:\n{text}");
        assert!(text.contains("TableScan Proposal [filter:"), "got:\n{text}");
        assert!(text.contains("TableScan CompanyInfo"), "got:\n{text}");
    }

    #[test]
    fn physical_execution_matches_logical_on_paper_example() {
        let catalog = paper_db();
        for plan in [
            paper_plan(&catalog),
            optimize(&paper_plan(&catalog), &catalog).unwrap(),
        ] {
            let logical = execute(&plan, &catalog).unwrap();
            let phys = lower(&optimize(&plan, &catalog).unwrap(), &catalog).unwrap();
            let physical = execute_physical(&phys, &catalog).unwrap();
            assert_eq!(logical.schema(), physical.schema());
            assert_eq!(logical.rows(), physical.rows());
        }
    }

    #[test]
    fn index_scan_is_chosen_and_bit_identical() {
        let mut catalog = paper_db();
        catalog.create_index("Proposal", "company").unwrap();
        let scan = Plan::scan("Proposal");
        let schema = scan.schema(&catalog).unwrap();
        // company = 'SkyCam' AND funding < 1M — the equality hits the
        // index, the comparison stays as a residual.
        let plan = scan.select(
            ScalarExpr::named(&schema, None, "company")
                .unwrap()
                .eq(ScalarExpr::literal(Value::text("SkyCam")))
                .and(
                    ScalarExpr::named(&schema, None, "funding")
                        .unwrap()
                        .lt(ScalarExpr::literal(Value::Real(900_000.0))),
                ),
        );
        let phys = lower(&plan, &catalog).unwrap();
        let text = phys.to_string();
        assert!(
            text.contains("IndexScan Proposal (company = 'SkyCam') [filter:"),
            "got:\n{text}"
        );
        let logical = execute(&plan, &catalog).unwrap();
        let physical = execute_physical(&phys, &catalog).unwrap();
        assert_eq!(logical.rows(), physical.rows());
        // The index scan reads only the 2 SkyCam rows, not all 3.
        let (_, profile) =
            execute_physical_profiled(&phys, &catalog, &Parallelism::sequential(), None).unwrap();
        assert_eq!(profile.operators.len(), 1);
        assert_eq!(profile.operators[0].rows_in, 2);
        assert_eq!(profile.operators[0].rows_out, 1);
    }

    #[test]
    fn coerced_literal_refuses_the_index() {
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                "t",
                Schema::new(vec![Column::new("k", DataType::Int)]).unwrap(),
            )
            .unwrap();
        catalog.insert("t", vec![Value::Int(2)], 0.5).unwrap();
        catalog.create_index("t", "k").unwrap();
        // REAL literal on an INT column: `=` coerces but the index map
        // cannot, so this must stay a table scan — and still match.
        let plan =
            Plan::scan("t").select(ScalarExpr::column(0).eq(ScalarExpr::literal(Value::Real(2.0))));
        let phys = lower(&plan, &catalog).unwrap();
        assert!(phys.to_string().contains("TableScan"), "got:\n{phys}");
        assert_eq!(execute_physical(&phys, &catalog).unwrap().len(), 1);
    }

    #[test]
    fn real_keyed_equi_join_keeps_hash_strategy() {
        let mut c = Catalog::new();
        c.create_table(
            "a",
            Schema::new(vec![Column::new("k", DataType::Real)]).unwrap(),
        )
        .unwrap();
        c.create_table(
            "b",
            Schema::new(vec![Column::new("k", DataType::Real)]).unwrap(),
        )
        .unwrap();
        c.insert("a", vec![Value::Real(1.5)], 0.5).unwrap();
        c.insert("b", vec![Value::Real(1.5)], 0.5).unwrap();
        let plan = Plan::scan("a").join(
            Plan::scan("b"),
            ScalarExpr::column(0).eq(ScalarExpr::column(1)),
        );
        // Even though 1×1 rows would favour a nested loop, REAL keys must
        // keep the hash strategy the logical executor uses.
        let phys = lower(&plan, &c).unwrap();
        assert!(phys.to_string().contains("HashJoin"), "got:\n{phys}");
        let logical = execute(&plan, &c).unwrap();
        let physical = execute_physical(&phys, &c).unwrap();
        assert_eq!(logical.rows(), physical.rows());
    }

    #[test]
    fn large_equi_join_lowers_to_hash_join_and_matches() {
        let mut c = Catalog::new();
        c.create_table(
            "a",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("x", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "b",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("y", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        for i in 0..120i64 {
            c.insert("a", vec![Value::Int(i % 17), Value::Int(i)], 0.5)
                .unwrap();
            c.insert("b", vec![Value::Int(i % 11), Value::Int(i * 2)], 0.5)
                .unwrap();
        }
        let plan = Plan::scan("a").join(
            Plan::scan("b"),
            ScalarExpr::column(0)
                .eq(ScalarExpr::column(2))
                .and(ScalarExpr::column(3).lt(ScalarExpr::literal(Value::Int(100)))),
        );
        let phys = lower(&plan, &c).unwrap();
        // 120×120 nested loop costs far more than 120 + 4·120.
        assert!(phys.to_string().contains("HashJoin"), "got:\n{phys}");
        let logical = execute(&plan, &c).unwrap();
        for workers in [1usize, 4] {
            let par = Parallelism {
                worker_threads: Some(workers),
                parallel_threshold: 1,
            };
            let physical = execute_physical_with(&phys, &c, &par).unwrap();
            assert_eq!(logical.rows(), physical.rows(), "workers={workers}");
        }
    }

    #[test]
    fn physical_profile_zips_with_physical_display() {
        let catalog = paper_db();
        let plan = optimize(&paper_plan(&catalog), &catalog).unwrap();
        let phys = lower(&plan, &catalog).unwrap();
        let (rs, profile) =
            execute_physical_profiled(&phys, &catalog, &Parallelism::sequential(), None).unwrap();
        let plain = execute_physical(&phys, &catalog).unwrap();
        assert_eq!(rs.rows(), plain.rows());
        let lines: Vec<String> = phys.to_string().lines().map(str::to_owned).collect();
        assert_eq!(lines.len(), profile.operators.len());
        for (line, op) in lines.iter().zip(&profile.operators) {
            assert_eq!(line.trim_start(), op.operator);
        }
        // True sizes: the join consumes 2 σ-surviving Proposal rows plus
        // 1 CompanyInfo row and emits 2; the Π merges them into 1.
        assert_eq!(profile.operators[0].rows_in, 2);
        assert_eq!(profile.operators[0].rows_out, 1);
        assert_eq!(profile.operators[1].rows_in, 3);
        assert_eq!(profile.operators[1].rows_out, 2);
    }

    #[test]
    fn union_difference_sort_limit_aggregate_match_logical() {
        use crate::plan::{AggFunc, AggItem, SortKey};
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        c.create_table("a", schema.clone()).unwrap();
        c.create_table("b", schema).unwrap();
        for i in 0..20i64 {
            c.insert("a", vec![Value::Int(i % 7)], 0.5).unwrap();
            if i % 2 == 0 {
                c.insert("b", vec![Value::Int(i % 5)], 0.5).unwrap();
            }
        }
        let union = Plan::scan("a").union(Plan::scan("b"));
        let diff = Plan::scan("a").difference(Plan::scan("b"));
        let sorted = Plan::scan("a")
            .sort(vec![SortKey {
                expr: ScalarExpr::column(0),
                descending: true,
            }])
            .limit(5);
        let agg = Plan::scan("a").aggregate(
            vec![ProjItem::new(ScalarExpr::column(0), "x")],
            vec![AggItem {
                func: AggFunc::Count,
                arg: None,
                name: "n".into(),
            }],
        );
        for plan in [union, diff, sorted, agg] {
            let logical = execute(&plan, &c).unwrap();
            let phys = lower(&plan, &c).unwrap();
            let physical = execute_physical(&phys, &c).unwrap();
            assert_eq!(logical.rows(), physical.rows(), "plan:\n{plan}");
        }
    }

    #[test]
    fn profiled_physical_matches_logical_profiled_rows() {
        let catalog = paper_db();
        let plan = optimize(&paper_plan(&catalog), &catalog).unwrap();
        let (logical, _) =
            execute_profiled(&plan, &catalog, &Parallelism::sequential(), None).unwrap();
        let phys = lower(&plan, &catalog).unwrap();
        let (physical, _) =
            execute_physical_profiled(&phys, &catalog, &Parallelism::sequential(), None).unwrap();
        assert_eq!(logical.rows(), physical.rows());
    }
}
