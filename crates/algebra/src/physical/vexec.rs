//! Vectorized, morsel-driven physical plan execution.
//!
//! This is the columnar twin of [`crate::physical::exec`]: the same
//! physical operators, the same lineage rules, the same ordered-map
//! determinism — but data flows as columnar batches ([`VBatch`]:
//! per-column value vectors plus a per-row lineage vector, seeded from
//! [`pcqe_storage::Batch`] at the scans) and work is dispatched as
//! whole morsels across `pcqe-par` workers via
//! [`pcqe_par::morsel::map_morsels`], with a deterministic in-order
//! merge.
//!
//! ## The identity contract
//!
//! For any physical plan `p`, `execute_vectorized(&p, c)` produces a
//! result set **bit-identical** to `execute_physical(&p, c)` — same
//! rows, same order, same lineage expressions, and the same first error
//! on failing inputs — at any thread count. Three rules enforce it:
//!
//! 1. **Expressions evaluate row-wise, in row order.** Batches change
//!    *data movement*, never evaluation order: predicates and
//!    projections run through [`ScalarExpr::eval_view`] over a
//!    [`ColumnarRow`], the same monomorphized body the tuple executor
//!    runs over row slices, so the first error surfaced is the same row's
//!    error. Column-wise evaluation would be faster still but could
//!    reorder which error wins — it is deliberately off the table.
//! 2. **Pipeline breakers reuse the row-native helpers.** Sort,
//!    Aggregate, Union, Difference, distinct-merge and the join kernels
//!    convert batches to rows (a move, not a clone) and run literally
//!    the same `or_merge`/`sort_rows`/`eval_aggregate` code as the tuple
//!    executor.
//! 3. **Partitioned hash state stays ordered.** The hash-join build side
//!    is hash-partitioned by [`pcqe_storage::partition`]'s deterministic
//!    FNV-1a (partition count capped by the build table's NDV when the
//!    catalog knows it); each partition is a `BTreeMap` filled with
//!    ascending global row indexes, so a key's match list is identical
//!    to the single global map the tuple executor builds.
//!
//! Where the speed comes from: scans fuse their residual predicate
//! *before* materialising — the tuple executor clones every stored row
//! and then filters, the vectorized scan evaluates on borrowed storage
//! and clones only survivors — and all later movement (filter, project,
//! batch-to-row conversion) moves values instead of cloning them.
//!
//! All observer and trace emission happens post-batch on the calling
//! thread (the morsel dispatcher reports once, after its scope joins),
//! never inside worker closures, so traces stay deterministic in
//! structure.

use crate::exec::{eval_aggregate, eval_items, or_merge, sort_rows, Ctx, ExecProfile, Profiler};
use crate::expr::{ColumnarRow, ScalarExpr};
use crate::physical::plan::PhysicalPlan;
use crate::result::{DerivedTuple, ResultSet};
use crate::Result;
use pcqe_lineage::Lineage;
use pcqe_par::morsel::{map_morsels, try_map_morsels};
use pcqe_par::{ParObserver, Parallelism, TraceSink};
use pcqe_storage::{
    morsel_rows, partition_count, partition_of, Batch, Catalog, StoredTuple, Tuple, Value,
};
use std::collections::BTreeMap;

/// Execute a physical plan on the vectorized path, sequentially.
pub fn execute_vectorized(plan: &PhysicalPlan, catalog: &Catalog) -> Result<ResultSet> {
    execute_vectorized_with(plan, catalog, &Parallelism::sequential())
}

/// [`execute_vectorized`] with a parallelism policy. Output is
/// byte-identical for any policy — and byte-identical to
/// [`crate::physical::execute_physical_with`] on the same plan.
pub fn execute_vectorized_with(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    par: &Parallelism,
) -> Result<ResultSet> {
    let schema = plan.schema(catalog)?;
    let ctx = Ctx {
        catalog,
        par,
        observer: None,
        trace: None,
    };
    let out = run_v(plan, &ctx, 0, &mut Profiler::off())?;
    Ok(ResultSet::new(schema, out.into_rows()))
}

/// [`execute_vectorized_with`], additionally collecting a per-operator
/// [`ExecProfile`] whose `batches` field counts columnar batches
/// produced, and optionally feeding a [`ParObserver`].
pub fn execute_vectorized_profiled(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    par: &Parallelism,
    observer: Option<&dyn ParObserver>,
) -> Result<(ResultSet, ExecProfile)> {
    execute_vectorized_traced(plan, catalog, par, observer, None)
}

/// [`execute_vectorized_profiled`] with an optional causal
/// [`TraceSink`]: operators wrap execution in `op:<label>` spans exactly
/// like the tuple executor, and morsel batches surface as the existing
/// `par.batch`/`par.lane` instants via the observer.
pub fn execute_vectorized_traced(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    par: &Parallelism,
    observer: Option<&dyn ParObserver>,
    trace: Option<&dyn TraceSink>,
) -> Result<(ResultSet, ExecProfile)> {
    let schema = plan.schema(catalog)?;
    let ctx = Ctx {
        catalog,
        par,
        observer,
        trace,
    };
    let mut prof = Profiler::on();
    let out = run_v(plan, &ctx, 0, &mut prof)?;
    Ok((ResultSet::new(schema, out.into_rows()), prof.finish()))
}

/// A columnar batch inside the executor: per-column value vectors plus a
/// per-row symbolic lineage vector (seeded from the storage batch's
/// lineage-id column at the scans, combined by the operators above).
#[derive(Debug)]
pub(crate) struct VBatch {
    /// One vector per output column; all `lineage.len()` long.
    cols: Vec<Vec<Value>>,
    /// Per-row lineage, aligned with the column vectors.
    lineage: Vec<Lineage>,
}

impl VBatch {
    fn from_storage(batch: Batch) -> VBatch {
        let (cols, _confidence, ids) = batch.into_parts();
        VBatch {
            cols,
            lineage: ids.into_iter().map(Lineage::var).collect(),
        }
    }

    fn len(&self) -> usize {
        self.lineage.len()
    }

    fn is_empty(&self) -> bool {
        self.lineage.is_empty()
    }

    /// Keep only rows whose mask entry is `true`, moving (not cloning)
    /// the surviving values.
    fn retain_mask(self, mask: &[bool]) -> VBatch {
        let keep = |i: usize| mask.get(i).copied().unwrap_or(false);
        VBatch {
            cols: self
                .cols
                .into_iter()
                .map(|col| {
                    col.into_iter()
                        .enumerate()
                        .filter_map(|(i, v)| keep(i).then_some(v))
                        .collect()
                })
                .collect(),
            lineage: self
                .lineage
                .into_iter()
                .enumerate()
                .filter_map(|(i, l)| keep(i).then_some(l))
                .collect(),
        }
    }

    /// Transpose into row-major derived tuples, moving every value.
    fn into_rows(self) -> Vec<DerivedTuple> {
        let arity = self.cols.len();
        let mut rows: Vec<Vec<Value>> =
            (0..self.len()).map(|_| Vec::with_capacity(arity)).collect();
        for col in self.cols {
            for (row, v) in rows.iter_mut().zip(col) {
                row.push(v);
            }
        }
        rows.into_iter()
            .zip(self.lineage)
            .map(|(values, lineage)| DerivedTuple {
                tuple: Tuple::new(values),
                lineage,
            })
            .collect()
    }
}

/// An operator's output: still columnar, or already row-native (after a
/// pipeline breaker). Row-native output flows through the exact same
/// helper code as the tuple executor, which is what keeps the two
/// executors bit-identical by construction.
pub(crate) enum VOut {
    /// Columnar batches, in row order across the vector.
    Batches(Vec<VBatch>),
    /// Row-native output (joins, sorts, aggregates, set operations).
    Rows(Vec<DerivedTuple>),
}

impl VOut {
    fn row_count(&self) -> usize {
        match self {
            VOut::Batches(bs) => bs.iter().map(VBatch::len).sum(),
            VOut::Rows(rows) => rows.len(),
        }
    }

    fn lineage_nodes(&self) -> u64 {
        let fold = |acc: u64, l: &Lineage| acc.saturating_add(l.size() as u64);
        match self {
            VOut::Batches(bs) => bs.iter().flat_map(|b| b.lineage.iter()).fold(0u64, fold),
            VOut::Rows(rows) => rows.iter().map(|r| &r.lineage).fold(0u64, fold),
        }
    }

    fn batch_count(&self) -> u64 {
        match self {
            VOut::Batches(bs) => bs.len() as u64,
            VOut::Rows(_) => 0,
        }
    }

    /// Materialise as row-native derived tuples (moves, no clones).
    fn into_rows(self) -> Vec<DerivedTuple> {
        match self {
            VOut::Batches(bs) => {
                let mut rows = Vec::with_capacity(bs.iter().map(VBatch::len).sum());
                for b in bs {
                    rows.append(&mut b.into_rows());
                }
                rows
            }
            VOut::Rows(rows) => rows,
        }
    }
}

fn run_v(plan: &PhysicalPlan, ctx: &Ctx<'_>, depth: usize, prof: &mut Profiler) -> Result<VOut> {
    let slot = prof.enter(depth, || plan.node_label());
    let span = ctx
        .trace
        .map(|t| t.span_begin(&format!("op:{}", plan.node_label())));
    let (rows_in, out) = run_v_node(plan, ctx, depth, prof)?;
    if let (Some(t), Some(id)) = (ctx.trace, span) {
        t.span_end(id);
    }
    prof.exit_counts(
        slot,
        rows_in,
        out.row_count(),
        out.lineage_nodes(),
        out.batch_count(),
    );
    Ok(out)
}

/// Scan-fused residual: evaluate the predicate on *borrowed* stored rows
/// and materialise only survivors into a columnar batch. One morsel in,
/// one batch out; evaluation is row-wise in row order.
fn scan_morsel(
    arity: usize,
    chunk: &[&StoredTuple],
    residual: &Option<ScalarExpr>,
) -> Result<VBatch> {
    let mut batch = Batch::empty(arity);
    match residual {
        None => {
            batch.reserve(chunk.len());
            for r in chunk {
                batch.push_stored(r)?;
            }
        }
        Some(p) => {
            for r in chunk {
                if p.eval_predicate(r.tuple.values())? {
                    batch.push_stored(r)?;
                }
            }
        }
    }
    Ok(VBatch::from_storage(batch))
}

/// Morsel-parallel scan over already-fetched stored rows: cut into
/// morsels, fuse the residual, drop empty batches.
fn scan_batches(
    arity: usize,
    rows: Vec<&StoredTuple>,
    residual: &Option<ScalarExpr>,
    ctx: &Ctx<'_>,
) -> Result<Vec<VBatch>> {
    let weight = rows.len();
    let units: Vec<&[&StoredTuple]> = rows.chunks(morsel_rows(weight)).collect();
    let batches = try_map_morsels(
        ctx.par,
        &units,
        weight,
        |_, chunk| scan_morsel(arity, chunk, residual),
        ctx.observer,
    )?;
    Ok(batches.into_iter().filter(|b| !b.is_empty()).collect())
}

/// Single-key NDV of the hash-join build side, when the catalog knows
/// it: a base-table scan with table statistics for the key column, or an
/// index scan pinned to one key value. Used to cap the partition count —
/// with `d` distinct keys, more than `d` partitions cannot help.
fn build_side_ndv(
    right: &PhysicalPlan,
    keys: &[(usize, usize)],
    left_arity: usize,
    catalog: &Catalog,
) -> Option<usize> {
    if keys.len() != 1 {
        return None;
    }
    let rc = keys.first()?.1.checked_sub(left_arity)?;
    match right {
        PhysicalPlan::TableScan { table, .. } => {
            // A residual can only shrink the distinct-key set, so the
            // base table's NDV stays a valid upper bound.
            catalog.table(table).ok()?.stats().distinct_keys(rc)
        }
        PhysicalPlan::IndexScan { column, .. } if *column == rc => Some(1),
        _ => None,
    }
}

/// Execute one node; returns `(rows consumed from direct inputs, output)`
/// with the same `rows_in` accounting as the tuple executor.
fn run_v_node(
    plan: &PhysicalPlan,
    ctx: &Ctx<'_>,
    depth: usize,
    prof: &mut Profiler,
) -> Result<(usize, VOut)> {
    let catalog = ctx.catalog;
    let par = ctx.par;
    match plan {
        PhysicalPlan::TableScan {
            table, residual, ..
        } => {
            let t = catalog.table(table)?;
            let arity = t.schema().arity();
            let rows: Vec<&StoredTuple> = t.rows().iter().collect();
            let rows_in = rows.len();
            let batches = scan_batches(arity, rows, residual, ctx)?;
            Ok((rows_in, VOut::Batches(batches)))
        }
        PhysicalPlan::IndexScan {
            table,
            column,
            key,
            residual,
            ..
        } => {
            let t = catalog.table(table)?;
            let index = t.index_on(*column).ok_or_else(|| {
                crate::error::AlgebraError::Plan(format!(
                    "physical plan requires an index on column {column} of `{table}`, \
                     but the catalog has none"
                ))
            })?;
            let stored = t.rows();
            let positions = index.lookup(key);
            let mut rows = Vec::with_capacity(positions.len());
            for &pos in positions {
                rows.push(stored.get(pos).ok_or_else(|| {
                    crate::error::AlgebraError::Plan(format!(
                        "index on `{table}` points at row {pos} beyond table length {}",
                        stored.len()
                    ))
                })?);
            }
            let rows_in = rows.len();
            let batches = scan_batches(t.schema().arity(), rows, residual, ctx)?;
            Ok((rows_in, VOut::Batches(batches)))
        }
        PhysicalPlan::Filter { input, predicate } => {
            match run_v(input, ctx, depth + 1, prof)? {
                VOut::Batches(batches) => {
                    let rows_in: usize = batches.iter().map(VBatch::len).sum();
                    // Parallel row-wise masks over borrowed batches, then
                    // a move-gather of survivors — the columnar analogue
                    // of mask-then-filter in the tuple executor.
                    let masks = try_map_morsels(
                        par,
                        &batches,
                        rows_in,
                        |_, b| -> Result<Vec<bool>> {
                            (0..b.len())
                                .map(|i| {
                                    predicate.eval_predicate_view(&ColumnarRow {
                                        cols: &b.cols,
                                        row: i,
                                    })
                                })
                                .collect()
                        },
                        ctx.observer,
                    )?;
                    let out: Vec<VBatch> = batches
                        .into_iter()
                        .zip(masks)
                        .map(|(b, mask)| b.retain_mask(&mask))
                        .filter(|b| !b.is_empty())
                        .collect();
                    Ok((rows_in, VOut::Batches(out)))
                }
                VOut::Rows(rows) => {
                    let rows_in = rows.len();
                    let keep = pcqe_par::try_map_observed(
                        par,
                        &rows,
                        |row| predicate.eval_predicate(row.tuple.values()),
                        ctx.observer,
                    )?;
                    let out: Vec<DerivedTuple> = rows
                        .into_iter()
                        .zip(keep)
                        .filter_map(|(row, k)| k.then_some(row))
                        .collect();
                    Ok((rows_in, VOut::Rows(out)))
                }
            }
        }
        PhysicalPlan::Project {
            input,
            items,
            distinct,
        } => {
            let v = run_v(input, ctx, depth + 1, prof)?;
            let rows_in = v.row_count();
            let projected: VOut = match v {
                VOut::Batches(batches) => {
                    // Parallel per-batch projection into fresh columns;
                    // lineage vectors are then moved across, never cloned.
                    let new_cols = try_map_morsels(
                        par,
                        &batches,
                        rows_in,
                        |_, b| -> Result<Vec<Vec<Value>>> {
                            let mut cols: Vec<Vec<Value>> =
                                items.iter().map(|_| Vec::with_capacity(b.len())).collect();
                            for i in 0..b.len() {
                                let view = ColumnarRow {
                                    cols: &b.cols,
                                    row: i,
                                };
                                for (item, col) in items.iter().zip(cols.iter_mut()) {
                                    col.push(item.expr.eval_view(&view)?);
                                }
                            }
                            Ok(cols)
                        },
                        ctx.observer,
                    )?;
                    VOut::Batches(
                        batches
                            .into_iter()
                            .zip(new_cols)
                            .map(|(b, cols)| VBatch {
                                cols,
                                lineage: b.lineage,
                            })
                            .collect(),
                    )
                }
                VOut::Rows(rows) => {
                    let values = pcqe_par::try_map_observed(
                        par,
                        &rows,
                        |row| eval_items(items, row.tuple.values()),
                        ctx.observer,
                    )?;
                    VOut::Rows(
                        rows.into_iter()
                            .zip(values)
                            .map(|(row, values)| DerivedTuple {
                                tuple: Tuple::new(values),
                                lineage: row.lineage,
                            })
                            .collect(),
                    )
                }
            };
            if *distinct {
                // Duplicate merging is a pipeline breaker: go row-native
                // and reuse the tuple executor's or_merge verbatim.
                Ok((rows_in, VOut::Rows(or_merge(projected.into_rows()))))
            } else {
                Ok((rows_in, projected))
            }
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            keys,
            residual,
        } => {
            let left_arity = left.schema(catalog)?.arity();
            let l = run_v(left, ctx, depth + 1, prof)?.into_rows();
            let r = run_v(right, ctx, depth + 1, prof)?.into_rows();
            let rows_in = l.len() + r.len();
            // Key extraction over the build side, morsel-parallel with
            // first-error-in-row-order — the same error the tuple
            // executor's sequential build loop reports. Each key is
            // tagged with its partition up front.
            let parts = partition_count(r.len(), build_side_ndv(right, keys, left_arity, catalog));
            let rkeys: Vec<Option<(usize, Vec<Value>)>> = pcqe_par::try_map_observed(
                par,
                &r,
                |rr| -> Result<Option<(usize, Vec<Value>)>> {
                    let mut key = Vec::with_capacity(keys.len());
                    for &(_, rc) in keys {
                        let v = rr.tuple.get(rc - left_arity).cloned().ok_or_else(|| {
                            crate::error::AlgebraError::Type(format!(
                                "join key column {rc} out of range"
                            ))
                        })?;
                        if v.is_null() {
                            return Ok(None); // NULL never equi-joins
                        }
                        key.push(v);
                    }
                    let p = partition_of(&key, parts);
                    Ok(Some((p, key)))
                },
                ctx.observer,
            )?;
            // Build the partitions in parallel: each partition scans the
            // tagged keys and keeps its own, inserting ascending global
            // row indexes — so any key's match list is identical to the
            // single ordered map the tuple executor builds (PCQE-D001:
            // BTreeMap, never a seeded hash map).
            let part_ids: Vec<usize> = (0..parts).collect();
            let tables: Vec<BTreeMap<&[Value], Vec<usize>>> = map_morsels(
                par,
                &part_ids,
                r.len(),
                |_, &p| {
                    let mut table: BTreeMap<&[Value], Vec<usize>> = BTreeMap::new();
                    for (i, tagged) in rkeys.iter().enumerate() {
                        if let Some((kp, key)) = tagged {
                            if *kp == p {
                                table.entry(key.as_slice()).or_default().push(i);
                            }
                        }
                    }
                    table
                },
                ctx.observer,
            );
            // Probe morsel-parallel over left rows; per-left match lists
            // flattened in input order reproduce the sequential loop.
            let weight = l.len();
            let units: Vec<&[DerivedTuple]> = l.chunks(morsel_rows(weight).max(1)).collect();
            let per_chunk = try_map_morsels(
                par,
                &units,
                weight,
                |_, chunk| -> Result<Vec<DerivedTuple>> {
                    let mut out = Vec::new();
                    for lr in *chunk {
                        let mut key = Vec::with_capacity(keys.len());
                        let mut null_key = false;
                        for &(lc, _) in keys {
                            let v = lr.tuple.get(lc).cloned().ok_or_else(|| {
                                crate::error::AlgebraError::Type(format!(
                                    "join key column {lc} out of range"
                                ))
                            })?;
                            if v.is_null() {
                                null_key = true; // NULL never equi-joins
                                break;
                            }
                            key.push(v);
                        }
                        if null_key {
                            continue;
                        }
                        let matches = tables
                            .get(partition_of(&key, parts))
                            .and_then(|t| t.get(key.as_slice()));
                        let Some(matches) = matches else {
                            continue;
                        };
                        for &ri in matches {
                            let rr = r.get(ri).ok_or_else(|| {
                                crate::error::AlgebraError::Plan(
                                    "hash table entry out of range".into(),
                                )
                            })?;
                            let combined = lr.tuple.concat(&rr.tuple);
                            let keep = match residual {
                                Some(res) => res.eval_predicate(combined.values())?,
                                None => true,
                            };
                            if keep {
                                out.push(DerivedTuple {
                                    tuple: combined,
                                    lineage: Lineage::and(vec![
                                        lr.lineage.clone(),
                                        rr.lineage.clone(),
                                    ]),
                                });
                            }
                        }
                    }
                    Ok(out)
                },
                ctx.observer,
            )?;
            Ok((
                rows_in,
                VOut::Rows(per_chunk.into_iter().flatten().collect()),
            ))
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let l = run_v(left, ctx, depth + 1, prof)?.into_rows();
            let r = run_v(right, ctx, depth + 1, prof)?.into_rows();
            let rows_in = l.len() + r.len();
            let out: Vec<Vec<DerivedTuple>> = match predicate {
                // Pure cross product: infallible per-row work.
                None => pcqe_par::map_observed(
                    par,
                    &l,
                    |lr| {
                        r.iter()
                            .map(|rr| DerivedTuple {
                                tuple: lr.tuple.concat(&rr.tuple),
                                lineage: Lineage::and(vec![lr.lineage.clone(), rr.lineage.clone()]),
                            })
                            .collect::<Vec<_>>()
                    },
                    ctx.observer,
                ),
                // Predicated nested loop, morsel-parallel over left rows.
                Some(p) => pcqe_par::try_map_observed(
                    par,
                    &l,
                    |lr| -> Result<Vec<DerivedTuple>> {
                        let mut matches = Vec::new();
                        for rr in &r {
                            let combined = lr.tuple.concat(&rr.tuple);
                            if p.eval_predicate(combined.values())? {
                                matches.push(DerivedTuple {
                                    tuple: combined,
                                    lineage: Lineage::and(vec![
                                        lr.lineage.clone(),
                                        rr.lineage.clone(),
                                    ]),
                                });
                            }
                        }
                        Ok(matches)
                    },
                    ctx.observer,
                )?,
            };
            Ok((rows_in, VOut::Rows(out.into_iter().flatten().collect())))
        }
        PhysicalPlan::Union { left, right } => {
            // Schema compatibility is checked by PhysicalPlan::schema.
            plan.schema(catalog)?;
            let mut rows = run_v(left, ctx, depth + 1, prof)?.into_rows();
            rows.extend(run_v(right, ctx, depth + 1, prof)?.into_rows());
            let rows_in = rows.len();
            Ok((rows_in, VOut::Rows(or_merge(rows))))
        }
        PhysicalPlan::Difference { left, right } => {
            plan.schema(catalog)?;
            let l = or_merge(run_v(left, ctx, depth + 1, prof)?.into_rows());
            let r = or_merge(run_v(right, ctx, depth + 1, prof)?.into_rows());
            let rows_in = l.len() + r.len();
            let right_by_value: BTreeMap<&Tuple, &Lineage> =
                r.iter().map(|d| (&d.tuple, &d.lineage)).collect();
            let mut out = Vec::new();
            for row in &l {
                let lineage = match right_by_value.get(&row.tuple) {
                    Some(rl) => {
                        Lineage::and(vec![row.lineage.clone(), Lineage::not((*rl).clone())])
                    }
                    None => row.lineage.clone(),
                };
                if lineage != Lineage::Const(false) {
                    out.push(DerivedTuple {
                        tuple: row.tuple.clone(),
                        lineage,
                    });
                }
            }
            Ok((rows_in, VOut::Rows(out)))
        }
        PhysicalPlan::Sort { input, keys } => {
            let mut rows = run_v(input, ctx, depth + 1, prof)?.into_rows();
            let rows_in = rows.len();
            sort_rows(&mut rows, keys)?;
            Ok((rows_in, VOut::Rows(rows)))
        }
        PhysicalPlan::Limit { input, count } => {
            match run_v(input, ctx, depth + 1, prof)? {
                VOut::Batches(batches) => {
                    let rows_in: usize = batches.iter().map(VBatch::len).sum();
                    // Keep whole batches until the limit, then cut the
                    // boundary batch — no row materialisation needed.
                    let mut taken = 0usize;
                    let mut out = Vec::new();
                    for b in batches {
                        if taken >= *count {
                            break;
                        }
                        let remaining = *count - taken;
                        if b.len() <= remaining {
                            taken += b.len();
                            out.push(b);
                        } else {
                            let mask: Vec<bool> = (0..b.len()).map(|i| i < remaining).collect();
                            out.push(b.retain_mask(&mask));
                            taken = *count;
                        }
                    }
                    Ok((rows_in, VOut::Batches(out)))
                }
                VOut::Rows(mut rows) => {
                    let rows_in = rows.len();
                    rows.truncate(*count);
                    Ok((rows_in, VOut::Rows(rows)))
                }
            }
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let rows = run_v(input, ctx, depth + 1, prof)?.into_rows();
            let rows_in = rows.len();
            // Group rows by key values, preserving first-seen order —
            // identical to the tuple executor's Aggregate.
            let mut index: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
            let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                let mut key = Vec::with_capacity(group_by.len());
                for g in group_by {
                    key.push(g.expr.eval(row.tuple.values())?);
                }
                match index.get(&key) {
                    Some(&gi) => {
                        if let Some(group) = groups.get_mut(gi) {
                            group.1.push(i);
                        }
                    }
                    None => {
                        index.insert(key.clone(), groups.len());
                        groups.push((key, vec![i]));
                    }
                }
            }
            if group_by.is_empty() && groups.is_empty() {
                groups.push((Vec::new(), Vec::new()));
            }
            let mut out = Vec::with_capacity(groups.len());
            for (key, members) in groups {
                let mut values = key;
                for agg in aggregates {
                    values.push(eval_aggregate(agg, &members, &rows)?);
                }
                let lineage = if members.is_empty() {
                    Lineage::certain()
                } else {
                    Lineage::or(
                        members
                            .iter()
                            .filter_map(|&i| rows.get(i).map(|r| r.lineage.clone()))
                            .collect(),
                    )
                };
                out.push(DerivedTuple {
                    tuple: Tuple::new(values),
                    lineage,
                });
            }
            Ok((rows_in, VOut::Rows(out)))
        }
    }
}
