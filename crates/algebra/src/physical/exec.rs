//! Physical plan execution.
//!
//! Node-for-node this mirrors the logical executor in [`crate::exec`] —
//! the same morsel-parallel primitives, the same lineage rules, the same
//! ordered-map determinism — but driven by a [`PhysicalPlan`], so access
//! paths (index vs table scan) and join strategies (hash vs nested loop)
//! are explicit rather than chosen per execution.
//!
//! The contract that everything downstream relies on: for any logical
//! plan `p`, `execute_physical(&lower(&p, c)?, c)` produces a result set
//! **bit-identical** to `execute(&p, c)` — same rows, same order, same
//! lineage expressions. The planner only makes substitutions that
//! provably preserve this (see [`crate::physical::planner`] module docs),
//! and this executor implements each operator with the logical executor's
//! exact semantics.

use crate::exec::{eval_aggregate, eval_items, or_merge, sort_rows, Ctx, ExecProfile, Profiler};
use crate::expr::ScalarExpr;
use crate::physical::plan::PhysicalPlan;
use crate::result::{DerivedTuple, ResultSet};
use crate::Result;
use pcqe_lineage::Lineage;
use pcqe_par::{ParObserver, Parallelism, TraceSink};
use pcqe_storage::{Catalog, Tuple, Value};
use std::collections::BTreeMap;

/// Execute a physical plan sequentially.
///
/// Like [`crate::execute`], confidence values are never consulted here:
/// lineage stays symbolic and scoring happens afterwards (via
/// [`crate::ResultSet::score`] or the β-gated
/// [`crate::ResultSet::score_gated`]).
pub fn execute_physical(plan: &PhysicalPlan, catalog: &Catalog) -> Result<ResultSet> {
    execute_physical_with(plan, catalog, &Parallelism::sequential())
}

/// [`execute_physical`] with a parallelism policy. Output is byte-identical
/// for any policy: per-row work is pure, morsels reassemble in input order,
/// and errors surface as the first failure in input order.
pub fn execute_physical_with(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    par: &Parallelism,
) -> Result<ResultSet> {
    let schema = plan.schema(catalog)?;
    let ctx = Ctx {
        catalog,
        par,
        observer: None,
        trace: None,
    };
    let rows = run(plan, &ctx, 0, &mut Profiler::off())?;
    Ok(ResultSet::new(schema, rows))
}

/// [`execute_physical_with`], additionally collecting a per-operator
/// [`ExecProfile`] (labels from [`PhysicalPlan::node_label`], pre-order =
/// `Display` line order) and optionally feeding a [`ParObserver`].
pub fn execute_physical_profiled(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    par: &Parallelism,
    observer: Option<&dyn ParObserver>,
) -> Result<(ResultSet, ExecProfile)> {
    execute_physical_traced(plan, catalog, par, observer, None)
}

/// [`execute_physical_profiled`] with an optional causal [`TraceSink`]:
/// every operator wraps its execution in an `op:<label>` span, nested to
/// mirror the plan tree. The sink is write-only — the result set and
/// profile are byte-identical to [`execute_physical_profiled`]'s.
pub fn execute_physical_traced(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    par: &Parallelism,
    observer: Option<&dyn ParObserver>,
    trace: Option<&dyn TraceSink>,
) -> Result<(ResultSet, ExecProfile)> {
    let schema = plan.schema(catalog)?;
    let ctx = Ctx {
        catalog,
        par,
        observer,
        trace,
    };
    let mut prof = Profiler::on();
    let rows = run(plan, &ctx, 0, &mut prof)?;
    Ok((ResultSet::new(schema, rows), prof.finish()))
}

fn run(
    plan: &PhysicalPlan,
    ctx: &Ctx<'_>,
    depth: usize,
    prof: &mut Profiler,
) -> Result<Vec<DerivedTuple>> {
    let slot = prof.enter(depth, || plan.node_label());
    let span = ctx
        .trace
        .map(|t| t.span_begin(&format!("op:{}", plan.node_label())));
    let (rows_in, out) = run_node(plan, ctx, depth, prof)?;
    if let (Some(t), Some(id)) = (ctx.trace, span) {
        t.span_end(id);
    }
    prof.exit(slot, rows_in, &out);
    Ok(out)
}

/// Apply a pushed-down residual predicate: morsel-parallel mask, then a
/// cheap sequential filter — exactly the logical `Select` implementation.
fn apply_residual(
    rows: Vec<DerivedTuple>,
    residual: &Option<ScalarExpr>,
    ctx: &Ctx<'_>,
) -> Result<Vec<DerivedTuple>> {
    let Some(predicate) = residual else {
        return Ok(rows);
    };
    let keep = pcqe_par::try_map_observed(
        ctx.par,
        &rows,
        |row| predicate.eval_predicate(row.tuple.values()),
        ctx.observer,
    )?;
    Ok(rows
        .into_iter()
        .zip(keep)
        .filter_map(|(row, k)| k.then_some(row))
        .collect())
}

/// Execute one node; returns `(rows consumed from direct inputs, output)`.
///
/// For scans, "rows consumed" is the rows actually read from storage: the
/// full table for [`PhysicalPlan::TableScan`] but only the matching
/// postings for [`PhysicalPlan::IndexScan`] — `EXPLAIN ANALYZE` makes the
/// access path's saving directly visible.
fn run_node(
    plan: &PhysicalPlan,
    ctx: &Ctx<'_>,
    depth: usize,
    prof: &mut Profiler,
) -> Result<(usize, Vec<DerivedTuple>)> {
    let catalog = ctx.catalog;
    let par = ctx.par;
    match plan {
        PhysicalPlan::TableScan {
            table, residual, ..
        } => {
            let t = catalog.table(table)?;
            let rows: Vec<DerivedTuple> = t
                .rows()
                .iter()
                .map(|r| DerivedTuple {
                    tuple: r.tuple.clone(),
                    lineage: Lineage::var(r.id.0),
                })
                .collect();
            let rows_in = rows.len();
            Ok((rows_in, apply_residual(rows, residual, ctx)?))
        }
        PhysicalPlan::IndexScan {
            table,
            column,
            key,
            residual,
            ..
        } => {
            let t = catalog.table(table)?;
            let index = t.index_on(*column).ok_or_else(|| {
                crate::error::AlgebraError::Plan(format!(
                    "physical plan requires an index on column {column} of `{table}`, \
                     but the catalog has none"
                ))
            })?;
            let stored = t.rows();
            let positions = index.lookup(key);
            let mut rows = Vec::with_capacity(positions.len());
            for &pos in positions {
                let r = stored.get(pos).ok_or_else(|| {
                    crate::error::AlgebraError::Plan(format!(
                        "index on `{table}` points at row {pos} beyond table length {}",
                        stored.len()
                    ))
                })?;
                rows.push(DerivedTuple {
                    tuple: r.tuple.clone(),
                    lineage: Lineage::var(r.id.0),
                });
            }
            let rows_in = rows.len();
            Ok((rows_in, apply_residual(rows, residual, ctx)?))
        }
        PhysicalPlan::Filter { input, predicate } => {
            let rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            Ok((
                rows_in,
                apply_residual(rows, &Some(predicate.clone()), ctx)?,
            ))
        }
        PhysicalPlan::Project {
            input,
            items,
            distinct,
        } => {
            let rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            let values = pcqe_par::try_map_observed(
                par,
                &rows,
                |row| eval_items(items, row.tuple.values()),
                ctx.observer,
            )?;
            let projected: Vec<DerivedTuple> = rows
                .into_iter()
                .zip(values)
                .map(|(row, values)| DerivedTuple {
                    tuple: Tuple::new(values),
                    lineage: row.lineage,
                })
                .collect();
            let out = if *distinct {
                or_merge(projected)
            } else {
                projected
            };
            Ok((rows_in, out))
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            keys,
            residual,
        } => {
            let left_arity = left.schema(catalog)?.arity();
            let l = run(left, ctx, depth + 1, prof)?;
            let r = run(right, ctx, depth + 1, prof)?;
            let rows_in = l.len() + r.len();
            // Build on the right side into an ordered map — identical to
            // the logical executor's hash path (lint rule PCQE-D001).
            let mut table: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
            'rows: for (i, rr) in r.iter().enumerate() {
                let mut key = Vec::with_capacity(keys.len());
                for &(_, rc) in keys {
                    let v = rr.tuple.get(rc - left_arity).cloned().ok_or_else(|| {
                        crate::error::AlgebraError::Type(format!(
                            "join key column {rc} out of range"
                        ))
                    })?;
                    if v.is_null() {
                        continue 'rows; // NULL never equi-joins
                    }
                    key.push(v);
                }
                table.entry(key).or_default().push(i);
            }
            // Probe morsel-parallel over left rows; per-row match lists
            // flattened in input order reproduce the sequential loop.
            let per_left = pcqe_par::try_map_observed(
                par,
                &l,
                |lr| -> Result<Vec<DerivedTuple>> {
                    let mut key = Vec::with_capacity(keys.len());
                    for &(lc, _) in keys {
                        let v = lr.tuple.get(lc).cloned().ok_or_else(|| {
                            crate::error::AlgebraError::Type(format!(
                                "join key column {lc} out of range"
                            ))
                        })?;
                        if v.is_null() {
                            return Ok(Vec::new()); // NULL never equi-joins
                        }
                        key.push(v);
                    }
                    let Some(matches) = table.get(&key) else {
                        return Ok(Vec::new());
                    };
                    let mut out = Vec::with_capacity(matches.len());
                    for &ri in matches {
                        let rr = r.get(ri).ok_or_else(|| {
                            crate::error::AlgebraError::Plan("hash table entry out of range".into())
                        })?;
                        let combined = lr.tuple.concat(&rr.tuple);
                        let keep = match residual {
                            Some(res) => res.eval_predicate(combined.values())?,
                            None => true,
                        };
                        if keep {
                            out.push(DerivedTuple {
                                tuple: combined,
                                lineage: Lineage::and(vec![lr.lineage.clone(), rr.lineage.clone()]),
                            });
                        }
                    }
                    Ok(out)
                },
                ctx.observer,
            )?;
            Ok((rows_in, per_left.into_iter().flatten().collect()))
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let l = run(left, ctx, depth + 1, prof)?;
            let r = run(right, ctx, depth + 1, prof)?;
            let rows_in = l.len() + r.len();
            let out: Vec<Vec<DerivedTuple>> = match predicate {
                // Pure cross product: infallible per-row work.
                None => pcqe_par::map_observed(
                    par,
                    &l,
                    |lr| {
                        r.iter()
                            .map(|rr| DerivedTuple {
                                tuple: lr.tuple.concat(&rr.tuple),
                                lineage: Lineage::and(vec![lr.lineage.clone(), rr.lineage.clone()]),
                            })
                            .collect::<Vec<_>>()
                    },
                    ctx.observer,
                ),
                // Predicated nested loop, morsel-parallel over left rows.
                Some(p) => pcqe_par::try_map_observed(
                    par,
                    &l,
                    |lr| -> Result<Vec<DerivedTuple>> {
                        let mut matches = Vec::new();
                        for rr in &r {
                            let combined = lr.tuple.concat(&rr.tuple);
                            if p.eval_predicate(combined.values())? {
                                matches.push(DerivedTuple {
                                    tuple: combined,
                                    lineage: Lineage::and(vec![
                                        lr.lineage.clone(),
                                        rr.lineage.clone(),
                                    ]),
                                });
                            }
                        }
                        Ok(matches)
                    },
                    ctx.observer,
                )?,
            };
            Ok((rows_in, out.into_iter().flatten().collect()))
        }
        PhysicalPlan::Union { left, right } => {
            // Schema compatibility is checked by PhysicalPlan::schema.
            plan.schema(catalog)?;
            let mut rows = run(left, ctx, depth + 1, prof)?;
            rows.extend(run(right, ctx, depth + 1, prof)?);
            let rows_in = rows.len();
            Ok((rows_in, or_merge(rows)))
        }
        PhysicalPlan::Difference { left, right } => {
            plan.schema(catalog)?;
            let l = or_merge(run(left, ctx, depth + 1, prof)?);
            let r = or_merge(run(right, ctx, depth + 1, prof)?);
            let rows_in = l.len() + r.len();
            let right_by_value: BTreeMap<&Tuple, &Lineage> =
                r.iter().map(|d| (&d.tuple, &d.lineage)).collect();
            let mut out = Vec::new();
            for row in &l {
                let lineage = match right_by_value.get(&row.tuple) {
                    Some(rl) => {
                        Lineage::and(vec![row.lineage.clone(), Lineage::not((*rl).clone())])
                    }
                    None => row.lineage.clone(),
                };
                if lineage != Lineage::Const(false) {
                    out.push(DerivedTuple {
                        tuple: row.tuple.clone(),
                        lineage,
                    });
                }
            }
            Ok((rows_in, out))
        }
        PhysicalPlan::Sort { input, keys } => {
            let mut rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            sort_rows(&mut rows, keys)?;
            Ok((rows_in, rows))
        }
        PhysicalPlan::Limit { input, count } => {
            let mut rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            rows.truncate(*count);
            Ok((rows_in, rows))
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            // Group rows by key values, preserving first-seen order —
            // identical to the logical Aggregate.
            let mut index: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
            let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                let mut key = Vec::with_capacity(group_by.len());
                for g in group_by {
                    key.push(g.expr.eval(row.tuple.values())?);
                }
                match index.get(&key) {
                    Some(&gi) => {
                        if let Some(group) = groups.get_mut(gi) {
                            group.1.push(i);
                        }
                    }
                    None => {
                        index.insert(key.clone(), groups.len());
                        groups.push((key, vec![i]));
                    }
                }
            }
            if group_by.is_empty() && groups.is_empty() {
                groups.push((Vec::new(), Vec::new()));
            }
            let mut out = Vec::with_capacity(groups.len());
            for (key, members) in groups {
                let mut values = key;
                for agg in aggregates {
                    values.push(eval_aggregate(agg, &members, &rows)?);
                }
                let lineage = if members.is_empty() {
                    Lineage::certain()
                } else {
                    Lineage::or(
                        members
                            .iter()
                            .filter_map(|&i| rows.get(i).map(|r| r.lineage.clone()))
                            .collect(),
                    )
                };
                out.push(DerivedTuple {
                    tuple: Tuple::new(values),
                    lineage,
                });
            }
            Ok((rows_in, out))
        }
    }
}
