//! Physical operator trees.
//!
//! A [`PhysicalPlan`] is what actually runs: every node names a concrete
//! algorithm (hash join vs nested loop, index scan vs table scan) and
//! carries its pushed-down predicates explicitly. Logical [`Plan`]s are
//! lowered to physical plans by [`crate::physical::planner::lower`].
//!
//! The rendering contract mirrors the logical side: [`fmt::Display`] is a
//! 2-space-indented pre-order tree, one line per node, each line exactly
//! [`PhysicalPlan::node_label`] — so `EXPLAIN ANALYZE` output can zip a
//! profile against the plan text line-for-line.

use crate::error::AlgebraError;
use crate::expr::ScalarExpr;
use crate::plan::{AggFunc, AggItem, Plan, ProjItem, SortKey};
use crate::Result;
use pcqe_storage::{Catalog, Column, DataType, Schema, Value};
use std::fmt;

/// A physical query plan: concrete operators with explicit access paths,
/// join strategies and pushed-down predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Sequential scan of a base table, with an optional pushed-down
    /// residual predicate applied to every row.
    TableScan {
        /// Table name in the catalog.
        table: String,
        /// Alias qualifying the output columns.
        alias: Option<String>,
        /// Pushed-down filter evaluated per row (`None` = keep all).
        residual: Option<ScalarExpr>,
    },
    /// Equality-index lookup: fetch only the rows whose indexed column
    /// equals `key`, in insertion order, then apply the residual.
    IndexScan {
        /// Table name in the catalog.
        table: String,
        /// Alias qualifying the output columns.
        alias: Option<String>,
        /// Indexed column position in the table schema.
        column: usize,
        /// Column name (for rendering).
        column_name: String,
        /// The equality key. Never `NULL`; its type matches the column
        /// exactly, so index equality agrees with SQL `=`.
        key: Value,
        /// Remaining pushed-down conjuncts applied per fetched row.
        residual: Option<ScalarExpr>,
    },
    /// σ over an arbitrary input.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Boolean predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// Π — compute output columns; `distinct` OR-merges duplicates.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Output columns.
        items: Vec<ProjItem>,
        /// Whether to deduplicate (OR-merging lineage).
        distinct: bool,
    },
    /// Hash join: build an ordered map over the right input's key columns,
    /// probe with the left input in order. `keys` are `(left column,
    /// right column)` pairs with right columns numbered in the combined
    /// schema (as in the join predicate).
    HashJoin {
        /// Left (probe) input.
        left: Box<PhysicalPlan>,
        /// Right (build) input.
        right: Box<PhysicalPlan>,
        /// Equality key pairs `(left col, combined-schema right col)`.
        keys: Vec<(usize, usize)>,
        /// Non-equality conjuncts checked per candidate match.
        residual: Option<ScalarExpr>,
    },
    /// Nested-loop join; `predicate: None` is a cartesian product.
    NestedLoopJoin {
        /// Left (outer) input.
        left: Box<PhysicalPlan>,
        /// Right (inner) input.
        right: Box<PhysicalPlan>,
        /// Join predicate over the combined schema; `None` = cross join.
        predicate: Option<ScalarExpr>,
    },
    /// ∪ — set union (duplicates merge, lineage ORs).
    Union {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// − — set difference (`l ∧ ¬(r₁ ∨ …)` lineage).
    Difference {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
    /// Stable sort by a sequence of keys.
    Sort {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Sort keys, applied in order.
        keys: Vec<SortKey>,
    },
    /// Keep only the first `count` rows.
    Limit {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Maximum number of rows.
        count: usize,
    },
    /// γ — grouping and aggregation (same semantics as the logical node).
    Aggregate {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Group-key expressions (empty = one global group).
        group_by: Vec<ProjItem>,
        /// Aggregates over the input schema.
        aggregates: Vec<AggItem>,
    },
}

impl PhysicalPlan {
    /// The plan's output schema against a catalog. Mirrors
    /// [`Plan::schema`]: physical lowering never changes the schema of the
    /// logical node it implements.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            PhysicalPlan::TableScan { table, alias, .. }
            | PhysicalPlan::IndexScan { table, alias, .. } => {
                let t = catalog.table(table)?;
                let qualifier = alias.as_deref().unwrap_or(table);
                Ok(t.schema().with_qualifier(qualifier))
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.schema(catalog),
            PhysicalPlan::Project { input, items, .. } => {
                let in_schema = input.schema(catalog)?;
                let mut cols = Vec::with_capacity(items.len());
                for item in items {
                    let dt = item.expr.infer_type(&in_schema)?;
                    cols.push(Column::new(item.name.clone(), dt));
                }
                Schema::new(cols).map_err(AlgebraError::from)
            }
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => {
                Ok(left.schema(catalog)?.join(&right.schema(catalog)?))
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema(catalog)?;
                let mut cols = Vec::with_capacity(group_by.len() + aggregates.len());
                for item in group_by {
                    cols.push(Column::new(
                        item.name.clone(),
                        item.expr.infer_type(&in_schema)?,
                    ));
                }
                for agg in aggregates {
                    let dt = match (agg.func, &agg.arg) {
                        (AggFunc::Count, _) => DataType::Int,
                        (AggFunc::Avg, _) => DataType::Real,
                        (AggFunc::Sum, Some(arg)) => match arg.infer_type(&in_schema)? {
                            DataType::Int => DataType::Int,
                            _ => DataType::Real,
                        },
                        (AggFunc::Min | AggFunc::Max, Some(arg)) => arg.infer_type(&in_schema)?,
                        (f, None) => {
                            return Err(AlgebraError::Type(format!(
                                "{} requires an argument",
                                f.name()
                            )))
                        }
                    };
                    cols.push(Column::new(agg.name.clone(), dt));
                }
                Schema::new(cols).map_err(AlgebraError::from)
            }
            PhysicalPlan::Union { left, right } | PhysicalPlan::Difference { left, right } => {
                let l = left.schema(catalog)?;
                let r = right.schema(catalog)?;
                if l.arity() != r.arity() {
                    return Err(AlgebraError::SchemaMismatch(format!(
                        "arity {} vs {}",
                        l.arity(),
                        r.arity()
                    )));
                }
                for (a, b) in l.columns().iter().zip(r.columns()) {
                    if a.data_type != b.data_type {
                        return Err(AlgebraError::SchemaMismatch(format!(
                            "column `{}` is {} on the left but {} on the right",
                            a.name, a.data_type, b.data_type
                        )));
                    }
                }
                Ok(l)
            }
        }
    }

    /// The one-line label this node renders in [`fmt::Display`], exposing
    /// the access path, join strategy and pushed-down predicates. The
    /// physical profiler tags each operator with exactly this string, so
    /// physical `EXPLAIN ANALYZE` lines up with `EXPLAIN` by construction.
    pub fn node_label(&self) -> String {
        fn filter_suffix(residual: &Option<ScalarExpr>) -> String {
            match residual {
                Some(p) => format!(" [filter: {p}]"),
                None => String::new(),
            }
        }
        match self {
            PhysicalPlan::TableScan {
                table,
                alias,
                residual,
            } => {
                let name = match alias {
                    Some(a) => format!("{table} AS {a}"),
                    None => table.clone(),
                };
                format!("TableScan {name}{}", filter_suffix(residual))
            }
            PhysicalPlan::IndexScan {
                table,
                alias,
                column_name,
                key,
                residual,
                ..
            } => {
                let name = match alias {
                    Some(a) => format!("{table} AS {a}"),
                    None => table.clone(),
                };
                let key = ScalarExpr::Literal(key.clone());
                format!(
                    "IndexScan {name} ({column_name} = {key}){}",
                    filter_suffix(residual)
                )
            }
            PhysicalPlan::Filter { predicate, .. } => format!("Filter [{predicate}]"),
            PhysicalPlan::Project {
                items, distinct, ..
            } => {
                let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
                format!(
                    "Project{} [{}]",
                    if *distinct { " DISTINCT" } else { "" },
                    names.join(", ")
                )
            }
            PhysicalPlan::HashJoin { keys, residual, .. } => {
                let pairs: Vec<String> = keys.iter().map(|(l, r)| format!("#{l} = #{r}")).collect();
                format!(
                    "HashJoin [{}]{}",
                    pairs.join(" AND "),
                    filter_suffix(residual)
                )
            }
            PhysicalPlan::NestedLoopJoin { predicate, .. } => match predicate {
                Some(p) => format!("NestedLoopJoin [{p}]"),
                None => "NestedLoopJoin (cross)".to_owned(),
            },
            PhysicalPlan::Union { .. } => "Union".to_owned(),
            PhysicalPlan::Difference { .. } => "Difference".to_owned(),
            PhysicalPlan::Sort { keys, .. } => format!("Sort ({} key(s))", keys.len()),
            PhysicalPlan::Limit { count, .. } => format!("Limit {count}"),
            PhysicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let keys: Vec<&str> = group_by.iter().map(|g| g.name.as_str()).collect();
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| format!("{}({})", a.func.name(), a.name))
                    .collect();
                format!(
                    "Aggregate by [{}] computing [{}]",
                    keys.join(", "),
                    aggs.join(", ")
                )
            }
        }
    }

    /// The node's inputs, left-to-right (empty for scans).
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::TableScan { .. } | PhysicalPlan::IndexScan { .. } => Vec::new(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::Aggregate { input, .. } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::Union { left, right }
            | PhysicalPlan::Difference { left, right } => vec![left, right],
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn indent(f: &mut fmt::Formatter<'_>, plan: &PhysicalPlan, depth: usize) -> fmt::Result {
            writeln!(f, "{}{}", "  ".repeat(depth), plan.node_label())?;
            for child in plan.children() {
                indent(f, child, depth + 1)?;
            }
            Ok(())
        }
        indent(f, self, 0)
    }
}

/// Render a logical and a physical plan side by side, line-aligned at the
/// top: the shell's `.plan` output. The left column is padded to the
/// longest logical line.
pub fn render_side_by_side(logical: &Plan, physical: &PhysicalPlan) -> String {
    let left: Vec<String> = logical.to_string().lines().map(str::to_owned).collect();
    let right: Vec<String> = physical.to_string().lines().map(str::to_owned).collect();
    let width = left.iter().map(String::len).max().unwrap_or(0).max(12);
    let mut out = String::new();
    out.push_str(&format!("{:<width$} | {}\n", "LOGICAL", "PHYSICAL"));
    out.push_str(&format!("{:-<width$}-+-{:-<width$}\n", "", ""));
    for i in 0..left.len().max(right.len()) {
        let l = left.get(i).map(String::as_str).unwrap_or("");
        let r = right.get(i).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{l:<width$} | {r}\n"));
    }
    out
}
