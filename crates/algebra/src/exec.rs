//! Plan execution with lineage propagation.

use crate::expr::ScalarExpr;
use crate::plan::{Plan, ProjItem};
use crate::result::{DerivedTuple, ResultSet};
use crate::Result;
use pcqe_lineage::Lineage;
use pcqe_par::{ParObserver, Parallelism, TraceSink};
use pcqe_storage::{Catalog, Tuple, Value};
use std::collections::BTreeMap;

/// Per-operator counters from a profiled execution (`EXPLAIN ANALYZE`).
///
/// `operator` is exactly [`Plan::node_label`], and profiles are collected
/// in the same pre-order as [`Plan`]'s `Display` rendering — one entry per
/// plan line, so annotated output can zip the two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorProfile {
    /// The operator's one-line label (`"Scan Proposal"`, `"Join"`, …).
    pub operator: String,
    /// Depth in the plan tree (root = 0); matches `Display` indentation.
    pub depth: usize,
    /// Rows consumed from this operator's direct inputs (for `Scan`, the
    /// rows read from storage).
    pub rows_in: u64,
    /// Rows produced (after any duplicate merging).
    pub rows_out: u64,
    /// Total lineage-expression nodes across the produced rows — the
    /// quantity that drives downstream confidence-evaluation cost.
    pub lineage_nodes: u64,
    /// Columnar batches produced (0 = the operator ran row-at-a-time,
    /// as the tuple executor and the vectorized pipeline breakers do).
    pub batches: u64,
}

/// The profile of one executed plan: operators in pre-order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// One entry per plan node, pre-order (= `Display` line order).
    pub operators: Vec<OperatorProfile>,
}

impl ExecProfile {
    /// Render the plan with per-operator row counts appended to each line:
    /// the `EXPLAIN ANALYZE` text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for op in &self.operators {
            let _ = write!(
                out,
                "{}{} (rows_in={} rows_out={} lineage_nodes={}",
                "  ".repeat(op.depth),
                op.operator,
                op.rows_in,
                op.rows_out,
                op.lineage_nodes
            );
            if op.batches > 0 {
                let _ = write!(out, " batches={}", op.batches);
            }
            let _ = writeln!(out, ")");
        }
        out
    }
}

/// Pre-order profile collector; a disabled profiler is a no-op.
///
/// Shared between the logical executor (labels from [`Plan::node_label`])
/// and the physical executor (labels from
/// [`crate::physical::PhysicalPlan::node_label`]).
pub(crate) struct Profiler {
    slots: Option<Vec<OperatorProfile>>,
}

impl Profiler {
    pub(crate) fn off() -> Profiler {
        Profiler { slots: None }
    }

    pub(crate) fn on() -> Profiler {
        Profiler {
            slots: Some(Vec::new()),
        }
    }

    /// Reserve this node's slot *before* its children run, so slot order
    /// is pre-order regardless of execution order. The label closure is
    /// only invoked when profiling is enabled, keeping the unprofiled hot
    /// path allocation-free.
    pub(crate) fn enter(&mut self, depth: usize, label: impl FnOnce() -> String) -> usize {
        match &mut self.slots {
            None => 0,
            Some(v) => {
                v.push(OperatorProfile {
                    operator: label(),
                    depth,
                    rows_in: 0,
                    rows_out: 0,
                    lineage_nodes: 0,
                    batches: 0,
                });
                v.len() - 1
            }
        }
    }

    /// Fill the reserved slot once the operator's output exists.
    pub(crate) fn exit(&mut self, slot: usize, rows_in: usize, out: &[DerivedTuple]) {
        if let Some(v) = &mut self.slots {
            if let Some(p) = v.get_mut(slot) {
                p.rows_in = rows_in as u64;
                p.rows_out = out.len() as u64;
                p.lineage_nodes = out
                    .iter()
                    .fold(0u64, |acc, r| acc.saturating_add(r.lineage.size() as u64));
            }
        }
    }

    /// Fill the reserved slot from precomputed counters — the vectorized
    /// executor's exit, where output may still be columnar.
    pub(crate) fn exit_counts(
        &mut self,
        slot: usize,
        rows_in: usize,
        rows_out: usize,
        lineage_nodes: u64,
        batches: u64,
    ) {
        if let Some(v) = &mut self.slots {
            if let Some(p) = v.get_mut(slot) {
                p.rows_in = rows_in as u64;
                p.rows_out = rows_out as u64;
                p.lineage_nodes = lineage_nodes;
                p.batches = batches;
            }
        }
    }

    pub(crate) fn finish(self) -> ExecProfile {
        ExecProfile {
            operators: self.slots.unwrap_or_default(),
        }
    }
}

/// Everything an operator needs besides the plan node itself. Shared with
/// the physical executor ([`crate::physical`]).
pub(crate) struct Ctx<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) par: &'a Parallelism,
    pub(crate) observer: Option<&'a dyn ParObserver>,
    /// Optional causal trace sink: when set, each operator wraps its
    /// execution in an `op:<label>` span. Write-only — results are
    /// byte-identical with or without a sink.
    pub(crate) trace: Option<&'a dyn TraceSink>,
}

/// Execute a plan against a catalog, producing derived tuples with lineage.
///
/// Confidence values are *not* consulted here — lineage is purely symbolic
/// and scoring happens afterwards via [`crate::ResultSet::score`]. This
/// split is what lets the strategy-finding algorithms re-score the same
/// results under hypothetical confidence increments without re-running the
/// query.
///
/// Runs sequentially; [`execute_with`] adds morsel parallelism.
pub fn execute(plan: &Plan, catalog: &Catalog) -> Result<ResultSet> {
    execute_with(plan, catalog, &Parallelism::sequential())
}

/// [`execute`] with a parallelism policy: large `Select`/`Project` inputs,
/// join probe phases and cross products are split into morsels and
/// evaluated on worker threads.
///
/// The output is byte-identical to [`execute`] for any policy — each
/// operator's per-row work is pure, morsel outputs are reassembled in
/// input order, and errors surface as the first failure in input order.
pub fn execute_with(plan: &Plan, catalog: &Catalog, par: &Parallelism) -> Result<ResultSet> {
    let schema = plan.schema(catalog)?;
    let ctx = Ctx {
        catalog,
        par,
        observer: None,
        trace: None,
    };
    let rows = run(plan, &ctx, 0, &mut Profiler::off())?;
    Ok(ResultSet::new(schema, rows))
}

/// [`execute_with`], additionally collecting a per-operator [`ExecProfile`]
/// and (optionally) feeding scheduler telemetry to a [`ParObserver`].
///
/// The result set is byte-identical to [`execute_with`]'s for the same
/// plan/catalog/policy: profiling only counts rows and lineage nodes that
/// the unprofiled path computes anyway, and the observer is write-only.
pub fn execute_profiled(
    plan: &Plan,
    catalog: &Catalog,
    par: &Parallelism,
    observer: Option<&dyn ParObserver>,
) -> Result<(ResultSet, ExecProfile)> {
    execute_traced(plan, catalog, par, observer, None)
}

/// [`execute_profiled`] with an optional causal [`TraceSink`]: every
/// operator wraps its execution in an `op:<label>` span, nested to mirror
/// the plan tree. The sink is write-only — the result set and profile are
/// byte-identical to [`execute_profiled`]'s.
pub fn execute_traced(
    plan: &Plan,
    catalog: &Catalog,
    par: &Parallelism,
    observer: Option<&dyn ParObserver>,
    trace: Option<&dyn TraceSink>,
) -> Result<(ResultSet, ExecProfile)> {
    let schema = plan.schema(catalog)?;
    let ctx = Ctx {
        catalog,
        par,
        observer,
        trace,
    };
    let mut prof = Profiler::on();
    let rows = run(plan, &ctx, 0, &mut prof)?;
    Ok((ResultSet::new(schema, rows), prof.finish()))
}

fn run(plan: &Plan, ctx: &Ctx<'_>, depth: usize, prof: &mut Profiler) -> Result<Vec<DerivedTuple>> {
    let slot = prof.enter(depth, || plan.node_label());
    let span = ctx
        .trace
        .map(|t| t.span_begin(&format!("op:{}", plan.node_label())));
    let (rows_in, out) = run_node(plan, ctx, depth, prof)?;
    if let (Some(t), Some(id)) = (ctx.trace, span) {
        t.span_end(id);
    }
    prof.exit(slot, rows_in, &out);
    Ok(out)
}

/// Execute one node; returns `(rows consumed from direct inputs, output)`.
fn run_node(
    plan: &Plan,
    ctx: &Ctx<'_>,
    depth: usize,
    prof: &mut Profiler,
) -> Result<(usize, Vec<DerivedTuple>)> {
    let catalog = ctx.catalog;
    let par = ctx.par;
    match plan {
        Plan::Scan { table, .. } => {
            let t = catalog.table(table)?;
            let out: Vec<DerivedTuple> = t
                .rows()
                .iter()
                .map(|r| DerivedTuple {
                    tuple: r.tuple.clone(),
                    lineage: Lineage::var(r.id.0),
                })
                .collect();
            Ok((out.len(), out))
        }
        Plan::Select { input, predicate } => {
            let rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            // Morsel-parallel predicate evaluation; the filter itself is a
            // cheap sequential pass over the boolean mask, so output order
            // (and the first error reported) match the sequential loop.
            let keep = pcqe_par::try_map_observed(
                par,
                &rows,
                |row| predicate.eval_predicate(row.tuple.values()),
                ctx.observer,
            )?;
            let out: Vec<DerivedTuple> = rows
                .into_iter()
                .zip(keep)
                .filter_map(|(row, k)| k.then_some(row))
                .collect();
            Ok((rows_in, out))
        }
        Plan::Project {
            input,
            items,
            distinct,
        } => {
            let rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            // Morsel-parallel expression evaluation, one output row per
            // input row in input order.
            let values = pcqe_par::try_map_observed(
                par,
                &rows,
                |row| eval_items(items, row.tuple.values()),
                ctx.observer,
            )?;
            let projected: Vec<DerivedTuple> = rows
                .into_iter()
                .zip(values)
                .map(|(row, values)| DerivedTuple {
                    tuple: Tuple::new(values),
                    lineage: row.lineage,
                })
                .collect();
            let out = if *distinct {
                or_merge(projected)
            } else {
                projected
            };
            Ok((rows_in, out))
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let l = run(left, ctx, depth + 1, prof)?;
            let r = run(right, ctx, depth + 1, prof)?;
            let rows_in = l.len() + r.len();
            let left_schema = left.schema(catalog)?;
            let right_schema = right.schema(catalog)?;
            let left_arity = left_schema.arity();
            // Hash join on the equality conjuncts when any exist; the
            // remaining conjuncts become a residual filter per match.
            // Only same-typed column pairs are hashable — hashing must
            // agree with `=`'s numeric coercion, so an INT = REAL pair
            // stays in the residual.
            let hashable = |lc: usize, rc: usize| {
                let lt = left_schema.columns().get(lc).map(|c| c.data_type);
                let rt = right_schema
                    .columns()
                    .get(rc - left_arity)
                    .map(|c| c.data_type);
                lt.is_some() && lt == rt
            };
            let (equi, residual) = split_equi_conjuncts(predicate, left_arity, hashable);
            if equi.is_empty() {
                // Nested-loop fallback, morsel-parallel over left rows:
                // each left row independently produces its ordered match
                // list; flattening the per-row lists in input order is
                // exactly the sequential nested loop's output.
                let per_left = pcqe_par::try_map_observed(
                    par,
                    &l,
                    |lr| -> Result<Vec<DerivedTuple>> {
                        let mut matches = Vec::new();
                        for rr in &r {
                            let combined = lr.tuple.concat(&rr.tuple);
                            if predicate.eval_predicate(combined.values())? {
                                matches.push(DerivedTuple {
                                    tuple: combined,
                                    lineage: Lineage::and(vec![
                                        lr.lineage.clone(),
                                        rr.lineage.clone(),
                                    ]),
                                });
                            }
                        }
                        Ok(matches)
                    },
                    ctx.observer,
                )?;
                return Ok((rows_in, per_left.into_iter().flatten().collect()));
            }
            // Build on the right side. An ordered map keeps the operator
            // deterministic-by-construction (lint rule PCQE-D001): even
            // though probing only does point lookups today, nothing can
            // later iterate this table in nondeterministic order.
            let mut table: BTreeMap<Vec<Value>, Vec<usize>> = BTreeMap::new();
            'rows: for (i, rr) in r.iter().enumerate() {
                let mut key = Vec::with_capacity(equi.len());
                for &(_, rc) in &equi {
                    let v = rr.tuple.get(rc - left_arity).cloned().ok_or_else(|| {
                        crate::error::AlgebraError::Type(format!(
                            "join key column {rc} out of range"
                        ))
                    })?;
                    if v.is_null() {
                        continue 'rows; // NULL never equi-joins
                    }
                    key.push(v);
                }
                table.entry(key).or_default().push(i);
            }
            // Probe phase, morsel-parallel over left rows: the hash table
            // is read-only during probing, each left row's match list
            // preserves build order, and flattening per-row lists in
            // input order reproduces the sequential probe loop exactly.
            let per_left = pcqe_par::try_map_observed(
                par,
                &l,
                |lr| -> Result<Vec<DerivedTuple>> {
                    let mut key = Vec::with_capacity(equi.len());
                    for &(lc, _) in &equi {
                        let v = lr.tuple.get(lc).cloned().ok_or_else(|| {
                            crate::error::AlgebraError::Type(format!(
                                "join key column {lc} out of range"
                            ))
                        })?;
                        if v.is_null() {
                            return Ok(Vec::new()); // NULL never equi-joins
                        }
                        key.push(v);
                    }
                    let Some(matches) = table.get(&key) else {
                        return Ok(Vec::new());
                    };
                    let mut out = Vec::with_capacity(matches.len());
                    for &ri in matches {
                        let rr = &r[ri];
                        let combined = lr.tuple.concat(&rr.tuple);
                        let keep = match &residual {
                            Some(res) => res.eval_predicate(combined.values())?,
                            None => true,
                        };
                        if keep {
                            out.push(DerivedTuple {
                                tuple: combined,
                                lineage: Lineage::and(vec![lr.lineage.clone(), rr.lineage.clone()]),
                            });
                        }
                    }
                    Ok(out)
                },
                ctx.observer,
            )?;
            Ok((rows_in, per_left.into_iter().flatten().collect()))
        }
        Plan::Product { left, right } => {
            let l = run(left, ctx, depth + 1, prof)?;
            let r = run(right, ctx, depth + 1, prof)?;
            let rows_in = l.len() + r.len();
            // Morsel-parallel over left rows; flattened in input order.
            let per_left = pcqe_par::map_observed(
                par,
                &l,
                |lr| {
                    r.iter()
                        .map(|rr| DerivedTuple {
                            tuple: lr.tuple.concat(&rr.tuple),
                            lineage: Lineage::and(vec![lr.lineage.clone(), rr.lineage.clone()]),
                        })
                        .collect::<Vec<_>>()
                },
                ctx.observer,
            );
            Ok((rows_in, per_left.into_iter().flatten().collect()))
        }
        Plan::Union { left, right } => {
            // Schema compatibility is checked by Plan::schema.
            plan.schema(catalog)?;
            let mut rows = run(left, ctx, depth + 1, prof)?;
            rows.extend(run(right, ctx, depth + 1, prof)?);
            let rows_in = rows.len();
            Ok((rows_in, or_merge(rows)))
        }
        Plan::Sort { input, keys } => {
            let mut rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            sort_rows(&mut rows, keys)?;
            Ok((rows_in, rows))
        }
        Plan::Limit { input, count } => {
            let mut rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            rows.truncate(*count);
            Ok((rows_in, rows))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let rows = run(input, ctx, depth + 1, prof)?;
            let rows_in = rows.len();
            // Group rows by their key values, preserving first-seen order.
            let mut index: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
            let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                let mut key = Vec::with_capacity(group_by.len());
                for g in group_by {
                    key.push(g.expr.eval(row.tuple.values())?);
                }
                match index.get(&key) {
                    Some(&gi) => groups[gi].1.push(i),
                    None => {
                        index.insert(key.clone(), groups.len());
                        groups.push((key, vec![i]));
                    }
                }
            }
            // With no GROUP BY there is always exactly one (possibly
            // empty) group, per SQL.
            if group_by.is_empty() && groups.is_empty() {
                groups.push((Vec::new(), Vec::new()));
            }
            let mut out = Vec::with_capacity(groups.len());
            for (key, members) in groups {
                let mut values = key;
                for agg in aggregates {
                    values.push(eval_aggregate(agg, &members, &rows)?);
                }
                let lineage = if members.is_empty() {
                    // The empty global group exists with certainty.
                    Lineage::certain()
                } else {
                    Lineage::or(members.iter().map(|&i| rows[i].lineage.clone()).collect())
                };
                out.push(DerivedTuple {
                    tuple: Tuple::new(values),
                    lineage,
                });
            }
            Ok((rows_in, out))
        }
        Plan::Difference { left, right } => {
            plan.schema(catalog)?;
            let l = or_merge(run(left, ctx, depth + 1, prof)?);
            let r = or_merge(run(right, ctx, depth + 1, prof)?);
            let rows_in = l.len() + r.len();
            let right_by_value: BTreeMap<&Tuple, &Lineage> =
                r.iter().map(|d| (&d.tuple, &d.lineage)).collect();
            let mut out = Vec::new();
            for row in &l {
                let lineage = match right_by_value.get(&row.tuple) {
                    Some(rl) => {
                        Lineage::and(vec![row.lineage.clone(), Lineage::not((*rl).clone())])
                    }
                    None => row.lineage.clone(),
                };
                if lineage != Lineage::Const(false) {
                    out.push(DerivedTuple {
                        tuple: row.tuple.clone(),
                        lineage,
                    });
                }
            }
            Ok((rows_in, out))
        }
    }
}

/// Split a join predicate into hashable equality pairs `(left column,
/// right column)` and the residual predicate. `hashable` decides whether a
/// candidate pair may be used as a hash key.
pub(crate) fn split_equi_conjuncts(
    predicate: &ScalarExpr,
    left_arity: usize,
    hashable: impl Fn(usize, usize) -> bool,
) -> (Vec<(usize, usize)>, Option<ScalarExpr>) {
    fn conjuncts(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
        match e {
            ScalarExpr::Binary {
                op: crate::expr::BinaryOp::And,
                left,
                right,
            } => {
                conjuncts(left, out);
                conjuncts(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    let mut parts = Vec::new();
    conjuncts(predicate, &mut parts);
    let mut equi = Vec::new();
    let mut residual = Vec::new();
    for part in parts {
        if let ScalarExpr::Binary {
            op: crate::expr::BinaryOp::Eq,
            left,
            right,
        } = &part
        {
            if let (ScalarExpr::Column(a), ScalarExpr::Column(b)) = (&**left, &**right) {
                let (lc, rc) = if a < b { (*a, *b) } else { (*b, *a) };
                if lc < left_arity && rc >= left_arity && hashable(lc, rc) {
                    equi.push((lc, rc));
                    continue;
                }
            }
        }
        residual.push(part);
    }
    let residual = if residual.is_empty() {
        None
    } else {
        let first = residual.remove(0);
        Some(residual.into_iter().fold(first, |acc, c| acc.and(c)))
    };
    (equi, residual)
}

pub(crate) fn sort_rows(rows: &mut [DerivedTuple], keys: &[crate::plan::SortKey]) -> Result<()> {
    // Precompute key tuples so evaluation errors surface before sorting.
    let mut keyed: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
    for row in rows.iter() {
        let mut ks = Vec::with_capacity(keys.len());
        for key in keys {
            ks.push(key.expr.eval(row.tuple.values())?);
        }
        keyed.push(ks);
    }
    let mut order: Vec<usize> = (0..rows.len()).collect();
    order.sort_by(|&a, &b| {
        for (ki, key) in keys.iter().enumerate() {
            let cmp = keyed[a][ki].cmp(&keyed[b][ki]);
            let cmp = if key.descending { cmp.reverse() } else { cmp };
            if cmp != std::cmp::Ordering::Equal {
                return cmp;
            }
        }
        std::cmp::Ordering::Equal
    });
    // Apply the permutation.
    let mut sorted: Vec<DerivedTuple> = Vec::with_capacity(rows.len());
    for &i in &order {
        sorted.push(rows[i].clone());
    }
    rows.clone_from_slice(&sorted);
    Ok(())
}

/// Evaluate one aggregate over a group's member rows.
pub(crate) fn eval_aggregate(
    agg: &crate::plan::AggItem,
    members: &[usize],
    rows: &[DerivedTuple],
) -> Result<Value> {
    use crate::plan::AggFunc;
    // Collect the argument values, skipping NULLs (SQL semantics).
    // COUNT(*) has no argument and counts every row.
    let mut args: Vec<Value> = Vec::with_capacity(members.len());
    if let Some(arg) = &agg.arg {
        for &i in members {
            let v = arg.eval(rows[i].tuple.values())?;
            if !v.is_null() {
                args.push(v);
            }
        }
    }
    let numeric = |v: &Value| -> Result<f64> {
        v.as_f64().ok_or_else(|| {
            crate::error::AlgebraError::Type(format!(
                "{} over non-numeric value {v}",
                agg.func.name()
            ))
        })
    };
    Ok(match agg.func {
        AggFunc::Count => match &agg.arg {
            None => Value::Int(members.len() as i64),
            Some(_) => Value::Int(args.len() as i64),
        },
        AggFunc::Sum => {
            if args.is_empty() {
                Value::Null
            } else if args.iter().all(|v| matches!(v, Value::Int(_))) {
                let mut total = 0i64;
                for v in &args {
                    // The `all ints` guard above makes `as_i64` infallible,
                    // but we still route the impossible case through the
                    // typed error instead of panicking (PCQE-P001 ethos).
                    let n = v.as_i64().ok_or_else(|| {
                        crate::error::AlgebraError::Type("SUM over non-integer value".into())
                    })?;
                    total = total
                        .checked_add(n)
                        .ok_or_else(|| crate::error::AlgebraError::Type("SUM overflow".into()))?;
                }
                Value::Int(total)
            } else {
                let mut total = 0.0;
                for v in &args {
                    total += numeric(v)?;
                }
                Value::Real(total)
            }
        }
        AggFunc::Avg => {
            if args.is_empty() {
                Value::Null
            } else {
                let mut total = 0.0;
                for v in &args {
                    total += numeric(v)?;
                }
                Value::Real(total / args.len() as f64)
            }
        }
        AggFunc::Min => args.into_iter().min().unwrap_or(Value::Null),
        AggFunc::Max => args.into_iter().max().unwrap_or(Value::Null),
    })
}

pub(crate) fn eval_items(items: &[ProjItem], row: &[Value]) -> Result<Vec<Value>> {
    items.iter().map(|item| item.expr.eval(row)).collect()
}

/// Merge rows with identical values, OR-ing their lineage (set semantics).
/// The first occurrence's position is kept, so output order is stable.
pub(crate) fn or_merge(rows: Vec<DerivedTuple>) -> Vec<DerivedTuple> {
    let mut index: BTreeMap<Tuple, usize> = BTreeMap::new();
    let mut grouped: Vec<(Tuple, Vec<Lineage>)> = Vec::new();
    for row in rows {
        match index.get(&row.tuple) {
            Some(&i) => grouped[i].1.push(row.lineage),
            None => {
                index.insert(row.tuple.clone(), grouped.len());
                grouped.push((row.tuple, vec![row.lineage]));
            }
        }
    }
    grouped
        .into_iter()
        .map(|(tuple, lineages)| DerivedTuple {
            lineage: Lineage::or(lineages),
            tuple,
        })
        .collect()
}

/// Convenience: a [`ScalarExpr`] equality predicate between two columns of a
/// joined schema, resolved by qualified name.
pub fn eq_columns(
    schema: &pcqe_storage::Schema,
    left: (Option<&str>, &str),
    right: (Option<&str>, &str),
) -> Result<ScalarExpr> {
    let l = ScalarExpr::named(schema, left.0, left.1)?;
    let r = ScalarExpr::named(schema, right.0, right.1)?;
    Ok(l.eq(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AlgebraError;
    use pcqe_lineage::{Evaluator, VarId};
    use pcqe_storage::{Column, DataType, Schema};

    /// Build the paper's running-example database (Tables 1 and 2).
    #[allow(clippy::vec_init_then_push)]
    fn paper_db() -> (Catalog, Vec<pcqe_storage::TupleId>) {
        let mut c = Catalog::new();
        c.create_table(
            "Proposal",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("proposal", DataType::Text),
                Column::new("funding", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "CompanyInfo",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("income", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        let mut ids = Vec::new();
        // Tuple 01: a proposal asking too much (filtered by σ).
        ids.push(
            c.insert(
                "Proposal",
                vec![
                    Value::text("HighReach"),
                    Value::text("expansion"),
                    Value::Real(2_000_000.0),
                ],
                0.5,
            )
            .unwrap(),
        );
        // Tuples 02 and 03: two SkyCam proposals under one million — after
        // the projection they merge into one result with OR lineage.
        ids.push(
            c.insert(
                "Proposal",
                vec![
                    Value::text("SkyCam"),
                    Value::text("drone v1"),
                    Value::Real(800_000.0),
                ],
                0.3,
            )
            .unwrap(),
        );
        ids.push(
            c.insert(
                "Proposal",
                vec![
                    Value::text("SkyCam"),
                    Value::text("drone v2"),
                    Value::Real(900_000.0),
                ],
                0.4,
            )
            .unwrap(),
        );
        // Tuple 13: SkyCam's financials.
        ids.push(
            c.insert(
                "CompanyInfo",
                vec![Value::text("SkyCam"), Value::Real(500_000.0)],
                0.1,
            )
            .unwrap(),
        );
        (c, ids)
    }

    /// The paper's query: Π_company,income( σ_funding<1M(Proposal) ⋈ CompanyInfo ).
    fn paper_plan(catalog: &Catalog) -> Plan {
        let scan_p = Plan::scan("Proposal");
        let p_schema = scan_p.schema(catalog).unwrap();
        let sel = scan_p.select(
            ScalarExpr::named(&p_schema, None, "funding")
                .unwrap()
                .lt(ScalarExpr::literal(Value::Real(1_000_000.0))),
        );
        let joined_schema = sel
            .schema(catalog)
            .unwrap()
            .join(&Plan::scan("CompanyInfo").schema(catalog).unwrap());
        let join = sel.join(
            Plan::scan("CompanyInfo"),
            eq_columns(
                &joined_schema,
                (Some("Proposal"), "company"),
                (Some("CompanyInfo"), "company"),
            )
            .unwrap(),
        );
        let join_schema = join.schema(catalog).unwrap();
        join.project(vec![
            ProjItem::new(
                ScalarExpr::named(&join_schema, Some("CompanyInfo"), "company").unwrap(),
                "company",
            ),
            ProjItem::new(
                ScalarExpr::named(&join_schema, Some("CompanyInfo"), "income").unwrap(),
                "income",
            ),
        ])
    }

    #[test]
    fn running_example_confidence_is_0_058() {
        let (catalog, ids) = paper_db();
        let plan = paper_plan(&catalog);
        let rs = execute(&plan, &catalog).unwrap();
        assert_eq!(rs.len(), 1, "one merged Candidate row");
        // Lineage is (t02 ∧ t13) ∨ (t03 ∧ t13) — logically equal to the
        // paper's factored form (t02 ∨ t03) ∧ t13. Check equivalence over
        // every truth assignment of the three variables.
        let expected = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(ids[1].0), Lineage::var(ids[2].0)]),
            Lineage::var(ids[3].0),
        ]);
        let got = &rs.rows()[0].lineage;
        let vars = expected.vars();
        assert_eq!(got.vars(), vars);
        for bits in 0..(1u32 << vars.len()) {
            let assign = |v: VarId| {
                let slot = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << slot) != 0
            };
            assert_eq!(got.eval(&assign), expected.eval(&assign), "bits {bits:b}");
        }
        let probs = |v: VarId| catalog.confidence(pcqe_storage::TupleId(v.0));
        let scored = rs.score(&probs, &Evaluator::default()).unwrap();
        assert!((scored[0].confidence - 0.058).abs() < 1e-12);
    }

    #[test]
    fn select_filters_by_predicate() {
        let (catalog, _) = paper_db();
        let scan = Plan::scan("Proposal");
        let schema = scan.schema(&catalog).unwrap();
        let plan = scan.select(
            ScalarExpr::named(&schema, None, "funding")
                .unwrap()
                .lt(ScalarExpr::literal(Value::Real(1_000_000.0))),
        );
        let rs = execute(&plan, &catalog).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn bag_projection_keeps_duplicates() {
        let (catalog, _) = paper_db();
        let scan = Plan::scan("Proposal");
        let schema = scan.schema(&catalog).unwrap();
        let plan = scan.project_all(vec![ProjItem::new(
            ScalarExpr::named(&schema, None, "company").unwrap(),
            "company",
        )]);
        let rs = execute(&plan, &catalog).unwrap();
        assert_eq!(rs.len(), 3, "bag semantics: SkyCam appears twice");
    }

    #[test]
    fn union_or_merges_duplicates() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        c.create_table("a", schema.clone()).unwrap();
        c.create_table("b", schema).unwrap();
        let ia = c.insert("a", vec![Value::Int(7)], 0.5).unwrap();
        let ib = c.insert("b", vec![Value::Int(7)], 0.5).unwrap();
        c.insert("b", vec![Value::Int(8)], 0.5).unwrap();
        let plan = Plan::scan("a").union(Plan::scan("b"));
        let rs = execute(&plan, &c).unwrap();
        assert_eq!(rs.len(), 2);
        let seven = rs
            .rows()
            .iter()
            .find(|r| r.tuple.get(0) == Some(&Value::Int(7)))
            .unwrap();
        assert_eq!(
            seven.lineage,
            Lineage::or(vec![Lineage::var(ia.0), Lineage::var(ib.0)])
        );
    }

    #[test]
    fn difference_negates_right_lineage() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        c.create_table("a", schema.clone()).unwrap();
        c.create_table("b", schema).unwrap();
        let ia = c.insert("a", vec![Value::Int(1)], 0.8).unwrap();
        let ia2 = c.insert("a", vec![Value::Int(2)], 0.8).unwrap();
        let ib = c.insert("b", vec![Value::Int(1)], 0.5).unwrap();
        let plan = Plan::scan("a").difference(Plan::scan("b"));
        let rs = execute(&plan, &c).unwrap();
        assert_eq!(rs.len(), 2);
        let one = rs
            .rows()
            .iter()
            .find(|r| r.tuple.get(0) == Some(&Value::Int(1)))
            .unwrap();
        assert_eq!(
            one.lineage,
            Lineage::and(vec![Lineage::var(ia.0), Lineage::not(Lineage::var(ib.0))])
        );
        let two = rs
            .rows()
            .iter()
            .find(|r| r.tuple.get(0) == Some(&Value::Int(2)))
            .unwrap();
        assert_eq!(two.lineage, Lineage::var(ia2.0));
        // Scoring: P(1 in a−b) = 0.8 · 0.5.
        let probs = |v: VarId| c.confidence(pcqe_storage::TupleId(v.0));
        let scored = rs.score(&probs, &Evaluator::default()).unwrap();
        let s1 = scored
            .iter()
            .find(|s| s.tuple.get(0) == Some(&Value::Int(1)))
            .unwrap();
        assert!((s1.confidence - 0.4).abs() < 1e-12);
    }

    #[test]
    fn product_produces_all_pairs() {
        let (catalog, _) = paper_db();
        let plan = Plan::scan("Proposal").product(Plan::scan("CompanyInfo"));
        let rs = execute(&plan, &catalog).unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.schema().arity(), 5);
    }

    #[test]
    fn aggregation_groups_and_or_merges_lineage() {
        use crate::plan::{AggFunc, AggItem};
        let (catalog, ids) = paper_db();
        let scan = Plan::scan("Proposal");
        let schema = scan.schema(&catalog).unwrap();
        let plan = scan.aggregate(
            vec![ProjItem::new(
                ScalarExpr::named(&schema, None, "company").unwrap(),
                "company",
            )],
            vec![
                AggItem {
                    func: AggFunc::Count,
                    arg: None,
                    name: "n".into(),
                },
                AggItem {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::named(&schema, None, "funding").unwrap()),
                    name: "total".into(),
                },
                AggItem {
                    func: AggFunc::Avg,
                    arg: Some(ScalarExpr::named(&schema, None, "funding").unwrap()),
                    name: "avg".into(),
                },
                AggItem {
                    func: AggFunc::Min,
                    arg: Some(ScalarExpr::named(&schema, None, "funding").unwrap()),
                    name: "lo".into(),
                },
                AggItem {
                    func: AggFunc::Max,
                    arg: Some(ScalarExpr::named(&schema, None, "funding").unwrap()),
                    name: "hi".into(),
                },
            ],
        );
        let rs = execute(&plan, &catalog).unwrap();
        assert_eq!(rs.len(), 2);
        let sky = rs
            .rows()
            .iter()
            .find(|r| r.tuple.get(0) == Some(&Value::text("SkyCam")))
            .unwrap();
        assert_eq!(sky.tuple.get(1), Some(&Value::Int(2)));
        assert_eq!(sky.tuple.get(2), Some(&Value::Real(1_700_000.0)));
        assert_eq!(sky.tuple.get(3), Some(&Value::Real(850_000.0)));
        assert_eq!(sky.tuple.get(4), Some(&Value::Real(800_000.0)));
        assert_eq!(sky.tuple.get(5), Some(&Value::Real(900_000.0)));
        // Group lineage = OR of member lineage.
        assert_eq!(
            sky.lineage,
            Lineage::or(vec![Lineage::var(ids[1].0), Lineage::var(ids[2].0)])
        );
    }

    #[test]
    fn global_aggregate_over_empty_input_is_certain() {
        use crate::plan::{AggFunc, AggItem};
        let mut c = Catalog::new();
        c.create_table(
            "e",
            Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
        )
        .unwrap();
        let plan = Plan::scan("e").aggregate(
            vec![],
            vec![
                AggItem {
                    func: AggFunc::Count,
                    arg: None,
                    name: "n".into(),
                },
                AggItem {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::column(0)),
                    name: "s".into(),
                },
            ],
        );
        let rs = execute(&plan, &c).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0].tuple.get(0), Some(&Value::Int(0)));
        assert_eq!(rs.rows()[0].tuple.get(1), Some(&Value::Null));
        assert_eq!(rs.rows()[0].lineage, Lineage::certain());
    }

    #[test]
    fn count_argument_skips_nulls() {
        use crate::plan::{AggFunc, AggItem};
        let mut c = Catalog::new();
        c.create_table(
            "n",
            Schema::new(vec![Column::new("x", DataType::Int)]).unwrap(),
        )
        .unwrap();
        c.insert("n", vec![Value::Int(1)], 0.5).unwrap();
        c.insert("n", vec![Value::Null], 0.5).unwrap();
        let plan = Plan::scan("n").aggregate(
            vec![],
            vec![
                AggItem {
                    func: AggFunc::Count,
                    arg: None,
                    name: "all".into(),
                },
                AggItem {
                    func: AggFunc::Count,
                    arg: Some(ScalarExpr::column(0)),
                    name: "nonnull".into(),
                },
            ],
        );
        let rs = execute(&plan, &c).unwrap();
        assert_eq!(rs.rows()[0].tuple.get(0), Some(&Value::Int(2)));
        assert_eq!(rs.rows()[0].tuple.get(1), Some(&Value::Int(1)));
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        let mut c = Catalog::new();
        c.create_table(
            "a",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("x", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "b",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("y", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        c.insert("a", vec![Value::Int(1), Value::Int(10)], 0.5)
            .unwrap();
        c.insert("a", vec![Value::Int(2), Value::Int(20)], 0.5)
            .unwrap();
        c.insert("a", vec![Value::Null, Value::Int(30)], 0.5)
            .unwrap();
        c.insert("b", vec![Value::Int(1), Value::Int(100)], 0.5)
            .unwrap();
        c.insert("b", vec![Value::Int(1), Value::Int(101)], 0.5)
            .unwrap();
        c.insert("b", vec![Value::Null, Value::Int(102)], 0.5)
            .unwrap();
        // Equi key + residual: a.k = b.k AND y < 101.
        let plan = Plan::scan("a").join(
            Plan::scan("b"),
            ScalarExpr::column(0)
                .eq(ScalarExpr::column(2))
                .and(ScalarExpr::column(3).lt(ScalarExpr::literal(Value::Int(101)))),
        );
        let rs = execute(&plan, &c).unwrap();
        // Only (1,10,1,100): NULL keys never match, residual trims 101.
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows()[0].tuple.get(3), Some(&Value::Int(100)));
    }

    #[test]
    fn mixed_type_keys_fall_back_to_coercing_comparison() {
        let mut c = Catalog::new();
        c.create_table(
            "ints",
            Schema::new(vec![Column::new("k", DataType::Int)]).unwrap(),
        )
        .unwrap();
        c.create_table(
            "reals",
            Schema::new(vec![Column::new("k", DataType::Real)]).unwrap(),
        )
        .unwrap();
        c.insert("ints", vec![Value::Int(2)], 0.5).unwrap();
        c.insert("reals", vec![Value::Real(2.0)], 0.5).unwrap();
        let plan = Plan::scan("ints").join(
            Plan::scan("reals"),
            ScalarExpr::column(0).eq(ScalarExpr::column(1)),
        );
        // INT = REAL must coerce: 2 joins 2.0.
        assert_eq!(execute(&plan, &c).unwrap().len(), 1);
    }

    #[test]
    fn sort_and_limit_preserve_lineage() {
        let (catalog, ids) = paper_db();
        let scan = Plan::scan("Proposal");
        let schema = scan.schema(&catalog).unwrap();
        let plan = scan
            .sort(vec![crate::plan::SortKey {
                expr: ScalarExpr::named(&schema, None, "funding").unwrap(),
                descending: true,
            }])
            .limit(2);
        let rs = execute(&plan, &catalog).unwrap();
        assert_eq!(rs.len(), 2);
        // Highest funding first: the 2M expansion, then the 900K drone.
        assert_eq!(rs.rows()[0].tuple.get(2), Some(&Value::Real(2_000_000.0)));
        assert_eq!(rs.rows()[1].lineage, Lineage::var(ids[2].0));
        // Limit 0 yields nothing; limit beyond the input is a no-op.
        let all = execute(&Plan::scan("Proposal").limit(100), &catalog).unwrap();
        assert_eq!(all.len(), 3);
        let none = execute(&Plan::scan("Proposal").limit(0), &catalog).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_sequential() {
        // A wider catalog than the paper example so morsels actually split:
        // join + select + project over a few hundred rows.
        let mut c = Catalog::new();
        c.create_table(
            "a",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("x", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "b",
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("y", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        for i in 0..300i64 {
            c.insert("a", vec![Value::Int(i % 37), Value::Int(i)], 0.5)
                .unwrap();
            c.insert("b", vec![Value::Int(i % 23), Value::Int(i * 2)], 0.5)
                .unwrap();
        }
        let join = Plan::scan("a").join(
            Plan::scan("b"),
            ScalarExpr::column(0).eq(ScalarExpr::column(2)),
        );
        let plan = join
            .select(ScalarExpr::column(3).lt(ScalarExpr::literal(Value::Int(400))))
            .project(vec![
                ProjItem::new(ScalarExpr::column(0), "k"),
                ProjItem::new(ScalarExpr::column(1), "x"),
            ]);
        let sequential = execute(&plan, &c).unwrap();
        for workers in [1usize, 2, 8] {
            let par = Parallelism {
                worker_threads: Some(workers),
                parallel_threshold: 1,
            };
            let parallel = execute_with(&plan, &c, &par).unwrap();
            assert_eq!(parallel.rows(), sequential.rows(), "workers={workers}");
        }
        // The cross-product and nested-loop paths too.
        let nl = Plan::scan("a").join(
            Plan::scan("b"),
            ScalarExpr::column(1).lt(ScalarExpr::column(3)),
        );
        let prod = Plan::scan("a").product(Plan::scan("b")).limit(5000);
        for plan in [nl, prod] {
            let sequential = execute(&plan, &c).unwrap();
            let par = Parallelism {
                worker_threads: Some(4),
                parallel_threshold: 1,
            };
            let parallel = execute_with(&plan, &c, &par).unwrap();
            assert_eq!(parallel.rows(), sequential.rows());
        }
    }

    #[test]
    fn profiled_execution_matches_paper_example_counts() {
        let (catalog, _) = paper_db();
        let plan = paper_plan(&catalog);
        let (rs, profile) =
            execute_profiled(&plan, &catalog, &Parallelism::sequential(), None).unwrap();
        // Result-neutral: same rows as the unprofiled executor.
        let plain = execute(&plan, &catalog).unwrap();
        assert_eq!(rs.rows(), plain.rows());
        // Pre-order, one profile per plan line, with the paper's counts:
        // Π (2→1 merged), ⋈ (2+1→2), σ (3→2), the two scans.
        let got: Vec<(&str, usize, u64, u64)> = profile
            .operators
            .iter()
            .map(|o| (o.operator.as_str(), o.depth, o.rows_in, o.rows_out))
            .collect();
        assert_eq!(
            got,
            vec![
                ("Project DISTINCT [company, income]", 0, 2, 1),
                ("Join", 1, 3, 2),
                ("Select", 2, 3, 2),
                ("Scan Proposal", 3, 3, 3),
                ("Scan CompanyInfo", 2, 1, 1),
            ]
        );
        // Profile order zips with the Display rendering line-for-line.
        let lines: Vec<String> = plan.to_string().lines().map(str::to_owned).collect();
        assert_eq!(lines.len(), profile.operators.len());
        for (line, op) in lines.iter().zip(&profile.operators) {
            assert_eq!(line.trim_start(), op.operator);
        }
        // Every operator carries lineage.
        assert!(profile.operators.iter().all(|o| o.lineage_nodes > 0));
        // The rendered EXPLAIN ANALYZE mentions the counts.
        assert!(profile.render().contains("Select (rows_in=3 rows_out=2"));
    }

    #[test]
    fn execution_propagates_type_errors() {
        let (catalog, _) = paper_db();
        let scan = Plan::scan("Proposal");
        let plan = scan.select(ScalarExpr::column(0)); // TEXT is not a predicate
        assert!(matches!(
            execute(&plan, &catalog),
            Err(AlgebraError::Type(_))
        ));
    }
}
