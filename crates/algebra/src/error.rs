//! Error type for plan construction and execution.

use pcqe_storage::StorageError;
use std::fmt;

/// Errors raised while building or executing an algebra plan.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// An underlying storage error (unknown table/column, …).
    Storage(StorageError),
    /// A scalar expression was ill-typed for the values it met.
    Type(String),
    /// Union/difference inputs had incompatible schemas.
    SchemaMismatch(String),
    /// A physical plan referenced an access path the catalog does not
    /// provide (e.g. an index scan on an unindexed column).
    Plan(String),
    /// A lineage evaluation failed while scoring results.
    Lineage(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Storage(e) => write!(f, "storage error: {e}"),
            AlgebraError::Type(m) => write!(f, "type error: {m}"),
            AlgebraError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            AlgebraError::Plan(m) => write!(f, "plan error: {m}"),
            AlgebraError::Lineage(m) => write!(f, "lineage error: {m}"),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for AlgebraError {
    fn from(e: StorageError) -> Self {
        AlgebraError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert_and_chain() {
        let e: AlgebraError = StorageError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains('t'));
        assert!(std::error::Error::source(&e).is_some());
    }
}
