//! Lineage-propagating relational algebra.
//!
//! The paper's query-evaluation component "computes the query Q and the
//! confidence level of each query result based on the confidence values of
//! base tuples" (Section 3.2). This crate implements that component: a
//! small relational algebra whose operators carry boolean lineage through
//! every step, so the confidence of any derived tuple can be computed by
//! `pcqe-lineage`.
//!
//! Lineage rules (standard probabilistic-database semantics, matching the
//! paper's running example):
//!
//! * **scan** — each base tuple's lineage is its own variable;
//! * **select** — lineage is unchanged;
//! * **join / product** — lineage is the conjunction of the inputs;
//! * **distinct projection / union** — duplicates merge, lineage is the
//!   disjunction of the merged rows (this is how `p25 = p02 ∨ p03` arises);
//! * **difference** — `l ∧ ¬(r₁ ∨ … ∨ r_m)` over the matching right rows.
//!
//! ```
//! use pcqe_algebra::{Plan, ScalarExpr, execute};
//! use pcqe_storage::{Catalog, Column, DataType, Schema, Value};
//!
//! let mut catalog = Catalog::new();
//! catalog.create_table("t", Schema::new(vec![
//!     Column::new("x", DataType::Int),
//! ]).unwrap()).unwrap();
//! catalog.insert("t", vec![Value::Int(1)], 0.9).unwrap();
//! catalog.insert("t", vec![Value::Int(2)], 0.5).unwrap();
//!
//! let plan = Plan::scan("t").select(
//!     ScalarExpr::column(0).gt(ScalarExpr::literal(Value::Int(1))),
//! );
//! let result = execute(&plan, &catalog).unwrap();
//! assert_eq!(result.rows().len(), 1);
//! ```

pub mod error;
pub mod exec;
pub mod expr;
pub mod optimize;
pub mod physical;
pub mod plan;
pub mod result;

pub use error::AlgebraError;
pub use exec::{
    execute, execute_profiled, execute_traced, execute_with, ExecProfile, OperatorProfile,
};
pub use expr::{BinaryOp, ColumnarRow, RowView, ScalarExpr, UnaryOp};
pub use optimize::optimize;
pub use physical::{
    execute_physical, execute_physical_profiled, execute_physical_traced, execute_physical_with,
    execute_vectorized, execute_vectorized_profiled, execute_vectorized_traced,
    execute_vectorized_with, lower, render_side_by_side, PhysicalPlan,
};
pub use plan::{Plan, ProjItem};
pub use result::{DerivedTuple, GatedScore, ResultSet, ScoredTuple};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AlgebraError>;
