//! Result sets: derived tuples with lineage, and confidence scoring.

use crate::error::AlgebraError;
use crate::Result;
use pcqe_lineage::{CircuitCache, Evaluator, Lineage, ProbSource};
use pcqe_par::{ConfidencePath, TraceSink};
use pcqe_storage::{Schema, Tuple};
use std::fmt;

/// One derived tuple: values plus the boolean lineage deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedTuple {
    /// The tuple's values.
    pub tuple: Tuple,
    /// Lineage over base-tuple variables.
    pub lineage: Lineage,
}

/// A derived tuple with its computed confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredTuple {
    /// The tuple's values.
    pub tuple: Tuple,
    /// Lineage over base-tuple variables.
    pub lineage: Lineage,
    /// Confidence in `[0, 1]`.
    pub confidence: f64,
}

/// The output of executing a plan: a schema and derived tuples.
#[derive(Debug, Clone)]
pub struct ResultSet {
    schema: Schema,
    rows: Vec<DerivedTuple>,
}

impl ResultSet {
    /// Construct a result set.
    pub fn new(schema: Schema, rows: Vec<DerivedTuple>) -> Self {
        ResultSet { schema, rows }
    }

    /// The result schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The derived rows.
    pub fn rows(&self) -> &[DerivedTuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Consume the result set, yielding its rows.
    pub fn into_rows(self) -> Vec<DerivedTuple> {
        self.rows
    }

    /// Compute every row's confidence from base-tuple probabilities.
    pub fn score<P: ProbSource>(
        &self,
        probs: &P,
        evaluator: &Evaluator,
    ) -> Result<Vec<ScoredTuple>> {
        self.rows
            .iter()
            .map(|row| {
                let confidence = evaluator
                    .probability(&row.lineage, probs)
                    .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
                Ok(ScoredTuple {
                    tuple: row.tuple.clone(),
                    lineage: row.lineage.clone(),
                    confidence,
                })
            })
            .collect()
    }

    /// [`Self::score`] with the confidence computation fanned out across
    /// worker threads via [`pcqe_lineage::score_batch`].
    ///
    /// Byte-identical to the sequential [`Self::score`] for any
    /// [`Parallelism`](pcqe_par::Parallelism): row order is preserved and
    /// each row's confidence depends only on its lineage, `probs`, and the
    /// evaluator's (fixed) Monte-Carlo seed.
    pub fn score_par<P: ProbSource + Sync>(
        &self,
        probs: &P,
        evaluator: &Evaluator,
        par: &pcqe_par::Parallelism,
    ) -> Result<Vec<ScoredTuple>> {
        self.score_par_observed(probs, evaluator, par, None)
    }

    /// [`ResultSet::score_par`] with an optional scheduler observer:
    /// identical scores for any observer and thread count.
    pub fn score_par_observed<P: ProbSource + Sync>(
        &self,
        probs: &P,
        evaluator: &Evaluator,
        par: &pcqe_par::Parallelism,
        observer: Option<&dyn pcqe_par::ParObserver>,
    ) -> Result<Vec<ScoredTuple>> {
        let confidences = pcqe_par::try_map_observed(
            par,
            &self.rows,
            |row| {
                evaluator
                    .probability(&row.lineage, probs)
                    .map_err(|e| AlgebraError::Lineage(e.to_string()))
            },
            observer,
        )?;
        Ok(self
            .rows
            .iter()
            .zip(confidences)
            .map(|(row, confidence)| ScoredTuple {
                tuple: row.tuple.clone(),
                lineage: row.lineage.clone(),
                confidence,
            })
            .collect())
    }

    /// β-gated scoring: skip exact confidence computation for rows whose
    /// cheap monotone upper bound ([`pcqe_lineage::upper_bound`], linear in
    /// lineage size) already proves the row cannot pass the policy
    /// threshold `beta`.
    ///
    /// A policy admits a row iff its confidence is **strictly** greater
    /// than β. The Fréchet upper bound is sound under any dependence
    /// structure, so `upper ≤ β` implies `exact ≤ β` — the row is withheld
    /// either way, and the released-tuple set is provably identical to
    /// exact scoring. Skipped rows carry their upper bound as `confidence`
    /// (a labelled over-estimate, never an admit) and are flagged in
    /// [`GatedScore::skipped`] so callers that later need exact values
    /// (e.g. strategy finding over withheld rows) can re-score just those
    /// rows via [`ResultSet::rescore_exact`].
    pub fn score_gated<P: ProbSource + Sync>(
        &self,
        probs: &P,
        evaluator: &Evaluator,
        beta: f64,
        par: &pcqe_par::Parallelism,
        observer: Option<&dyn pcqe_par::ParObserver>,
    ) -> Result<GatedScore> {
        let outcomes = pcqe_par::try_map_observed(
            par,
            &self.rows,
            |row| -> Result<(f64, bool)> {
                let upper = pcqe_lineage::upper_bound(&row.lineage, probs)
                    .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
                if upper <= beta {
                    return Ok((upper, true));
                }
                let exact = evaluator
                    .probability(&row.lineage, probs)
                    .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
                Ok((exact, false))
            },
            observer,
        )?;
        let mut scored = Vec::with_capacity(self.rows.len());
        let mut skipped = Vec::with_capacity(self.rows.len());
        let mut exact_skipped = 0usize;
        for (row, (confidence, was_skipped)) in self.rows.iter().zip(outcomes) {
            scored.push(ScoredTuple {
                tuple: row.tuple.clone(),
                lineage: row.lineage.clone(),
                confidence,
            });
            skipped.push(was_skipped);
            if was_skipped {
                exact_skipped += 1;
            }
        }
        Ok(GatedScore {
            scored,
            skipped,
            exact_skipped,
        })
    }

    /// [`Self::score_gated`] with a causal-trace sink: one `beta.skip`
    /// or `score.exact` instant per row, emitted **after** the batch in
    /// row order (never from inside the parallel closure), so the trace
    /// is deterministic at any thread count. Scores are byte-identical
    /// to the untraced call for any sink.
    pub fn score_gated_traced<P: ProbSource + Sync>(
        &self,
        probs: &P,
        evaluator: &Evaluator,
        beta: f64,
        par: &pcqe_par::Parallelism,
        observer: Option<&dyn pcqe_par::ParObserver>,
        trace: Option<&dyn TraceSink>,
    ) -> Result<GatedScore> {
        let gated = self.score_gated(probs, evaluator, beta, par, observer)?;
        if let Some(sink) = trace {
            emit_gate_instants(sink, &gated, beta);
        }
        Ok(gated)
    }

    /// Replace bound-valued confidences with exact ones for the rows
    /// flagged in `skipped` (in place over a [`GatedScore::scored`]
    /// vector). Used by callers that decided to skip exact evaluation for
    /// β-failing rows but later need true confidences — e.g. before
    /// computing improvement strategies over withheld tuples.
    pub fn rescore_exact<P: ProbSource + Sync>(
        scored: &mut [ScoredTuple],
        skipped: &[bool],
        probs: &P,
        evaluator: &Evaluator,
        par: &pcqe_par::Parallelism,
    ) -> Result<usize> {
        let targets: Vec<usize> = skipped
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| (s && i < scored.len()).then_some(i))
            .collect();
        let lineages: Vec<Lineage> = targets
            .iter()
            .filter_map(|&i| scored.get(i).map(|s| s.lineage.clone()))
            .collect();
        let exact = pcqe_par::try_map(par, &lineages, |l| {
            evaluator
                .probability(l, probs)
                .map_err(|e| AlgebraError::Lineage(e.to_string()))
        })?;
        let n = targets.len();
        for (i, confidence) in targets.into_iter().zip(exact) {
            if let Some(s) = scored.get_mut(i) {
                s.confidence = confidence;
            }
        }
        Ok(n)
    }

    /// [`Self::score`] through a shared [`CircuitCache`]: rows with equal
    /// or overlapping lineage share compiled subcircuits and memoized
    /// probabilities. Bit-identical to [`Self::score`]/[`Self::score_par`]
    /// whenever `cache.probs()` agrees with the probability source those
    /// were given — the cache replays the interpreter's float operations in
    /// the same order, and memo hits return the identical f64.
    ///
    /// The pass is sequential by construction (memoized evaluation is a
    /// shared-state walk), which is what makes it thread-count independent:
    /// there is no scheduling to vary.
    pub fn score_cached(
        &self,
        cache: &mut CircuitCache,
        evaluator: &Evaluator,
    ) -> Result<Vec<ScoredTuple>> {
        self.score_cached_traced(cache, evaluator)
            .map(|(scored, _)| scored)
    }

    /// [`Self::score_cached`] with a per-row [`ConfidencePath`] report
    /// (`CacheHit` when the root memo answered, `Exact` otherwise).
    /// Identical scores and cache transitions to the plain call.
    pub fn score_cached_traced(
        &self,
        cache: &mut CircuitCache,
        evaluator: &Evaluator,
    ) -> Result<(Vec<ScoredTuple>, Vec<ConfidencePath>)> {
        let mut scored = Vec::with_capacity(self.rows.len());
        let mut paths = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let before = cache.stats();
            let confidence = cache
                .score_lineage(&row.lineage, evaluator)
                .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
            paths.push(classify_cached(before, cache.stats()));
            scored.push(ScoredTuple {
                tuple: row.tuple.clone(),
                lineage: row.lineage.clone(),
                confidence,
            });
        }
        Ok((scored, paths))
    }

    /// [`Self::score_gated`] through a shared [`CircuitCache`]: the same
    /// Fréchet-bound gate (rows with `upper ≤ β` skip exact evaluation and
    /// carry the bound), with exact scores served from the cache. Skip
    /// decisions and confidences are bit-identical to the uncached gated
    /// path under the same probabilities.
    pub fn score_gated_cached(
        &self,
        cache: &mut CircuitCache,
        evaluator: &Evaluator,
        beta: f64,
    ) -> Result<GatedScore> {
        self.score_gated_cached_traced(cache, evaluator, beta, None)
            .map(|(gated, _)| gated)
    }

    /// [`Self::score_gated_cached`] with a causal-trace sink and a
    /// per-row [`ConfidencePath`] report: `BetaSkipped` for gated rows,
    /// `CacheHit` when the whole circuit came from the root memo,
    /// `Exact` when compilation (or the Monte-Carlo fallback) ran.
    /// Scores, skip flags and cache state transitions are byte-identical
    /// to the untraced call — the path classification only *reads* the
    /// stats counters the cache was already keeping.
    pub fn score_gated_cached_traced(
        &self,
        cache: &mut CircuitCache,
        evaluator: &Evaluator,
        beta: f64,
        trace: Option<&dyn TraceSink>,
    ) -> Result<(GatedScore, Vec<ConfidencePath>)> {
        let mut scored = Vec::with_capacity(self.rows.len());
        let mut skipped = Vec::with_capacity(self.rows.len());
        let mut paths = Vec::with_capacity(self.rows.len());
        let mut exact_skipped = 0usize;
        for row in &self.rows {
            let upper = pcqe_lineage::upper_bound(&row.lineage, cache.probs())
                .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
            let (confidence, was_skipped, path) = if upper <= beta {
                (upper, true, ConfidencePath::BetaSkipped)
            } else {
                let before = cache.stats();
                let exact = cache
                    .score_lineage(&row.lineage, evaluator)
                    .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
                (exact, false, classify_cached(before, cache.stats()))
            };
            scored.push(ScoredTuple {
                tuple: row.tuple.clone(),
                lineage: row.lineage.clone(),
                confidence,
            });
            skipped.push(was_skipped);
            paths.push(path);
            if was_skipped {
                exact_skipped += 1;
            }
        }
        let gated = GatedScore {
            scored,
            skipped,
            exact_skipped,
        };
        if let Some(sink) = trace {
            emit_gate_instants(sink, &gated, beta);
        }
        Ok((gated, paths))
    }

    /// [`Self::score_gated_cached_traced`], driven morsel-by-morsel for
    /// the vectorized pipeline: rows are scored in the same sequential
    /// order through the same shared cache (memoized evaluation is a
    /// shared-state walk — chunking changes *reporting*, never
    /// evaluation), and each morsel surfaces one single-worker
    /// [`pcqe_par::BatchReport`] to the observer so `.trace` files show
    /// the scoring pass's batch structure alongside the executor's.
    /// Scores, skip flags, paths and cache transitions are bit-identical
    /// to [`Self::score_gated_cached_traced`]; gate instants are emitted
    /// post-pass in row order, exactly as there.
    pub fn score_gated_cached_morsels_traced(
        &self,
        cache: &mut CircuitCache,
        evaluator: &Evaluator,
        beta: f64,
        observer: Option<&dyn pcqe_par::ParObserver>,
        trace: Option<&dyn TraceSink>,
    ) -> Result<(GatedScore, Vec<ConfidencePath>)> {
        let mut scored = Vec::with_capacity(self.rows.len());
        let mut skipped = Vec::with_capacity(self.rows.len());
        let mut paths = Vec::with_capacity(self.rows.len());
        let mut exact_skipped = 0usize;
        let morsel = pcqe_storage::morsel_rows(self.rows.len());
        for chunk in self.rows.chunks(morsel.max(1)) {
            let started = observer.map(|o| o.now_nanos());
            for row in chunk {
                let upper = pcqe_lineage::upper_bound(&row.lineage, cache.probs())
                    .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
                let (confidence, was_skipped, path) = if upper <= beta {
                    (upper, true, ConfidencePath::BetaSkipped)
                } else {
                    let before = cache.stats();
                    let exact = cache
                        .score_lineage(&row.lineage, evaluator)
                        .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
                    (exact, false, classify_cached(before, cache.stats()))
                };
                scored.push(ScoredTuple {
                    tuple: row.tuple.clone(),
                    lineage: row.lineage.clone(),
                    confidence,
                });
                skipped.push(was_skipped);
                paths.push(path);
                if was_skipped {
                    exact_skipped += 1;
                }
            }
            if let (Some(obs), Some(t0)) = (observer, started) {
                obs.batch(&pcqe_par::BatchReport {
                    items: chunk.len(),
                    workers: 1,
                    chunks: 1,
                    chunks_claimed: vec![1],
                    busy_nanos: vec![obs.now_nanos().saturating_sub(t0)],
                    reassembly_stalls: 0,
                });
            }
        }
        let gated = GatedScore {
            scored,
            skipped,
            exact_skipped,
        };
        if let Some(sink) = trace {
            emit_gate_instants(sink, &gated, beta);
        }
        Ok((gated, paths))
    }

    /// [`Self::rescore_exact`] through a shared [`CircuitCache`]; same
    /// in-place contract, with the flagged rows' exact confidences served
    /// from (and memoized into) the pool.
    pub fn rescore_exact_cached(
        scored: &mut [ScoredTuple],
        skipped: &[bool],
        cache: &mut CircuitCache,
        evaluator: &Evaluator,
    ) -> Result<usize> {
        let mut n = 0usize;
        for (i, &was_skipped) in skipped.iter().enumerate() {
            if !was_skipped {
                continue;
            }
            if let Some(s) = scored.get_mut(i) {
                s.confidence = cache
                    .score_lineage(&s.lineage, evaluator)
                    .map_err(|e| AlgebraError::Lineage(e.to_string()))?;
                n += 1;
            }
        }
        Ok(n)
    }
}

/// The outcome of [`ResultSet::score_gated`].
#[derive(Debug, Clone, PartialEq)]
pub struct GatedScore {
    /// One scored tuple per result row, in row order. Rows with
    /// `skipped[i] == true` carry their confidence *upper bound* (≤ β)
    /// instead of the exact value.
    pub scored: Vec<ScoredTuple>,
    /// Per-row flag: `true` when exact evaluation was short-circuited.
    pub skipped: Vec<bool>,
    /// Number of rows whose exact evaluation was skipped
    /// (`skipped.iter().filter(|s| **s).count()`).
    pub exact_skipped: usize,
}

/// Classify one cached scoring step from the stats delta it left: no
/// fresh root compile plus at least one compile-memo hit means the pool
/// answered ([`ConfidencePath::CacheHit`]); anything else ran fresh
/// arithmetic ([`ConfidencePath::Exact`], including the Monte-Carlo
/// fallback).
fn classify_cached(
    before: pcqe_lineage::CacheStats,
    after: pcqe_lineage::CacheStats,
) -> ConfidencePath {
    if after.compiled == before.compiled && after.compile_hits > before.compile_hits {
        ConfidencePath::CacheHit
    } else {
        ConfidencePath::Exact
    }
}

/// One `beta.skip` / `score.exact` instant per row, in row order. The
/// payload carries the row index only: the skipped row's Fréchet upper
/// bound and the β it lost to are deliberately not rendered — trace
/// files travel further than the audit log, and the Decision record is
/// the designed outlet for those values (PCQE-F002, PCQE-F003).
fn emit_gate_instants(sink: &dyn TraceSink, gated: &GatedScore, _beta: f64) {
    for (i, &was_skipped) in gated.skipped.iter().enumerate() {
        if was_skipped {
            sink.instant("beta.skip", &format!("row={i}"));
        } else {
            sink.instant("score.exact", &format!("row={i}"));
        }
    }
}

impl fmt::Display for ResultSet {
    /// Render the result set as a `header | header` text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.display_name())
            .collect();
        writeln!(f, "{}", headers.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.tuple.values().iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcqe_lineage::VarId;
    use pcqe_storage::{Column, DataType, Value};
    use std::collections::HashMap;

    fn simple() -> ResultSet {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]).unwrap();
        ResultSet::new(
            schema,
            vec![
                DerivedTuple {
                    tuple: Tuple::new(vec![Value::Int(1)]),
                    lineage: Lineage::var(0),
                },
                DerivedTuple {
                    tuple: Tuple::new(vec![Value::Int(2)]),
                    lineage: Lineage::and(vec![Lineage::var(0), Lineage::var(1)]),
                },
            ],
        )
    }

    #[test]
    fn scoring_computes_probabilities() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5), (VarId(1), 0.4)].into_iter().collect();
        let scored = rs.score(&probs, &Evaluator::default()).unwrap();
        assert_eq!(scored.len(), 2);
        assert!((scored[0].confidence - 0.5).abs() < 1e-12);
        assert!((scored[1].confidence - 0.2).abs() < 1e-12);
    }

    #[test]
    fn parallel_scoring_matches_sequential() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5), (VarId(1), 0.4)].into_iter().collect();
        let sequential = rs.score(&probs, &Evaluator::default()).unwrap();
        for workers in [1usize, 2, 8] {
            let par = pcqe_par::Parallelism {
                worker_threads: Some(workers),
                parallel_threshold: 1,
            };
            let parallel = rs.score_par(&probs, &Evaluator::default(), &par).unwrap();
            assert_eq!(parallel, sequential, "workers={workers}");
        }
    }

    #[test]
    fn scoring_fails_on_unknown_base_tuple() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5)].into_iter().collect();
        assert!(matches!(
            rs.score(&probs, &Evaluator::default()),
            Err(AlgebraError::Lineage(_))
        ));
    }

    #[test]
    fn display_renders_table() {
        let text = simple().to_string();
        assert!(text.starts_with("x\n"));
        assert!(text.contains('2'));
    }

    #[test]
    fn gated_scoring_skips_only_provably_failing_rows() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5), (VarId(1), 0.4)].into_iter().collect();
        let par = pcqe_par::Parallelism::sequential();
        // Row 0: exact 0.5; row 1 (AND): exact 0.2, upper bound
        // min(0.5, 0.4) = 0.4.
        let gated = rs
            .score_gated(&probs, &Evaluator::default(), 0.45, &par, None)
            .unwrap();
        assert_eq!(gated.exact_skipped, 1);
        assert_eq!(gated.skipped, vec![false, true]);
        // Unskipped rows carry exact confidence; skipped rows carry the
        // (≤ β) upper bound.
        assert!((gated.scored[0].confidence - 0.5).abs() < 1e-12);
        assert!((gated.scored[1].confidence - 0.4).abs() < 1e-12);
        // Classification against β is identical to exact scoring.
        let exact = rs.score(&probs, &Evaluator::default()).unwrap();
        for (g, e) in gated.scored.iter().zip(&exact) {
            assert_eq!(g.confidence > 0.45, e.confidence > 0.45);
        }
    }

    #[test]
    fn gated_scoring_with_high_bound_matches_exact() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5), (VarId(1), 0.4)].into_iter().collect();
        let par = pcqe_par::Parallelism::sequential();
        // β = 0.1: no row's bound proves failure, so nothing is skipped
        // and every confidence is exact.
        let gated = rs
            .score_gated(&probs, &Evaluator::default(), 0.1, &par, None)
            .unwrap();
        assert_eq!(gated.exact_skipped, 0);
        let exact = rs.score(&probs, &Evaluator::default()).unwrap();
        assert_eq!(gated.scored, exact);
    }

    fn seeded_cache(probs: &HashMap<VarId, f64>) -> CircuitCache {
        let mut cache = CircuitCache::new();
        let mut sorted: Vec<(VarId, f64)> = probs.iter().map(|(&v, &p)| (v, p)).collect();
        sorted.sort_by_key(|&(v, _)| v);
        for (v, p) in sorted {
            cache.set_prob(v, p);
        }
        cache
    }

    #[test]
    fn cached_scoring_is_bit_identical_to_plain() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5), (VarId(1), 0.4)].into_iter().collect();
        let plain = rs.score(&probs, &Evaluator::default()).unwrap();
        let mut cache = seeded_cache(&probs);
        // Score twice: the second pass is pure memo hits and must not
        // perturb a single bit.
        for pass in 0..2 {
            let cached = rs.score_cached(&mut cache, &Evaluator::default()).unwrap();
            assert_eq!(cached.len(), plain.len());
            for (c, p) in cached.iter().zip(&plain) {
                assert_eq!(
                    c.confidence.to_bits(),
                    p.confidence.to_bits(),
                    "pass {pass}"
                );
            }
        }
        assert!(cache.stats().hits() > 0);
    }

    #[test]
    fn cached_gating_matches_plain_gating_bitwise() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5), (VarId(1), 0.4)].into_iter().collect();
        let par = pcqe_par::Parallelism::sequential();
        for beta in [0.1, 0.45] {
            let plain = rs
                .score_gated(&probs, &Evaluator::default(), beta, &par, None)
                .unwrap();
            let mut cache = seeded_cache(&probs);
            let cached = rs
                .score_gated_cached(&mut cache, &Evaluator::default(), beta)
                .unwrap();
            assert_eq!(cached.skipped, plain.skipped, "beta={beta}");
            assert_eq!(cached.exact_skipped, plain.exact_skipped);
            for (c, p) in cached.scored.iter().zip(&plain.scored) {
                assert_eq!(c.confidence.to_bits(), p.confidence.to_bits());
            }
        }
    }

    #[test]
    fn cached_rescore_matches_plain_rescore() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5), (VarId(1), 0.4)].into_iter().collect();
        let mut cache = seeded_cache(&probs);
        let mut cached = rs
            .score_gated_cached(&mut cache, &Evaluator::default(), 0.45)
            .unwrap();
        let n = ResultSet::rescore_exact_cached(
            &mut cached.scored,
            &cached.skipped,
            &mut cache,
            &Evaluator::default(),
        )
        .unwrap();
        assert_eq!(n, 1);
        let exact = rs.score(&probs, &Evaluator::default()).unwrap();
        for (c, p) in cached.scored.iter().zip(&exact) {
            assert_eq!(c.confidence.to_bits(), p.confidence.to_bits());
        }
    }

    #[test]
    fn rescore_exact_restores_true_confidences() {
        let rs = simple();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.5), (VarId(1), 0.4)].into_iter().collect();
        let par = pcqe_par::Parallelism::sequential();
        let mut gated = rs
            .score_gated(&probs, &Evaluator::default(), 0.45, &par, None)
            .unwrap();
        let n = ResultSet::rescore_exact(
            &mut gated.scored,
            &gated.skipped,
            &probs,
            &Evaluator::default(),
            &par,
        )
        .unwrap();
        assert_eq!(n, 1);
        let exact = rs.score(&probs, &Evaluator::default()).unwrap();
        assert_eq!(gated.scored, exact);
    }
}
