//! Logical plans.

use crate::error::AlgebraError;
use crate::expr::ScalarExpr;
use crate::Result;
use pcqe_storage::{Catalog, Column, DataType, Schema};
use std::fmt;

/// One output column of a projection: an expression and its output name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjItem {
    /// The expression computing the column.
    pub expr: ScalarExpr,
    /// The output column name.
    pub name: String,
}

impl ProjItem {
    /// Projection item from an expression and a name.
    pub fn new(expr: ScalarExpr, name: impl Into<String>) -> Self {
        ProjItem {
            expr,
            name: name.into(),
        }
    }
}

/// A logical relational-algebra plan.
///
/// Column references inside predicates and projections are positional,
/// resolved against the input plan's schema (see [`Plan::schema`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a base table, optionally under an alias.
    Scan {
        /// Table name in the catalog.
        table: String,
        /// Alias qualifying the output columns (defaults to the table name).
        alias: Option<String>,
    },
    /// σ — keep rows satisfying the predicate.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Boolean predicate over the input schema.
        predicate: ScalarExpr,
    },
    /// Π — compute output columns; `distinct` merges duplicates and ORs
    /// their lineage (the paper's set-semantic projection).
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns.
        items: Vec<ProjItem>,
        /// Whether to deduplicate (OR-merging lineage).
        distinct: bool,
    },
    /// ⋈ — theta join; the predicate sees the concatenated schema.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join predicate over `left.schema ++ right.schema`.
        predicate: ScalarExpr,
    },
    /// × — cartesian product.
    Product {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// ∪ — set union (duplicates merge, lineage ORs).
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// − — set difference (`l ∧ ¬(r₁ ∨ …)` lineage).
    Difference {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Sort rows by a sequence of keys (lineage untouched).
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys, applied in order.
        keys: Vec<SortKey>,
    },
    /// Keep only the first `count` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum number of rows.
        count: usize,
    },
    /// γ — grouping and aggregation.
    ///
    /// Output columns are the group keys followed by the aggregates.
    /// Aggregate *values* are computed over the group's rows as if all of
    /// them were certain; each output row's lineage is the OR of its
    /// members' lineage, i.e. its confidence is the probability that the
    /// group is non-empty. (Full probabilistic aggregation — distributions
    /// over counts and sums — is out of scope, as it is for the paper.)
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-key expressions over the input schema (empty = one
        /// global group).
        group_by: Vec<ProjItem>,
        /// Aggregates over the input schema.
        aggregates: Vec<AggItem>,
    },
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (`COUNT(*)` when the argument is absent, non-NULL count
    /// of the argument otherwise).
    Count,
    /// Numeric sum (NULLs skipped).
    Sum,
    /// Numeric average (NULLs skipped; NULL on empty).
    Avg,
    /// Minimum by SQL ordering (NULLs skipped; NULL on empty).
    Min,
    /// Maximum by SQL ordering (NULLs skipped; NULL on empty).
    Max,
}

impl AggFunc {
    /// SQL name of the function.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate output column.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// The function.
    pub func: AggFunc,
    /// Argument over the input schema; `None` only for `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    /// Output column name.
    pub name: String,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The key expression over the input schema.
    pub expr: ScalarExpr,
    /// Sort direction.
    pub descending: bool,
}

impl Plan {
    /// Scan a table under its own name.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
            alias: None,
        }
    }

    /// Scan a table under an alias.
    pub fn scan_as(table: impl Into<String>, alias: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// Apply a selection.
    pub fn select(self, predicate: ScalarExpr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Apply a distinct (set-semantic) projection.
    pub fn project(self, items: Vec<ProjItem>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            items,
            distinct: true,
        }
    }

    /// Apply a bag-semantic projection (no dedup, lineage untouched).
    pub fn project_all(self, items: Vec<ProjItem>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            items,
            distinct: false,
        }
    }

    /// Join with another plan on a predicate.
    pub fn join(self, right: Plan, predicate: ScalarExpr) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            predicate,
        }
    }

    /// Cartesian product with another plan.
    pub fn product(self, right: Plan) -> Plan {
        Plan::Product {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Set union with another plan.
    pub fn union(self, right: Plan) -> Plan {
        Plan::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Set difference with another plan.
    pub fn difference(self, right: Plan) -> Plan {
        Plan::Difference {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Sort by keys.
    pub fn sort(self, keys: Vec<SortKey>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Keep the first `count` rows.
    pub fn limit(self, count: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            count,
        }
    }

    /// Group and aggregate.
    pub fn aggregate(self, group_by: Vec<ProjItem>, aggregates: Vec<AggItem>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by,
            aggregates,
        }
    }

    /// The plan's output schema against a catalog.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            Plan::Scan { table, alias } => {
                let t = catalog.table(table)?;
                let qualifier = alias.as_deref().unwrap_or(table);
                Ok(t.schema().with_qualifier(qualifier))
            }
            Plan::Select { input, .. } => input.schema(catalog),
            Plan::Project { input, items, .. } => {
                let in_schema = input.schema(catalog)?;
                let mut cols = Vec::with_capacity(items.len());
                for item in items {
                    let dt = item.expr.infer_type(&in_schema)?;
                    cols.push(Column::new(item.name.clone(), dt));
                }
                Schema::new(cols).map_err(AlgebraError::from)
            }
            Plan::Join { left, right, .. } | Plan::Product { left, right } => {
                Ok(left.schema(catalog)?.join(&right.schema(catalog)?))
            }
            Plan::Sort { input, .. } | Plan::Limit { input, .. } => input.schema(catalog),
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema(catalog)?;
                let mut cols = Vec::with_capacity(group_by.len() + aggregates.len());
                for item in group_by {
                    cols.push(Column::new(
                        item.name.clone(),
                        item.expr.infer_type(&in_schema)?,
                    ));
                }
                for agg in aggregates {
                    let dt = match (agg.func, &agg.arg) {
                        (AggFunc::Count, _) => DataType::Int,
                        (AggFunc::Avg, _) => DataType::Real,
                        (AggFunc::Sum, Some(arg)) => match arg.infer_type(&in_schema)? {
                            DataType::Int => DataType::Int,
                            _ => DataType::Real,
                        },
                        (AggFunc::Min | AggFunc::Max, Some(arg)) => arg.infer_type(&in_schema)?,
                        (f, None) => {
                            return Err(AlgebraError::Type(format!(
                                "{} requires an argument",
                                f.name()
                            )))
                        }
                    };
                    cols.push(Column::new(agg.name.clone(), dt));
                }
                Schema::new(cols).map_err(AlgebraError::from)
            }
            Plan::Union { left, right } | Plan::Difference { left, right } => {
                let l = left.schema(catalog)?;
                let r = right.schema(catalog)?;
                if l.arity() != r.arity() {
                    return Err(AlgebraError::SchemaMismatch(format!(
                        "arity {} vs {}",
                        l.arity(),
                        r.arity()
                    )));
                }
                for (a, b) in l.columns().iter().zip(r.columns()) {
                    if a.data_type != b.data_type {
                        return Err(AlgebraError::SchemaMismatch(format!(
                            "column `{}` is {} on the left but {} on the right",
                            a.name, a.data_type, b.data_type
                        )));
                    }
                }
                Ok(l)
            }
        }
    }
}

impl Plan {
    /// The one-line label this node renders in [`fmt::Display`], without
    /// indentation: `"Scan Proposal"`, `"Project DISTINCT [company,
    /// income]"`, … The profiled executor
    /// ([`crate::exec::execute_profiled`]) tags each
    /// [`OperatorProfile`](crate::exec::OperatorProfile) with exactly this
    /// string, so `EXPLAIN ANALYZE` output lines up with `EXPLAIN` output
    /// by construction.
    pub fn node_label(&self) -> String {
        match self {
            Plan::Scan { table, alias } => match alias {
                Some(a) => format!("Scan {table} AS {a}"),
                None => format!("Scan {table}"),
            },
            Plan::Select { .. } => "Select".to_owned(),
            Plan::Project {
                items, distinct, ..
            } => {
                let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
                format!(
                    "Project{} [{}]",
                    if *distinct { " DISTINCT" } else { "" },
                    names.join(", ")
                )
            }
            Plan::Join { .. } => "Join".to_owned(),
            Plan::Product { .. } => "Product".to_owned(),
            Plan::Union { .. } => "Union".to_owned(),
            Plan::Difference { .. } => "Difference".to_owned(),
            Plan::Sort { keys, .. } => format!("Sort ({} key(s))", keys.len()),
            Plan::Limit { count, .. } => format!("Limit {count}"),
            Plan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let keys: Vec<&str> = group_by.iter().map(|g| g.name.as_str()).collect();
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| format!("{}({})", a.func.name(), a.name))
                    .collect();
                format!(
                    "Aggregate by [{}] computing [{}]",
                    keys.join(", "),
                    aggs.join(", ")
                )
            }
        }
    }

    /// The node's inputs, left-to-right (empty for `Scan`).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => Vec::new(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Aggregate { input, .. } => vec![input],
            Plan::Join { left, right, .. }
            | Plan::Product { left, right }
            | Plan::Union { left, right }
            | Plan::Difference { left, right } => vec![left, right],
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn indent(f: &mut fmt::Formatter<'_>, plan: &Plan, depth: usize) -> fmt::Result {
            writeln!(f, "{}{}", "  ".repeat(depth), plan.node_label())?;
            for child in plan.children() {
                indent(f, child, depth + 1)?;
            }
            Ok(())
        }
        indent(f, self, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcqe_storage::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "t",
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Text),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "u",
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("z", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn scan_schema_is_qualified() {
        let c = catalog();
        let s = Plan::scan_as("t", "a").schema(&c).unwrap();
        assert!(s.resolve(Some("a"), "x").is_ok());
        assert!(s.resolve(Some("t"), "x").is_err());
    }

    #[test]
    fn join_schema_concatenates() {
        let c = catalog();
        let plan = Plan::scan("t").join(
            Plan::scan("u"),
            ScalarExpr::column(0).eq(ScalarExpr::column(2)),
        );
        let s = plan.schema(&c).unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.resolve(Some("u"), "z").unwrap(), 3);
    }

    #[test]
    fn project_schema_infers_types() {
        let c = catalog();
        let plan = Plan::scan("t").project(vec![ProjItem::new(
            ScalarExpr::column(0).add(ScalarExpr::literal(Value::Int(1))),
            "x1",
        )]);
        let s = plan.schema(&c).unwrap();
        assert_eq!(s.columns()[0].data_type, DataType::Int);
        assert_eq!(s.columns()[0].name, "x1");
    }

    #[test]
    fn union_requires_matching_schemas() {
        let c = catalog();
        let ok = Plan::scan("t")
            .project(vec![ProjItem::new(ScalarExpr::column(0), "x")])
            .union(Plan::scan("u").project(vec![ProjItem::new(ScalarExpr::column(0), "x")]));
        assert!(ok.schema(&c).is_ok());
        let bad = Plan::scan("t").union(Plan::scan("u"));
        assert!(matches!(
            bad.schema(&c),
            Err(AlgebraError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn display_renders_tree() {
        let plan = Plan::scan("t").select(ScalarExpr::literal(Value::Bool(true)));
        let text = plan.to_string();
        assert!(text.contains("Select"));
        assert!(text.contains("Scan t"));
    }
}
