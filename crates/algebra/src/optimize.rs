//! Logical plan optimisation: predicate pushdown and product-to-join
//! conversion.
//!
//! The rewrites are semantics-preserving under the lineage model:
//! selections never touch lineage, so moving them below joins, unions,
//! differences, sorts and pure-column projections changes neither the
//! surviving tuples nor their lineage formulas — it only shrinks
//! intermediate results (and lets the executor use hash joins on the
//! equality conjuncts that reach a join's `ON`).

use crate::expr::{BinaryOp, ScalarExpr};
use crate::plan::Plan;
use crate::Result;
use pcqe_storage::Catalog;

/// Optimise a plan: merge stacked selections, push conjuncts as deep as
/// they can go, and convert cross products with equality predicates into
/// joins. Needs the catalog to know scan arities.
pub fn optimize(plan: &Plan, catalog: &Catalog) -> Result<Plan> {
    rewrite(plan.clone(), catalog)
}

fn rewrite(plan: Plan, catalog: &Catalog) -> Result<Plan> {
    match plan {
        Plan::Select { input, predicate } => {
            let input = rewrite(*input, catalog)?;
            let mut conjuncts = Vec::new();
            split_conjuncts(predicate, &mut conjuncts);
            push_conjuncts(input, conjuncts, catalog)
        }
        Plan::Project {
            input,
            items,
            distinct,
        } => Ok(Plan::Project {
            input: Box::new(rewrite(*input, catalog)?),
            items,
            distinct,
        }),
        Plan::Join {
            left,
            right,
            predicate,
        } => Ok(Plan::Join {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
            predicate,
        }),
        Plan::Product { left, right } => Ok(Plan::Product {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
        }),
        Plan::Union { left, right } => Ok(Plan::Union {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
        }),
        Plan::Difference { left, right } => Ok(Plan::Difference {
            left: Box::new(rewrite(*left, catalog)?),
            right: Box::new(rewrite(*right, catalog)?),
        }),
        Plan::Sort { input, keys } => Ok(Plan::Sort {
            input: Box::new(rewrite(*input, catalog)?),
            keys,
        }),
        Plan::Limit { input, count } => Ok(Plan::Limit {
            input: Box::new(rewrite(*input, catalog)?),
            count,
        }),
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Ok(Plan::Aggregate {
            input: Box::new(rewrite(*input, catalog)?),
            group_by,
            aggregates,
        }),
        scan @ Plan::Scan { .. } => Ok(scan),
    }
}

/// Push a set of conjuncts into `plan`, keeping any that cannot sink as a
/// selection on top.
fn push_conjuncts(plan: Plan, conjuncts: Vec<ScalarExpr>, catalog: &Catalog) -> Result<Plan> {
    if conjuncts.is_empty() {
        return Ok(plan);
    }
    match plan {
        Plan::Select { input, predicate } => {
            // Merge with the inner selection and retry.
            let mut all = conjuncts;
            split_conjuncts(predicate, &mut all);
            push_conjuncts(*input, all, catalog)
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let left_arity = left.schema(catalog)?.arity();
            let (to_left, to_right, stuck) = classify(conjuncts, left_arity);
            let left = push_conjuncts(*left, to_left, catalog)?;
            let right = push_conjuncts(*right, to_right, catalog)?;
            // Conjuncts spanning both sides join the ON predicate, where
            // the executor can exploit equalities for hashing.
            let mut on = vec![predicate];
            on.extend(stuck);
            Ok(Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                predicate: and_all(on),
            })
        }
        Plan::Product { left, right } => {
            let left_arity = left.schema(catalog)?.arity();
            let (to_left, to_right, stuck) = classify(conjuncts, left_arity);
            let left = push_conjuncts(*left, to_left, catalog)?;
            let right = push_conjuncts(*right, to_right, catalog)?;
            if stuck.is_empty() {
                Ok(Plan::Product {
                    left: Box::new(left),
                    right: Box::new(right),
                })
            } else {
                // A filtered product is a join.
                Ok(Plan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    predicate: and_all(stuck),
                })
            }
        }
        Plan::Union { left, right } => {
            let l = push_conjuncts(*left, conjuncts.clone(), catalog)?;
            let r = push_conjuncts(*right, conjuncts, catalog)?;
            Ok(Plan::Union {
                left: Box::new(l),
                right: Box::new(r),
            })
        }
        Plan::Difference { left, right } => {
            // σ_p(A − B) = σ_p(A) − σ_p(B): rows of B that fail p could
            // only have matched rows of A that fail p too.
            let l = push_conjuncts(*left, conjuncts.clone(), catalog)?;
            let r = push_conjuncts(*right, conjuncts, catalog)?;
            Ok(Plan::Difference {
                left: Box::new(l),
                right: Box::new(r),
            })
        }
        Plan::Sort { input, keys } => Ok(Plan::Sort {
            input: Box::new(push_conjuncts(*input, conjuncts, catalog)?),
            keys,
        }),
        Plan::Project {
            input,
            items,
            distinct,
        } => {
            // Push through when every referenced output column is a pure
            // column item (rewriting indexes); otherwise stay on top.
            let mut rewritten = Vec::with_capacity(conjuncts.len());
            let mut stuck = Vec::new();
            for c in conjuncts {
                match remap_through_projection(&c, &items) {
                    Some(inner) => rewritten.push(inner),
                    None => stuck.push(c),
                }
            }
            let mut plan = Plan::Project {
                input: Box::new(push_conjuncts(*input, rewritten, catalog)?),
                items,
                distinct,
            };
            if !stuck.is_empty() {
                plan = Plan::Select {
                    input: Box::new(plan),
                    predicate: and_all(stuck),
                };
            }
            Ok(plan)
        }
        // Limits, aggregates and scans: selection stays on top (pushing
        // below a LIMIT changes which rows survive; a HAVING-style filter
        // over aggregate outputs cannot be evaluated earlier).
        other @ (Plan::Limit { .. } | Plan::Scan { .. } | Plan::Aggregate { .. }) => {
            Ok(Plan::Select {
                input: Box::new(other),
                predicate: and_all(conjuncts),
            })
        }
    }
}

/// Split an expression on top-level ANDs.
fn split_conjuncts(expr: ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match expr {
        ScalarExpr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

/// AND a non-empty list of conjuncts back together.
fn and_all(mut conjuncts: Vec<ScalarExpr>) -> ScalarExpr {
    let first = conjuncts.remove(0);
    conjuncts.into_iter().fold(first, |acc, c| acc.and(c))
}

/// Sort conjuncts into left-only, right-only (shifted), and spanning.
fn classify(
    conjuncts: Vec<ScalarExpr>,
    left_arity: usize,
) -> (Vec<ScalarExpr>, Vec<ScalarExpr>, Vec<ScalarExpr>) {
    let mut to_left = Vec::new();
    let mut to_right = Vec::new();
    let mut stuck = Vec::new();
    for c in conjuncts {
        let cols = c.referenced_columns();
        if cols.iter().all(|&i| i < left_arity) {
            to_left.push(c);
        } else if cols.iter().all(|&i| i >= left_arity) {
            to_right.push(c.shift_columns(-(left_arity as isize)));
        } else {
            stuck.push(c);
        }
    }
    (to_left, to_right, stuck)
}

/// Rewrite a predicate over a projection's output to one over its input,
/// when every referenced output column is a plain column reference.
fn remap_through_projection(
    expr: &ScalarExpr,
    items: &[crate::plan::ProjItem],
) -> Option<ScalarExpr> {
    match expr {
        ScalarExpr::Column(i) => match items.get(*i)?.expr {
            ScalarExpr::Column(inner) => Some(ScalarExpr::Column(inner)),
            _ => None,
        },
        ScalarExpr::Literal(v) => Some(ScalarExpr::Literal(v.clone())),
        ScalarExpr::Binary { op, left, right } => Some(ScalarExpr::Binary {
            op: *op,
            left: Box::new(remap_through_projection(left, items)?),
            right: Box::new(remap_through_projection(right, items)?),
        }),
        ScalarExpr::Unary { op, expr } => Some(ScalarExpr::Unary {
            op: *op,
            expr: Box::new(remap_through_projection(expr, items)?),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::ProjItem;
    use pcqe_storage::{Column, DataType, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "l",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "r",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("c", DataType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        for i in 0..6i64 {
            c.insert("l", vec![Value::Int(i % 3), Value::Int(i)], 0.5)
                .unwrap();
            c.insert("r", vec![Value::Int(i % 2), Value::Int(10 * i)], 0.5)
                .unwrap();
        }
        c
    }

    /// Rows (values + lineage) must be identical up to order.
    fn same_rows(a: &crate::ResultSet, b: &crate::ResultSet) {
        let mut x: Vec<String> = a.rows().iter().map(|r| format!("{:?}", r)).collect();
        let mut y: Vec<String> = b.rows().iter().map(|r| format!("{:?}", r)).collect();
        x.sort();
        y.sort();
        assert_eq!(x, y);
    }

    #[test]
    fn pushdown_preserves_semantics_over_product() {
        let c = catalog();
        // σ(l.a = r.a ∧ l.b > 1 ∧ r.c < 40)(l × r)
        let plan = Plan::scan("l").product(Plan::scan("r")).select(
            ScalarExpr::column(0)
                .eq(ScalarExpr::column(2))
                .and(ScalarExpr::column(1).gt(ScalarExpr::literal(Value::Int(1))))
                .and(ScalarExpr::column(3).lt(ScalarExpr::literal(Value::Int(40)))),
        );
        let optimized = optimize(&plan, &c).unwrap();
        // The product must have become a join with pushed-down filters.
        let text = optimized.to_string();
        assert!(text.contains("Join"), "{text}");
        assert!(!text.starts_with("Select"), "selection sank: {text}");
        same_rows(
            &execute(&plan, &c).unwrap(),
            &execute(&optimized, &c).unwrap(),
        );
    }

    #[test]
    fn pushdown_through_union_and_difference() {
        let c = catalog();
        let base = |t: &str| Plan::scan(t).project(vec![ProjItem::new(ScalarExpr::column(0), "a")]);
        for plan in [
            base("l")
                .union(base("r"))
                .select(ScalarExpr::column(0).gt(ScalarExpr::literal(Value::Int(0)))),
            base("l")
                .difference(base("r"))
                .select(ScalarExpr::column(0).gt(ScalarExpr::literal(Value::Int(0)))),
        ] {
            let optimized = optimize(&plan, &c).unwrap();
            same_rows(
                &execute(&plan, &c).unwrap(),
                &execute(&optimized, &c).unwrap(),
            );
        }
    }

    #[test]
    fn pushdown_through_pure_column_projection() {
        let c = catalog();
        let plan = Plan::scan("l")
            .project(vec![
                ProjItem::new(ScalarExpr::column(1), "b"),
                ProjItem::new(ScalarExpr::column(0), "a"),
            ])
            .select(ScalarExpr::column(0).ge(ScalarExpr::literal(Value::Int(3))));
        let optimized = optimize(&plan, &c).unwrap();
        let text = optimized.to_string();
        assert!(
            text.trim_start().starts_with("Project"),
            "selection sank below the projection: {text}"
        );
        same_rows(
            &execute(&plan, &c).unwrap(),
            &execute(&optimized, &c).unwrap(),
        );
    }

    #[test]
    fn computed_projection_blocks_pushdown() {
        let c = catalog();
        let plan = Plan::scan("l")
            .project(vec![ProjItem::new(
                ScalarExpr::column(0).add(ScalarExpr::column(1)),
                "sum",
            )])
            .select(ScalarExpr::column(0).gt(ScalarExpr::literal(Value::Int(2))));
        let optimized = optimize(&plan, &c).unwrap();
        assert!(optimized.to_string().trim_start().starts_with("Select"));
        same_rows(
            &execute(&plan, &c).unwrap(),
            &execute(&optimized, &c).unwrap(),
        );
    }

    #[test]
    fn selection_never_sinks_below_limit() {
        let c = catalog();
        let plan = Plan::scan("l")
            .limit(2)
            .select(ScalarExpr::column(1).gt(ScalarExpr::literal(Value::Int(0))));
        let optimized = optimize(&plan, &c).unwrap();
        same_rows(
            &execute(&plan, &c).unwrap(),
            &execute(&optimized, &c).unwrap(),
        );
        let text = optimized.to_string();
        assert!(text.trim_start().starts_with("Select"), "{text}");
    }

    #[test]
    fn stacked_selections_merge() {
        let c = catalog();
        let plan = Plan::scan("l")
            .select(ScalarExpr::column(0).ge(ScalarExpr::literal(Value::Int(1))))
            .select(ScalarExpr::column(1).le(ScalarExpr::literal(Value::Int(4))));
        let optimized = optimize(&plan, &c).unwrap();
        same_rows(
            &execute(&plan, &c).unwrap(),
            &execute(&optimized, &c).unwrap(),
        );
        // Exactly one Select remains.
        assert_eq!(optimized.to_string().matches("Select").count(), 1);
    }
}
