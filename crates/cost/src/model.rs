//! The cost-function families.

use crate::error::CostError;
use crate::Result;
use std::fmt;

/// A per-tuple confidence-increment cost model.
///
/// Each variant defines a monotone non-decreasing potential `g(p)` on
/// `[0, 1]`; [`CostFn::cost`] charges `g(to) − g(from)` for raising a
/// confidence from `from` to `to` (`0` when `to ≤ from`).
///
/// The paper's experiments mix three families (Section 5.1): *binomial*
/// (modelled as a degree-`d` polynomial, quadratic by default),
/// *exponential*, and *logarithm*. Linear and piecewise-linear variants are
/// provided for examples and tests.
#[derive(Debug, Clone, PartialEq)]
pub enum CostFn {
    /// `g(p) = rate · p`: every δ of confidence costs the same.
    Linear {
        /// Cost per unit of confidence.
        rate: f64,
    },
    /// `g(p) = coeff · p^degree` ("binomial" in the paper): increments get
    /// more expensive the closer the confidence is to 1.
    Polynomial {
        /// Multiplier applied to `p^degree`.
        coeff: f64,
        /// Exponent (≥ 1).
        degree: f64,
    },
    /// `g(p) = coeff · (e^(rate·p) − 1)`: sharply increasing cost.
    Exponential {
        /// Multiplier.
        coeff: f64,
        /// Exponent rate (> 0).
        rate: f64,
    },
    /// `g(p) = coeff · ln(1 + scale·p)`: diminishing marginal cost — the
    /// first verification pass is the expensive one.
    Logarithmic {
        /// Multiplier.
        coeff: f64,
        /// Interior scale (> 0).
        scale: f64,
    },
    /// Piecewise-linear potential through `(p, g(p))` breakpoints.
    ///
    /// The first point must be at `p = 0` and the breakpoints must be
    /// strictly increasing in `p` and non-decreasing in `g`.
    Piecewise {
        /// `(confidence, cumulative cost)` breakpoints.
        points: Vec<(f64, f64)>,
    },
}

fn require_finite(name: &'static str, value: f64) -> Result<()> {
    if !value.is_finite() {
        return Err(CostError::InvalidParameter { name, value });
    }
    Ok(())
}

fn require_positive(name: &'static str, value: f64) -> Result<()> {
    require_finite(name, value)?;
    if value <= 0.0 {
        return Err(CostError::InvalidParameter { name, value });
    }
    Ok(())
}

fn check_conf(c: f64) -> Result<f64> {
    if !c.is_finite() || !(0.0..=1.0).contains(&c) {
        return Err(CostError::InvalidConfidence(c));
    }
    Ok(c)
}

impl CostFn {
    /// Linear model with the given per-unit rate (> 0).
    pub fn linear(rate: f64) -> Result<CostFn> {
        require_positive("rate", rate)?;
        Ok(CostFn::Linear { rate })
    }

    /// Polynomial ("binomial") model `coeff · p^degree`, `degree ≥ 1`.
    pub fn polynomial(coeff: f64, degree: f64) -> Result<CostFn> {
        require_positive("coeff", coeff)?;
        require_finite("degree", degree)?;
        if degree < 1.0 {
            return Err(CostError::InvalidParameter {
                name: "degree",
                value: degree,
            });
        }
        Ok(CostFn::Polynomial { coeff, degree })
    }

    /// Quadratic shortcut for the paper's "binomial" family.
    pub fn binomial(coeff: f64) -> Result<CostFn> {
        CostFn::polynomial(coeff, 2.0)
    }

    /// Exponential model `coeff · (e^(rate·p) − 1)`.
    pub fn exponential(coeff: f64, rate: f64) -> Result<CostFn> {
        require_positive("coeff", coeff)?;
        require_positive("rate", rate)?;
        Ok(CostFn::Exponential { coeff, rate })
    }

    /// Logarithmic model `coeff · ln(1 + scale·p)`.
    pub fn logarithmic(coeff: f64, scale: f64) -> Result<CostFn> {
        require_positive("coeff", coeff)?;
        require_positive("scale", scale)?;
        Ok(CostFn::Logarithmic { coeff, scale })
    }

    /// Piecewise-linear model through the given breakpoints.
    pub fn piecewise(points: Vec<(f64, f64)>) -> Result<CostFn> {
        let Some(&(first_p, _)) = points.first() else {
            return Err(CostError::NonMonotonic);
        };
        if first_p != 0.0 {
            return Err(CostError::NonMonotonic);
        }
        for ((p0, g0), (p1, g1)) in points.iter().zip(points.iter().skip(1)) {
            if !(p1 > p0 && g1 >= g0) {
                return Err(CostError::NonMonotonic);
            }
        }
        for &(p, g) in &points {
            check_conf(p)?;
            require_finite("g", g)?;
            if g < 0.0 {
                return Err(CostError::InvalidParameter {
                    name: "g",
                    value: g,
                });
            }
        }
        Ok(CostFn::Piecewise { points })
    }

    /// The monotone potential `g(p)`.
    pub fn potential(&self, p: f64) -> f64 {
        match self {
            CostFn::Linear { rate } => rate * p,
            CostFn::Polynomial { coeff, degree } => coeff * p.powf(*degree),
            CostFn::Exponential { coeff, rate } => coeff * ((rate * p).exp() - 1.0),
            CostFn::Logarithmic { coeff, scale } => coeff * (1.0 + scale * p).ln(),
            CostFn::Piecewise { points } => {
                // Find the segment containing p and interpolate. The
                // constructor guarantees a non-empty breakpoint list; the
                // impossible empty case evaluates to zero rather than
                // panicking (PCQE-P002).
                let Some((&first, rest)) = points.split_first() else {
                    return 0.0;
                };
                let mut prev = first;
                for &(px, gx) in rest {
                    if p <= px {
                        let (p0, g0) = prev;
                        let t = if px > p0 { (p - p0) / (px - p0) } else { 0.0 };
                        return g0 + t * (gx - g0);
                    }
                    prev = (px, gx);
                }
                // Beyond the last breakpoint: extend flat.
                prev.1
            }
        }
    }

    /// Cost of raising confidence from `from` to `to`; `0` when `to ≤ from`.
    pub fn cost(&self, from: f64, to: f64) -> f64 {
        if to <= from {
            return 0.0;
        }
        (self.potential(to) - self.potential(from)).max(0.0)
    }

    /// Checked variant of [`CostFn::cost`] validating both confidences.
    pub fn cost_checked(&self, from: f64, to: f64) -> Result<f64> {
        check_conf(from)?;
        check_conf(to)?;
        Ok(self.cost(from, to))
    }

    /// Cost of one increment step of size `delta` starting at `from`,
    /// clamping the target to `1.0`.
    pub fn step_cost(&self, from: f64, delta: f64) -> f64 {
        self.cost(from, (from + delta).min(1.0))
    }
}

impl fmt::Display for CostFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostFn::Linear { rate } => write!(f, "linear(rate={rate})"),
            CostFn::Polynomial { coeff, degree } => {
                write!(f, "poly(coeff={coeff}, degree={degree})")
            }
            CostFn::Exponential { coeff, rate } => {
                write!(f, "exp(coeff={coeff}, rate={rate})")
            }
            CostFn::Logarithmic { coeff, scale } => {
                write!(f, "log(coeff={coeff}, scale={scale})")
            }
            CostFn::Piecewise { points } => write!(f, "piecewise({} points)", points.len()),
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;

    #[test]
    fn linear_matches_paper_example() {
        // Paper Section 3.1: raising tuple 03 by 0.1 costs 10 → rate 100;
        // raising tuple 02 by 0.1 costs 100 → rate 1000.
        let c03 = CostFn::linear(100.0).unwrap();
        let c02 = CostFn::linear(1000.0).unwrap();
        assert!((c03.cost(0.4, 0.5) - 10.0).abs() < 1e-9);
        assert!((c02.cost(0.3, 0.4) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn lowering_is_free() {
        for c in [
            CostFn::linear(10.0).unwrap(),
            CostFn::binomial(5.0).unwrap(),
            CostFn::exponential(1.0, 3.0).unwrap(),
            CostFn::logarithmic(4.0, 9.0).unwrap(),
        ] {
            assert_eq!(c.cost(0.8, 0.2), 0.0, "{c}");
            assert_eq!(c.cost(0.5, 0.5), 0.0, "{c}");
        }
    }

    #[test]
    fn all_families_are_monotone() {
        let fns = [
            CostFn::linear(10.0).unwrap(),
            CostFn::binomial(5.0).unwrap(),
            CostFn::polynomial(2.0, 3.0).unwrap(),
            CostFn::exponential(1.0, 3.0).unwrap(),
            CostFn::logarithmic(4.0, 9.0).unwrap(),
            CostFn::piecewise(vec![(0.0, 0.0), (0.5, 1.0), (1.0, 10.0)]).unwrap(),
        ];
        for c in &fns {
            let mut last = c.potential(0.0);
            for i in 1..=100 {
                let p = i as f64 / 100.0;
                let g = c.potential(p);
                assert!(g >= last - 1e-12, "{c} not monotone at {p}");
                last = g;
            }
        }
    }

    #[test]
    fn costs_are_additive_along_a_path() {
        let c = CostFn::exponential(2.0, 4.0).unwrap();
        let direct = c.cost(0.1, 0.7);
        let stepped = c.cost(0.1, 0.3) + c.cost(0.3, 0.7);
        assert!((direct - stepped).abs() < 1e-9);
    }

    #[test]
    fn step_cost_clamps_at_one() {
        let c = CostFn::linear(10.0).unwrap();
        assert!((c.step_cost(0.95, 0.1) - 0.5).abs() < 1e-9);
        assert_eq!(c.step_cost(1.0, 0.1), 0.0);
    }

    #[test]
    fn piecewise_interpolates() {
        let c = CostFn::piecewise(vec![(0.0, 0.0), (0.5, 10.0), (1.0, 30.0)]).unwrap();
        assert!((c.potential(0.25) - 5.0).abs() < 1e-9);
        assert!((c.potential(0.75) - 20.0).abs() < 1e-9);
        assert!((c.cost(0.25, 0.75) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(CostFn::linear(0.0).is_err());
        assert!(CostFn::linear(f64::NAN).is_err());
        assert!(CostFn::polynomial(1.0, 0.5).is_err());
        assert!(CostFn::exponential(-1.0, 1.0).is_err());
        assert!(CostFn::logarithmic(1.0, 0.0).is_err());
        assert!(CostFn::piecewise(vec![]).is_err());
        assert!(CostFn::piecewise(vec![(0.1, 0.0)]).is_err());
        assert!(CostFn::piecewise(vec![(0.0, 5.0), (0.5, 1.0)]).is_err());
        assert!(CostFn::piecewise(vec![(0.0, 0.0), (0.0, 1.0)]).is_err());
    }

    #[test]
    fn cost_checked_validates_range() {
        let c = CostFn::linear(1.0).unwrap();
        assert!(c.cost_checked(0.2, 1.1).is_err());
        assert!(c.cost_checked(-0.1, 0.5).is_err());
        assert!(c.cost_checked(0.2, 0.9).is_ok());
    }
}
