//! Error type for cost-model construction and evaluation.

use std::fmt;

/// Errors raised when constructing or evaluating a cost model.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A model parameter was invalid (non-finite, non-positive, …).
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A piecewise model's breakpoints were not strictly increasing in `p`
    /// or decreasing in `g(p)`.
    NonMonotonic,
    /// A confidence argument was outside `[0, 1]` or not finite.
    InvalidConfidence(f64),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidParameter { name, value } => {
                write!(f, "invalid cost parameter `{name}` = {value}")
            }
            CostError::NonMonotonic => {
                f.write_str("piecewise cost model must be monotone non-decreasing")
            }
            // The payload stays available to code; the rendered message
            // does not echo the confidence value (PCQE-F003).
            CostError::InvalidConfidence(_) => {
                write!(f, "confidence outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for CostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CostError::InvalidParameter {
            name: "rate",
            value: -1.0,
        };
        assert!(e.to_string().contains("rate"));
        assert!(CostError::NonMonotonic.to_string().contains("monotone"));
    }
}
