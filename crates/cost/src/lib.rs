//! Confidence-increment cost models.
//!
//! The paper assumes "each data item in the database is associated with a
//! cost function that indicates the cost for improving the confidence value
//! of this data item" (Section 1), and its experiments draw per-tuple cost
//! functions from "the binomial, exponential and logarithm functions"
//! (Section 5.1). This crate provides those families plus linear and
//! piecewise-linear models behind one [`CostFn`] type.
//!
//! Every model is a monotone potential `g(p)`; the cost of raising a
//! tuple's confidence from `p` to `p*` is `g(p*) − g(p)` (and `0` when
//! `p* ≤ p` — lowering confidence is free, matching the greedy algorithm's
//! roll-back phase).
//!
//! ```
//! use pcqe_cost::CostFn;
//!
//! let c = CostFn::linear(100.0).unwrap(); // paper: "+0.1 costs 10"
//! assert!((c.cost(0.4, 0.5) - 10.0).abs() < 1e-12);
//! assert_eq!(c.cost(0.5, 0.4), 0.0);
//! ```

pub mod error;
pub mod model;

pub use error::CostError;
pub use model::CostFn;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CostError>;
