//! Morsel-driven work dispatch for the vectorized executor.
//!
//! The chunked [`crate::map`] scheduler cuts a *homogeneous item slice*
//! into equal chunks. Vectorized execution needs one level up from that:
//! the work arrives already cut into **morsels** — variable-weight units
//! such as "one columnar batch of ~1024 rows" or "one hash-join
//! partition" — and each unit wants exactly one `f` application, not one
//! per row. This module dispatches whole units across worker threads:
//!
//! * workers claim unit indexes from an atomic cursor (same protocol as
//!   the chunk scheduler, so scheduling skew telemetry stays comparable);
//! * finished units flow back over an [`std::sync::mpsc`] channel and are
//!   reassembled **in unit order** on the calling thread;
//! * `weight` (total rows across all units) — not the unit count — decides
//!   whether spawning pays off, via [`Parallelism::workers_for`].
//!
//! The determinism contract is the one the rest of `pcqe-par` keeps: for
//! a pure `f`, [`map_morsels`] returns exactly
//! `units.iter().enumerate().map(|(i, u)| f(i, u)).collect()` at any
//! thread count, and [`try_map_morsels`] fails with the **first error in
//! unit order**, matching a sequential `collect::<Result<..>>()`. Batch
//! telemetry is reported once, after the scope joins — never from inside
//! a worker — so observers see deterministic structure (items, chunks)
//! with only the timing fields varying run to run.

use crate::{BatchReport, ParObserver, Parallelism};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Apply `f` to every unit, in parallel, preserving unit order.
///
/// `weight` is the total row count carried by `units` and gates the
/// spawn decision: a thousand one-row morsels should stay sequential
/// just like a thousand-item slice would. Equivalent to
/// `units.iter().enumerate().map(|(i, u)| f(i, u)).collect()` for any
/// thread count.
pub fn map_morsels<U, R, F>(
    par: &Parallelism,
    units: &[U],
    weight: usize,
    f: F,
    observer: Option<&dyn ParObserver>,
) -> Vec<R>
where
    U: Sync,
    R: Send,
    F: Fn(usize, &U) -> R + Sync,
{
    let n_units = units.len();
    let workers = par.workers_for(weight).min(n_units.max(1));
    if workers <= 1 || n_units <= 1 {
        let started = observer.map(|o| o.now_nanos());
        let out: Vec<R> = units.iter().enumerate().map(|(i, u)| f(i, u)).collect();
        if let (Some(obs), Some(t0)) = (observer, started) {
            obs.batch(&BatchReport {
                items: weight,
                workers: 1,
                chunks: n_units.max(1),
                chunks_claimed: vec![n_units.max(1) as u64],
                busy_nanos: vec![obs.now_nanos().saturating_sub(t0)],
                reassembly_stalls: 0,
            });
        }
        return out;
    }
    let next_unit = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    // Per-worker telemetry, pushed once per worker at loop exit.
    let (stats_tx, stats_rx) = mpsc::channel::<(usize, u64, u64)>();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let f = &f;
            let next_unit = &next_unit;
            let tx = tx.clone();
            let stats_tx = stats_tx.clone();
            scope.spawn(move || {
                let mut claimed: u64 = 0;
                let mut busy: u64 = 0;
                loop {
                    let c = next_unit.fetch_add(1, Ordering::Relaxed);
                    if c >= n_units {
                        break;
                    }
                    let Some(unit) = units.get(c) else { break };
                    let t0 = observer.map(|o| o.now_nanos());
                    let out = f(c, unit);
                    if let (Some(obs), Some(t0)) = (observer, t0) {
                        claimed += 1;
                        busy += obs.now_nanos().saturating_sub(t0);
                    }
                    if tx.send((c, out)).is_err() {
                        break; // receiver gone: the scope is unwinding
                    }
                }
                if observer.is_some() {
                    let _ = stats_tx.send((w, claimed, busy));
                }
            });
        }
    });
    // The scope joined every worker, so both channels are fully fed;
    // drop our own senders and drain.
    drop(tx);
    drop(stats_tx);
    let mut slots: Vec<Option<R>> = (0..n_units).map(|_| None).collect();
    let mut stalls: u64 = 0;
    let mut max_seen: usize = 0;
    for (c, out) in rx {
        // A unit arriving after a higher-indexed sibling means in-order
        // reassembly had to hold buffered output (same signal as the
        // chunk scheduler's `reassembly_stalls`).
        if max_seen > c + 1 {
            stalls += 1;
        }
        max_seen = max_seen.max(c + 1);
        if let Some(slot) = slots.get_mut(c) {
            *slot = Some(out);
        }
    }
    if let Some(obs) = observer {
        let mut per_worker: Vec<(usize, u64, u64)> = stats_rx.into_iter().collect();
        per_worker.sort_unstable_by_key(|&(w, _, _)| w);
        obs.batch(&BatchReport {
            items: weight,
            workers,
            chunks: n_units,
            chunks_claimed: per_worker.iter().map(|&(_, c, _)| c).collect(),
            busy_nanos: per_worker.iter().map(|&(_, _, b)| b).collect(),
            reassembly_stalls: stalls,
        });
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), n_units, "every unit produced exactly once");
    out
}

/// Fallible [`map_morsels`]: all results in unit order, or the **first
/// error in unit order** — matching a sequential
/// `collect::<Result<Vec<_>, _>>()` (later units may still have run).
pub fn try_map_morsels<U, R, E, F>(
    par: &Parallelism,
    units: &[U],
    weight: usize,
    f: F,
    observer: Option<&dyn ParObserver>,
) -> Result<Vec<R>, E>
where
    U: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &U) -> Result<R, E> + Sync,
{
    let attempts = map_morsels(par, units, weight, f, observer);
    attempts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    fn eight() -> Parallelism {
        Parallelism {
            worker_threads: Some(8),
            parallel_threshold: 1,
        }
    }

    #[test]
    fn preserves_unit_order_at_every_thread_count() {
        let units: Vec<Vec<u64>> = (0..97).map(|i| vec![i, i + 1, i + 2]).collect();
        let weight: usize = units.iter().map(Vec::len).sum();
        let expect: Vec<u64> = units
            .iter()
            .enumerate()
            .map(|(i, u)| i as u64 * 1000 + u.iter().sum::<u64>())
            .collect();
        for workers in [1usize, 2, 3, 8, 17] {
            let par = Parallelism {
                worker_threads: Some(workers),
                parallel_threshold: 1,
            };
            let got = map_morsels(
                &par,
                &units,
                weight,
                |i, u| i as u64 * 1000 + u.iter().sum::<u64>(),
                None,
            );
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn weight_below_threshold_stays_on_calling_thread() {
        let caller = std::thread::current().id();
        let par = Parallelism {
            worker_threads: Some(8),
            parallel_threshold: 100,
        };
        // 10 units but only 30 rows of weight: stays sequential.
        let units: Vec<u32> = (0..10).collect();
        let ids = map_morsels(&par, &units, 30, |_, _| std::thread::current().id(), None);
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn empty_and_single_unit_batches() {
        let none: Vec<u32> = Vec::new();
        let out: Vec<u32> = map_morsels(&eight(), &none, 0, |_, u| u + 1, None);
        assert!(out.is_empty());
        let out = map_morsels(&eight(), &[41u32], 5000, |_, u| u + 1, None);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn try_map_morsels_returns_first_error_in_unit_order() {
        let units: Vec<u32> = (0..500).collect();
        let err = try_map_morsels(
            &eight(),
            &units,
            50_000,
            |_, &u| {
                if u % 100 == 99 {
                    Err(format!("bad {u}"))
                } else {
                    Ok(u)
                }
            },
            None,
        )
        .unwrap_err();
        assert_eq!(err, "bad 99", "must match sequential collect semantics");
        let ok: Vec<u32> =
            try_map_morsels(&eight(), &units, 50_000, |_, &u| Ok::<_, ()>(u), None).unwrap();
        assert_eq!(ok, units);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let units: Vec<u32> = (0..200).collect();
        let result = std::panic::catch_unwind(|| {
            map_morsels(
                &eight(),
                &units,
                20_000,
                |_, &u| {
                    if u == 100 {
                        panic!("boom at 100");
                    }
                    u
                },
                None,
            )
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn one_report_after_the_scope_joins() {
        struct Obs {
            ticks: AtomicUsize,
            batches: Mutex<Vec<BatchReport>>,
        }
        impl ParObserver for Obs {
            fn now_nanos(&self) -> u64 {
                self.ticks.fetch_add(1, Ordering::Relaxed) as u64
            }
            fn batch(&self, report: &BatchReport) {
                self.batches.lock().expect("batches").push(report.clone());
            }
        }
        let units: Vec<u64> = (0..64).collect();
        let obs = Obs {
            ticks: AtomicUsize::new(0),
            batches: Mutex::new(Vec::new()),
        };
        let plain = map_morsels(&eight(), &units, 64 * 1024, |i, &u| i as u64 + u, None);
        let observed = map_morsels(
            &eight(),
            &units,
            64 * 1024,
            |i, &u| i as u64 + u,
            Some(&obs),
        );
        assert_eq!(plain, observed, "observation must not change results");
        let batches = obs.batches.lock().expect("batches");
        assert_eq!(batches.len(), 1, "one report per morsel batch");
        let r = &batches[0];
        assert_eq!(r.items, 64 * 1024, "items counts weight, not units");
        assert_eq!(r.chunks, 64, "chunks counts morsels");
        assert!(r.workers >= 1 && r.workers <= 8);
        assert_eq!(r.chunks_claimed.len(), r.workers);
        assert_eq!(r.busy_nanos.len(), r.workers);
        assert_eq!(
            r.chunks_claimed.iter().sum::<u64>(),
            r.chunks as u64,
            "every morsel claimed exactly once"
        );
    }

    #[test]
    fn sequential_fast_path_still_reports() {
        struct OneBatch(Mutex<Option<BatchReport>>);
        impl ParObserver for OneBatch {
            fn now_nanos(&self) -> u64 {
                0
            }
            fn batch(&self, report: &BatchReport) {
                *self.0.lock().expect("slot") = Some(report.clone());
            }
        }
        let obs = OneBatch(Mutex::new(None));
        let out = map_morsels(
            &Parallelism::sequential(),
            &[1u8, 2, 3],
            3,
            |_, x| x + 1,
            Some(&obs),
        );
        assert_eq!(out, vec![2, 3, 4]);
        let report = obs.0.lock().expect("slot").clone().expect("reported");
        assert_eq!(report.workers, 1);
        assert_eq!(report.items, 3);
        assert_eq!(report.chunks, 3);
        assert_eq!(report.chunks_claimed, vec![3]);
        assert_eq!(report.reassembly_stalls, 0);
    }
}
