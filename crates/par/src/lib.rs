//! # pcqe-par — deterministic data parallelism on `std` alone
//!
//! A small chunked work-queue scheduler built on [`std::thread::scope`].
//! No external dependencies, no global thread pool, no unsafe code: a
//! batch of work items is split into cache-friendly chunks, worker
//! threads claim chunks from an atomic counter, and the per-chunk outputs
//! are reassembled **in input order** before returning.
//!
//! ## Determinism contract
//!
//! For a pure (or per-item-seeded) function `f`, `map(par, items, f)`
//! returns exactly `items.iter().map(f).collect()` — the same values in
//! the same order — regardless of how many worker threads ran or how
//! chunks interleaved. This is what lets the engine keep byte-identical
//! query answers while scaling across cores: thread count changes *when*
//! an item is evaluated, never *what* is evaluated or where its output
//! lands.
//!
//! The contract extends to shared read-only state captured by `f`. The
//! engine's lineage layer hands workers `Arc`-shared compiled circuits
//! drawn from one query's circuit pool (`pcqe-lineage`'s `CircuitCache`);
//! because `f` only *reads* that state and every item's output slot is
//! fixed by input order, scoring a batch over pooled circuits is
//! bit-identical at any thread count. (Mutable cache state — probability
//! memos, invalidation — never crosses into a parallel batch; the engine
//! drives memoized scoring sequentially and uses `map`/`try_map` only
//! with immutable circuit views.)
//!
//! ## Panic propagation
//!
//! A panic inside `f` on any worker is re-raised on the calling thread
//! when the scope joins, so parallel evaluation fails as loudly as the
//! sequential loop it replaces.

pub mod morsel;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-batch scheduler telemetry handed to a [`ParObserver`].
///
/// Vectors are indexed by worker slot (`0..workers`), so per-worker skew
/// is visible: a healthy batch has near-equal `busy_nanos` entries, a
/// straggling one does not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Items in the batch.
    pub items: usize,
    /// Worker threads that ran (1 = sequential fast path).
    pub workers: usize,
    /// Chunks the batch was cut into.
    pub chunks: usize,
    /// Chunks claimed, per worker slot.
    pub chunks_claimed: Vec<u64>,
    /// Nanoseconds spent computing (claim-to-push), per worker slot.
    pub busy_nanos: Vec<u64>,
    /// Chunks that completed after a higher-indexed chunk — each one
    /// forces the in-order reassembly to hold buffered output.
    pub reassembly_stalls: u64,
}

/// A passive observer of scheduler batches.
///
/// `pcqe-par` has no dependencies, so it cannot name a clock type; the
/// observer supplies its own monotonic nanosecond source via
/// [`ParObserver::now_nanos`] (the `pcqe-obs` recorder forwards
/// `pcqe_core::clock`). Observation is strictly read-only: the scheduler
/// calls `now_nanos` around chunk execution and hands one [`BatchReport`]
/// per parallel batch to [`ParObserver::batch`]. Results are unaffected.
pub trait ParObserver: Sync {
    /// A monotonic nanosecond reading from the observer's clock.
    fn now_nanos(&self) -> u64;
    /// One finished batch's telemetry.
    fn batch(&self, report: &BatchReport);
}

/// How a tuple's confidence was established on the policy-gate path.
///
/// Lives here, next to [`ParObserver`], for the same reason that trait
/// does: `pcqe-par` is the one dependency-free crate every layer can
/// name, so the scorer (`pcqe-algebra`), the circuit cache
/// (`pcqe-lineage`) and the engine can all tag decisions without a
/// dependency on the observability crate that records them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfidencePath {
    /// Exact Shannon expansion (or a fresh circuit compile) ran.
    Exact,
    /// The Fréchet-style upper bound already failed β, so exact
    /// expansion was skipped; the recorded confidence is that bound.
    BetaSkipped,
    /// A memoized circuit answered without recompiling lineage.
    CacheHit,
}

/// One per-tuple policy decision: the causal record of why a tuple was
/// released or suppressed by the β gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Which tuple the gate judged: the ordinal of the scored result row
    /// within its query (derived rows have no single base `TupleId`, and
    /// result order is deterministic, so the ordinal is a stable key —
    /// it matches the row's position in the released/withheld audit
    /// accounting).
    pub tuple: u64,
    /// `true` iff the tuple cleared the policy gate.
    pub released: bool,
    /// How the deciding confidence value was computed.
    pub path: ConfidencePath,
    /// The policy threshold the confidence was compared against.
    pub beta: f64,
    /// The confidence value the gate saw (an upper bound when
    /// `path == BetaSkipped`).
    pub confidence: f64,
    /// Lineage nodes behind the tuple (0 = base tuple, no derivation).
    pub lineage_size: usize,
}

/// A passive causal-trace sink: spans, instant events, and per-tuple
/// [`Decision`] records.
///
/// Like [`ParObserver`], the trait lives on the dependency-free side and
/// the implementation (`pcqe-obs`'s ring-buffer `Tracer`) supplies its
/// own clock. Every method is observation-only: a sink may drop events
/// (bounded buffers) but must never influence the caller — query answers
/// are bit-identical whether a sink is attached, detached, or full.
pub trait TraceSink: Sync {
    /// Open a span; returns an id to close it with. Implementations
    /// return 0 when tracing is disabled, and `span_end(0)` is a no-op.
    fn span_begin(&self, name: &str) -> u64;
    /// Close the span previously opened as `id`.
    fn span_end(&self, id: u64);
    /// A point-in-time event with a free-form detail string.
    fn instant(&self, name: &str, detail: &str);
    /// One per-tuple policy decision.
    fn decision(&self, decision: &Decision);
}

/// Parallelism policy: how many workers, and when to bother.
///
/// `worker_threads = None` asks the host for
/// [`std::thread::available_parallelism`]; `Some(n)` uses exactly `n`
/// workers (even when `n` exceeds the core count — useful for oversubscription
/// tests and for proving thread-count independence on small machines).
/// Batches shorter than `parallel_threshold` always run on the calling
/// thread: spawning costs more than it saves for small inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker count cap. `None` = one worker per available core.
    pub worker_threads: Option<usize>,
    /// Minimum batch length before threads are spawned.
    pub parallel_threshold: usize,
}

/// Default minimum batch size that justifies spawning worker threads.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            worker_threads: None,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

impl Parallelism {
    /// A policy that never spawns: bit-for-bit the sequential engine.
    pub fn sequential() -> Self {
        Parallelism {
            worker_threads: Some(1),
            parallel_threshold: usize::MAX,
        }
    }

    /// A policy with a fixed worker count and the default threshold.
    pub fn with_workers(n: usize) -> Self {
        Parallelism {
            worker_threads: Some(n),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// Workers that would actually run for a batch of `len` items.
    pub fn workers_for(&self, len: usize) -> usize {
        if len < self.parallel_threshold.max(2) {
            return 1;
        }
        let cap = self.worker_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        cap.clamp(1, len)
    }
}

/// Number of chunks to cut a batch into: a few morsels per worker so a
/// slow chunk does not straggle the whole batch.
const CHUNKS_PER_WORKER: usize = 4;

fn chunk_bounds(len: usize, workers: usize) -> (usize, usize) {
    let target_chunks = workers * CHUNKS_PER_WORKER;
    let chunk_size = len.div_ceil(target_chunks).max(1);
    let n_chunks = len.div_ceil(chunk_size);
    (chunk_size, n_chunks)
}

/// Apply `f` to every item, in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` for any thread count.
/// Runs on the calling thread when the batch is below the policy's
/// threshold or only one worker is available.
pub fn map<T, R, F>(par: &Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(par, items, |_, item| f(item))
}

/// [`map`], but `f` also receives the item's index in the input slice.
pub fn map_indexed<T, R, F>(par: &Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed_observed(par, items, f, None)
}

/// [`map`] with an optional [`ParObserver`] receiving batch telemetry.
///
/// Identical output to [`map`] for every observer and thread count: the
/// observer only reads its own clock and receives counts after the fact.
pub fn map_observed<T, R, F>(
    par: &Parallelism,
    items: &[T],
    f: F,
    observer: Option<&dyn ParObserver>,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed_observed(par, items, |_, item| f(item), observer)
}

/// [`map_indexed`] with an optional [`ParObserver`].
pub fn map_indexed_observed<T, R, F>(
    par: &Parallelism,
    items: &[T],
    f: F,
    observer: Option<&dyn ParObserver>,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let len = items.len();
    let workers = par.workers_for(len);
    if workers <= 1 {
        let started = observer.map(|o| o.now_nanos());
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        if let (Some(obs), Some(t0)) = (observer, started) {
            obs.batch(&BatchReport {
                items: len,
                workers: 1,
                chunks: 1,
                chunks_claimed: vec![1],
                busy_nanos: vec![obs.now_nanos().saturating_sub(t0)],
                reassembly_stalls: 0,
            });
        }
        return out;
    }
    let (chunk_size, n_chunks) = chunk_bounds(len, workers);
    let spawned = workers.min(n_chunks);
    let next_chunk = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    // Per-worker telemetry, written once per worker at loop exit.
    let worker_stats: Mutex<Vec<(usize, u64, u64)>> = Mutex::new(Vec::with_capacity(spawned));
    let stalls = AtomicUsize::new(0);
    let max_pushed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..spawned {
            let f = &f;
            let next_chunk = &next_chunk;
            let done = &done;
            let worker_stats = &worker_stats;
            let stalls = &stalls;
            let max_pushed = &max_pushed;
            scope.spawn(move || {
                let mut claimed: u64 = 0;
                let mut busy: u64 = 0;
                loop {
                    let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let t0 = observer.map(|o| o.now_nanos());
                    let start = c * chunk_size;
                    let end = (start + chunk_size).min(len);
                    let out: Vec<R> = items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(off, t)| f(start + off, t))
                        .collect();
                    if let (Some(obs), Some(t0)) = (observer, t0) {
                        claimed += 1;
                        busy += obs.now_nanos().saturating_sub(t0);
                        // A chunk landing after a higher-indexed sibling
                        // means in-order reassembly had to buffer.
                        let seen = max_pushed.fetch_max(c + 1, Ordering::Relaxed);
                        if seen > c + 1 {
                            stalls.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    done.lock().expect("no poisoned chunk list").push((c, out));
                }
                if observer.is_some() {
                    worker_stats
                        .lock()
                        .expect("no poisoned stats list")
                        .push((w, claimed, busy));
                }
            });
        }
    });
    if let Some(obs) = observer {
        let mut per_worker = worker_stats.into_inner().expect("scope joined all workers");
        per_worker.sort_unstable_by_key(|&(w, _, _)| w);
        obs.batch(&BatchReport {
            items: len,
            workers: spawned,
            chunks: n_chunks,
            chunks_claimed: per_worker.iter().map(|&(_, c, _)| c).collect(),
            busy_nanos: per_worker.iter().map(|&(_, _, b)| b).collect(),
            reassembly_stalls: stalls.load(Ordering::Relaxed) as u64,
        });
    }
    let mut chunks = done.into_inner().expect("scope joined all workers");
    chunks.sort_unstable_by_key(|&(c, _)| c);
    debug_assert_eq!(chunks.len(), n_chunks);
    let mut out = Vec::with_capacity(len);
    for (_, mut part) in chunks {
        out.append(&mut part);
    }
    out
}

/// Fallible [`map`]: apply `f` to every item in parallel and return either
/// all results in input order or the **first error in input order** —
/// matching what a sequential `collect::<Result<Vec<_>, _>>()` would
/// report (later items may still have been evaluated).
pub fn try_map<T, R, E, F>(par: &Parallelism, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    try_map_observed(par, items, f, None)
}

/// [`try_map`] with an optional [`ParObserver`].
pub fn try_map_observed<T, R, E, F>(
    par: &Parallelism,
    items: &[T],
    f: F,
    observer: Option<&dyn ParObserver>,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let attempts = map_observed(par, items, f, observer);
    attempts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn eight() -> Parallelism {
        Parallelism {
            worker_threads: Some(8),
            parallel_threshold: 1,
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map(&eight(), &[], |x: &u32| x + 1);
        assert!(out.is_empty());
        let out: Vec<u32> = map(&Parallelism::sequential(), &[], |x: &u32| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = map(&eight(), &[41u32], |x| {
            calls.fetch_add(1, Ordering::SeqCst);
            x + 1
        });
        assert_eq!(out, vec![42]);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn preserves_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1usize, 2, 3, 8, 17] {
            let par = Parallelism {
                worker_threads: Some(workers),
                parallel_threshold: 1,
            };
            let got = map(&par, &items, |x| x * 3 + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn map_indexed_gives_the_input_slice_index() {
        let items = vec!["a", "b", "c", "d", "e"];
        let par = Parallelism {
            worker_threads: Some(4),
            parallel_threshold: 1,
        };
        let got = map_indexed(&par, &items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn below_threshold_stays_on_calling_thread() {
        let caller = std::thread::current().id();
        let par = Parallelism {
            worker_threads: Some(8),
            parallel_threshold: 100,
        };
        let ids = map(&par, &[1, 2, 3], |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn every_item_visited_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..5000).collect();
        map(&eight(), &items, |&i| {
            counts[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let items: Vec<u32> = (0..1000).collect();
        let result = std::panic::catch_unwind(|| {
            map(&eight(), &items, |&x| {
                if x == 500 {
                    panic!("boom at 500");
                }
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn try_map_returns_first_error_in_input_order() {
        let items: Vec<u32> = (0..10_000).collect();
        let err = try_map(&eight(), &items, |&x| {
            if x % 3000 == 2999 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert_eq!(err, "bad 2999", "must match sequential collect semantics");
        let ok: Vec<u32> = try_map(&eight(), &items, |&x| Ok::<_, ()>(x)).unwrap();
        assert_eq!(ok, items);
    }

    #[test]
    fn workers_for_respects_threshold_and_caps() {
        let par = Parallelism {
            worker_threads: Some(4),
            parallel_threshold: 10,
        };
        assert_eq!(par.workers_for(5), 1, "below threshold");
        assert_eq!(par.workers_for(100), 4, "capped at configured workers");
        assert_eq!(par.workers_for(0), 1, "empty batch needs no workers");
        let seq = Parallelism::sequential();
        assert_eq!(seq.workers_for(1_000_000), 1);
    }

    #[test]
    fn observed_map_matches_unobserved_map_exactly() {
        struct CountingObserver {
            ticks: AtomicUsize,
            batches: Mutex<Vec<BatchReport>>,
        }
        impl ParObserver for CountingObserver {
            fn now_nanos(&self) -> u64 {
                // A fake monotonic clock: one tick per read.
                self.ticks.fetch_add(1, Ordering::Relaxed) as u64
            }
            fn batch(&self, report: &BatchReport) {
                self.batches.lock().expect("batches").push(report.clone());
            }
        }
        let items: Vec<u64> = (0..10_000).collect();
        let plain = map(&eight(), &items, |x| x * 7 + 3);
        let obs = CountingObserver {
            ticks: AtomicUsize::new(0),
            batches: Mutex::new(Vec::new()),
        };
        let observed = map_observed(&eight(), &items, |x| x * 7 + 3, Some(&obs));
        assert_eq!(plain, observed, "observation must not change results");
        let batches = obs.batches.lock().expect("batches");
        assert_eq!(batches.len(), 1, "one report per batch");
        let r = &batches[0];
        assert_eq!(r.items, 10_000);
        assert!(r.workers >= 1 && r.workers <= 8);
        assert_eq!(r.chunks_claimed.len(), r.workers);
        assert_eq!(r.busy_nanos.len(), r.workers);
        assert_eq!(
            r.chunks_claimed.iter().sum::<u64>(),
            r.chunks as u64,
            "every chunk claimed exactly once"
        );
    }

    #[test]
    fn sequential_path_still_reports_one_chunk() {
        struct OneBatch(Mutex<Option<BatchReport>>);
        impl ParObserver for OneBatch {
            fn now_nanos(&self) -> u64 {
                0
            }
            fn batch(&self, report: &BatchReport) {
                *self.0.lock().expect("slot") = Some(report.clone());
            }
        }
        let obs = OneBatch(Mutex::new(None));
        let out = map_observed(
            &Parallelism::sequential(),
            &[1u8, 2, 3],
            |x| x + 1,
            Some(&obs),
        );
        assert_eq!(out, vec![2, 3, 4]);
        let report = obs.0.lock().expect("slot").clone().expect("reported");
        assert_eq!(report.workers, 1);
        assert_eq!(report.chunks, 1);
        assert_eq!(report.chunks_claimed, vec![1]);
        assert_eq!(report.reassembly_stalls, 0);
    }

    #[test]
    fn try_map_observed_keeps_first_error_semantics() {
        struct Null;
        impl ParObserver for Null {
            fn now_nanos(&self) -> u64 {
                0
            }
            fn batch(&self, _report: &BatchReport) {}
        }
        let items: Vec<u32> = (0..10_000).collect();
        let err = try_map_observed(
            &eight(),
            &items,
            |&x| {
                if x % 3000 == 2999 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            },
            Some(&Null),
        )
        .unwrap_err();
        assert_eq!(err, "bad 2999");
    }

    #[test]
    fn oversubscription_beyond_item_count_is_clamped() {
        let par = Parallelism {
            worker_threads: Some(64),
            parallel_threshold: 2,
        };
        assert_eq!(par.workers_for(3), 3, "never more workers than items");
        let got = map(&par, &[10u8, 20, 30], |x| x / 10);
        assert_eq!(got, vec![1, 2, 3]);
    }
}
