//! Advance-time estimation (the future-work sketch in Section 6).
//!
//! "Since actually improving data quality may take some time, the user can
//! submit the query in advance … and statistics can be used to let the
//! user know 'how much time' in advance he needs to issue the query."
//!
//! [`RuntimeEstimator`] collects `(problem size, solve seconds)` samples
//! from past strategy-finding runs, fits a log–log least-squares line
//! (solver runtimes are polynomial in the data size, so the log–log
//! relationship is near-linear), and predicts the lead time for a future
//! problem size, with a configurable safety factor.

use std::time::Duration;

/// A power-law runtime estimator fit from observed samples.
#[derive(Debug, Clone, Default)]
pub struct RuntimeEstimator {
    /// `(ln size, ln seconds)` samples.
    samples: Vec<(f64, f64)>,
}

/// A fitted power law `seconds ≈ a · size^b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Multiplier `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
}

impl RuntimeEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        RuntimeEstimator::default()
    }

    /// Record one observed run. Sizes below 1 and non-positive durations
    /// are ignored (they carry no information on the log scale).
    pub fn record(&mut self, size: usize, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        if size >= 1 && secs > 0.0 {
            self.samples.push(((size as f64).ln(), secs.ln()));
        }
    }

    /// Number of usable samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Least-squares fit of `ln t = ln a + b · ln n`. Needs ≥ 2 samples
    /// with distinct sizes.
    pub fn fit(&self) -> Option<PowerLawFit> {
        if self.samples.len() < 2 {
            return None;
        }
        let n = self.samples.len() as f64;
        let sx: f64 = self.samples.iter().map(|s| s.0).sum();
        let sy: f64 = self.samples.iter().map(|s| s.1).sum();
        let sxx: f64 = self.samples.iter().map(|s| s.0 * s.0).sum();
        let sxy: f64 = self.samples.iter().map(|s| s.0 * s.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None; // all sizes identical
        }
        let b = (n * sxy - sx * sy) / denom;
        let ln_a = (sy - b * sx) / n;
        Some(PowerLawFit { a: ln_a.exp(), b })
    }

    /// Predicted solve time for a future problem size.
    pub fn predict(&self, size: usize) -> Option<Duration> {
        let fit = self.fit()?;
        let secs = fit.a * (size.max(1) as f64).powf(fit.b);
        Some(Duration::from_secs_f64(secs.clamp(0.0, 1e9)))
    }

    /// How far in advance a user should issue a query of the given size:
    /// the prediction inflated by `safety_factor` (e.g. `2.0` for 2×
    /// headroom).
    pub fn lead_time(&self, size: usize, safety_factor: f64) -> Option<Duration> {
        let p = self.predict(size)?;
        Some(Duration::from_secs_f64(
            (p.as_secs_f64() * safety_factor.max(1.0)).clamp(0.0, 1e9),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> Duration {
        Duration::from_secs_f64(s)
    }

    #[test]
    fn fits_exact_power_law() {
        // t = 0.001 · n^2
        let mut e = RuntimeEstimator::new();
        for n in [10usize, 100, 1000] {
            e.record(n, secs(0.001 * (n as f64).powi(2)));
        }
        let fit = e.fit().unwrap();
        assert!((fit.b - 2.0).abs() < 1e-9, "exponent {}", fit.b);
        assert!((fit.a - 0.001).abs() < 1e-9, "multiplier {}", fit.a);
        // 0.001 · (10⁴)² = 10⁵ seconds.
        let p = e.predict(10_000).unwrap();
        assert!((p.as_secs_f64() - 1e5).abs() < 1e-3);
    }

    #[test]
    fn fits_linear_runtimes() {
        let mut e = RuntimeEstimator::new();
        for n in [100usize, 1000, 10_000] {
            e.record(n, secs(n as f64 * 1e-4));
        }
        let fit = e.fit().unwrap();
        assert!((fit.b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn needs_two_distinct_sizes() {
        let mut e = RuntimeEstimator::new();
        assert!(e.fit().is_none());
        e.record(100, secs(1.0));
        assert!(e.fit().is_none());
        e.record(100, secs(1.1));
        assert!(e.fit().is_none(), "identical sizes cannot fix a slope");
        e.record(200, secs(2.0));
        assert!(e.fit().is_some());
    }

    #[test]
    fn ignores_degenerate_samples() {
        let mut e = RuntimeEstimator::new();
        e.record(0, secs(1.0));
        e.record(10, secs(0.0));
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn lead_time_applies_safety_factor() {
        let mut e = RuntimeEstimator::new();
        e.record(10, secs(1.0));
        e.record(100, secs(10.0));
        let plain = e.predict(1000).unwrap().as_secs_f64();
        let padded = e.lead_time(1000, 2.0).unwrap().as_secs_f64();
        assert!((padded - 2.0 * plain).abs() < 1e-9);
        // Factors below 1 are clamped up to 1 (never advise less time
        // than predicted).
        let clamped = e.lead_time(1000, 0.5).unwrap().as_secs_f64();
        assert!((clamped - plain).abs() < 1e-9);
    }
}
