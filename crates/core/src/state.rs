//! Incremental evaluation state shared by the solvers.

use crate::problem::ProblemInstance;
use crate::solution::Solution;

/// Mutable solver state: per-base grid positions, per-result confidences,
/// and the running satisfied-count and cost — all maintained incrementally
/// so one base-level change only re-evaluates the results it touches.
#[derive(Debug, Clone)]
pub struct EvalState<'p> {
    problem: &'p ProblemInstance,
    /// Grid steps above the initial confidence, per base.
    steps: Vec<u32>,
    /// Cached confidence level per base.
    levels: Vec<f64>,
    /// Cached cost contribution per base.
    costs: Vec<f64>,
    /// Cached confidence per result.
    confidences: Vec<f64>,
    satisfied: usize,
    total_cost: f64,
    /// Scratch buffer for confidence-function arguments.
    scratch: Vec<f64>,
    /// Count of confidence-function evaluations (for statistics).
    pub evals: u64,
}

impl<'p> EvalState<'p> {
    /// Fresh state: every base at its initial confidence.
    pub fn new(problem: &'p ProblemInstance) -> EvalState<'p> {
        Self::new_par(problem, &pcqe_par::Parallelism::sequential())
    }

    /// [`Self::new`] with the initial scoring of every result fanned out
    /// across worker threads. Byte-identical to the sequential
    /// construction for any policy: each result's confidence is a pure
    /// function of the (fixed) initial levels, and results are written
    /// back in index order.
    pub fn new_par(problem: &'p ProblemInstance, par: &pcqe_par::Parallelism) -> EvalState<'p> {
        let levels: Vec<f64> = problem.bases.iter().map(|b| b.initial).collect();
        let confidences = pcqe_par::map(par, &problem.results, |r| {
            let args: Vec<f64> = r.bases.iter().map(|&b| levels[b]).collect();
            r.conf.eval(&args)
        });
        let satisfied = confidences.iter().filter(|&&c| c > problem.beta).count();
        EvalState {
            problem,
            steps: vec![0; problem.bases.len()],
            levels,
            costs: vec![0.0; problem.bases.len()],
            evals: problem.results.len() as u64,
            confidences,
            satisfied,
            total_cost: 0.0,
            scratch: Vec::new(),
        }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &'p ProblemInstance {
        self.problem
    }

    /// Current confidence level of base `i`.
    pub fn level(&self, i: usize) -> f64 {
        self.levels[i]
    }

    /// Current grid steps of base `i`.
    pub fn steps_of(&self, i: usize) -> u32 {
        self.steps[i]
    }

    /// Current confidence of result `ri`.
    pub fn confidence(&self, ri: usize) -> f64 {
        self.confidences[ri]
    }

    /// Is result `ri` currently satisfied (confidence strictly above β)?
    pub fn is_satisfied(&self, ri: usize) -> bool {
        self.confidences[ri] > self.problem.beta
    }

    /// Number of satisfied results.
    pub fn satisfied_count(&self) -> usize {
        self.satisfied
    }

    /// Does the current state meet the problem's quota?
    pub fn meets_quota(&self) -> bool {
        self.satisfied >= self.problem.required
    }

    /// Total increment cost of the current state.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }

    fn eval_result(&mut self, ri: usize) -> f64 {
        let r = &self.problem.results[ri];
        self.scratch.clear();
        self.scratch.extend(r.bases.iter().map(|&b| self.levels[b]));
        self.evals += 1;
        r.conf.eval(&self.scratch)
    }

    /// Set base `i` to `steps` grid steps, updating affected results,
    /// satisfied count, and cost. Returns the change in satisfied count.
    pub fn set_steps(&mut self, i: usize, steps: u32) -> i64 {
        let steps = steps.min(self.problem.max_steps(i));
        if steps == self.steps[i] {
            return 0;
        }
        self.steps[i] = steps;
        self.levels[i] = self.problem.level_at(i, steps);
        let new_cost = self.problem.cost_at(i, steps);
        self.total_cost += new_cost - self.costs[i];
        self.costs[i] = new_cost;
        let mut delta = 0i64;
        let affected = self.problem.results_of_base(i).to_vec();
        for ri in affected {
            let was = self.confidences[ri] > self.problem.beta;
            let c = self.eval_result(ri);
            self.confidences[ri] = c;
            let now = c > self.problem.beta;
            match (was, now) {
                (false, true) => {
                    self.satisfied += 1;
                    delta += 1;
                }
                (true, false) => {
                    self.satisfied -= 1;
                    delta -= 1;
                }
                _ => {}
            }
        }
        delta
    }

    /// Raise base `i` by one δ step (no-op at max). Returns whether a step
    /// was taken.
    pub fn step_up(&mut self, i: usize) -> bool {
        let s = self.steps[i];
        if s >= self.problem.max_steps(i) {
            return false;
        }
        self.set_steps(i, s + 1);
        true
    }

    /// Lower base `i` by one δ step (no-op at initial). Returns whether a
    /// step was taken.
    pub fn step_down(&mut self, i: usize) -> bool {
        let s = self.steps[i];
        if s == 0 {
            return false;
        }
        self.set_steps(i, s - 1);
        true
    }

    /// Marginal cost of the next δ step on base `i` (∞ at max).
    pub fn next_step_cost(&self, i: usize) -> f64 {
        let s = self.steps[i];
        if s >= self.problem.max_steps(i) {
            return f64::INFINITY;
        }
        self.problem.cost_at(i, s + 1) - self.problem.cost_at(i, s)
    }

    /// Sum of confidence gains over `i`'s results if it took one δ step —
    /// without committing the step. `useful_only` restricts the sum to
    /// currently-unsatisfied results (the gain that actually moves the
    /// quota).
    pub fn probe_step_gain(&mut self, i: usize, useful_only: bool) -> f64 {
        let s = self.steps[i];
        if s >= self.problem.max_steps(i) {
            return 0.0;
        }
        let old_level = self.levels[i];
        self.levels[i] = self.problem.level_at(i, s + 1);
        let mut gain = 0.0;
        let beta = self.problem.beta;
        for idx in 0..self.problem.results_of_base(i).len() {
            let ri = self.problem.results_of_base(i)[idx];
            if useful_only && self.confidences[ri] > beta {
                continue;
            }
            let c = {
                let r = &self.problem.results[ri];
                self.scratch.clear();
                self.scratch.extend(r.bases.iter().map(|&b| self.levels[b]));
                self.evals += 1;
                r.conf.eval(&self.scratch)
            };
            gain += (c - self.confidences[ri]).max(0.0);
        }
        self.levels[i] = old_level;
        gain
    }

    /// Read-only [`Self::probe_step_gain`]: the same gain (bit-for-bit —
    /// the probed level is substituted into the argument vector exactly
    /// where the mutating probe would have written it) without touching
    /// `self`, so many bases can be probed concurrently from shared
    /// references. Returns `(gain, evaluations)`; the caller is
    /// responsible for adding the evaluation count to [`Self::evals`].
    pub fn probe_step_gain_readonly(&self, i: usize, useful_only: bool) -> (f64, u64) {
        let s = self.steps[i];
        if s >= self.problem.max_steps(i) {
            return (0.0, 0);
        }
        let stepped = self.problem.level_at(i, s + 1);
        let beta = self.problem.beta;
        let mut gain = 0.0;
        let mut evals = 0u64;
        let mut args: Vec<f64> = Vec::new();
        for &ri in self.problem.results_of_base(i) {
            if useful_only && self.confidences[ri] > beta {
                continue;
            }
            let r = &self.problem.results[ri];
            args.clear();
            args.extend(
                r.bases
                    .iter()
                    .map(|&b| if b == i { stepped } else { self.levels[b] }),
            );
            evals += 1;
            let c = r.conf.eval(&args);
            gain += (c - self.confidences[ri]).max(0.0);
        }
        (gain, evals)
    }

    /// Current confidences of the given results, in order.
    pub fn confidences_snapshot(&self, results: &[usize]) -> Vec<f64> {
        results.iter().map(|&ri| self.confidences[ri]).collect()
    }

    /// Snapshot the current state as a [`Solution`].
    pub fn to_solution(&self) -> Solution {
        let satisfied = (0..self.problem.results.len())
            .filter(|&ri| self.confidences[ri] > self.problem.beta)
            .collect();
        Solution {
            levels: self.levels.clone(),
            cost: self.total_cost,
            satisfied,
        }
    }

    /// Count results that would be satisfied if every base in `rest` were
    /// raised to its maximum while others keep their current level — the
    /// optimistic bound used by heuristic H3.
    pub fn optimistic_satisfied(&mut self, rest: &[usize]) -> usize {
        let saved: Vec<(usize, f64)> = rest.iter().map(|&i| (i, self.levels[i])).collect();
        for &i in rest {
            self.levels[i] = self.problem.bases[i].max;
        }
        let mut count = 0;
        for ri in 0..self.problem.results.len() {
            if self.confidences[ri] > self.problem.beta {
                count += 1;
                continue;
            }
            let c = {
                let r = &self.problem.results[ri];
                self.scratch.clear();
                self.scratch.extend(r.bases.iter().map(|&b| self.levels[b]));
                self.evals += 1;
                r.conf.eval(&self.scratch)
            };
            if c > self.problem.beta {
                count += 1;
            }
        }
        for (i, l) in saved {
            self.levels[i] = l;
        }
        count
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;
    use pcqe_lineage::Lineage;

    fn two_result_problem() -> ProblemInstance {
        // r0 = t0 ∨ t1, r1 = t1 ∧ t2; β = 0.5, δ = 0.1.
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.1, CostFn::linear(10.0).unwrap());
        b.base(1, 0.1, CostFn::linear(20.0).unwrap());
        b.base(2, 0.1, CostFn::linear(30.0).unwrap());
        b.result_from_lineage(&Lineage::or(vec![Lineage::var(0), Lineage::var(1)]))
            .unwrap();
        b.result_from_lineage(&Lineage::and(vec![Lineage::var(1), Lineage::var(2)]))
            .unwrap();
        b.require(1).build().unwrap()
    }

    #[test]
    fn initial_state_matches_direct_evaluation() {
        let p = two_result_problem();
        let s = EvalState::new(&p);
        assert!((s.confidence(0) - (0.1 + 0.1 - 0.01)).abs() < 1e-12);
        assert!((s.confidence(1) - 0.01).abs() < 1e-12);
        assert_eq!(s.satisfied_count(), 0);
        assert_eq!(s.total_cost(), 0.0);
    }

    #[test]
    fn steps_update_confidences_and_cost_incrementally() {
        let p = two_result_problem();
        let mut s = EvalState::new(&p);
        s.set_steps(1, 5); // t1: 0.1 → 0.6
        assert!((s.level(1) - 0.6).abs() < 1e-12);
        assert!((s.total_cost() - 20.0 * 0.5).abs() < 1e-9);
        // r0 = 0.1 + 0.6 - 0.06 = 0.64 > 0.5 → satisfied.
        assert!(s.is_satisfied(0));
        assert!(!s.is_satisfied(1));
        assert_eq!(s.satisfied_count(), 1);
        assert!(s.meets_quota());
        // Lower back down and everything reverts.
        s.set_steps(1, 0);
        assert_eq!(s.satisfied_count(), 0);
        assert!(s.total_cost().abs() < 1e-12);
    }

    #[test]
    fn step_up_down_respect_bounds() {
        let p = two_result_problem();
        let mut s = EvalState::new(&p);
        assert!(!s.step_down(0));
        for _ in 0..20 {
            s.step_up(0);
        }
        assert!((s.level(0) - 1.0).abs() < 1e-12);
        assert!(!s.step_up(0));
        assert_eq!(s.next_step_cost(0), f64::INFINITY);
    }

    #[test]
    fn probe_gain_does_not_mutate() {
        let p = two_result_problem();
        let mut s = EvalState::new(&p);
        let before = s.to_solution();
        let gain = s.probe_step_gain(1, false);
        // t1 appears in both results; one step raises r0 by (1-0.1)·0.1 and
        // r1 by 0.1·0.1.
        assert!((gain - (0.9 * 0.1 + 0.1 * 0.1)).abs() < 1e-9);
        assert_eq!(s.to_solution(), before);
        // Useful-only gain skips satisfied results.
        s.set_steps(0, 9); // r0 satisfied via t0
        let useful = s.probe_step_gain(1, true);
        assert!((useful - 0.1 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn readonly_probe_matches_mutating_probe_bitwise() {
        let p = two_result_problem();
        let mut s = EvalState::new(&p);
        s.set_steps(0, 3);
        for i in 0..3 {
            for useful in [false, true] {
                let mutating = s.probe_step_gain(i, useful);
                let (readonly, _) = s.probe_step_gain_readonly(i, useful);
                assert_eq!(
                    mutating.to_bits(),
                    readonly.to_bits(),
                    "base {i} useful {useful}"
                );
            }
        }
    }

    #[test]
    fn parallel_construction_matches_sequential_bitwise() {
        let p = two_result_problem();
        let seq = EvalState::new(&p);
        let par = EvalState::new_par(
            &p,
            &pcqe_par::Parallelism {
                worker_threads: Some(8),
                parallel_threshold: 1,
            },
        );
        for ri in 0..p.results.len() {
            assert_eq!(seq.confidence(ri).to_bits(), par.confidence(ri).to_bits());
        }
        assert_eq!(seq.satisfied_count(), par.satisfied_count());
        assert_eq!(seq.evals, par.evals);
    }

    #[test]
    fn optimistic_satisfied_bounds_from_above() {
        let p = two_result_problem();
        let mut s = EvalState::new(&p);
        // With every base at max, both results hit 1.0 > β.
        assert_eq!(s.optimistic_satisfied(&[0, 1, 2]), 2);
        // With only t0 at max, r1 stays at 0.01.
        assert_eq!(s.optimistic_satisfied(&[0]), 1);
        // Probe must not leave residue.
        assert_eq!(s.satisfied_count(), 0);
        assert!((s.level(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn to_solution_validates() {
        let p = two_result_problem();
        let mut s = EvalState::new(&p);
        s.set_steps(0, 5);
        let sol = s.to_solution();
        sol.validate(&p).unwrap();
    }
}
