//! The heuristic branch-and-bound algorithm (Section 4.1).
//!
//! A depth-first search assigns each base tuple a grid confidence value in
//! turn (Figure 3). Pruning devices, each independently toggleable so that
//! Figure 11(a)/(d) can be reproduced:
//!
//! * **bound** (always on — the paper's "Naive" keeps it): abandon a value
//!   branch once the accumulated cost reaches the best known cost;
//! * **H1** — visit base tuples in *descending* order of `costβ`, the
//!   minimum cost at which raising the tuple alone pushes some result over
//!   the threshold (tuples that cannot do so get the penalised
//!   `cost · β / F_max` value);
//! * **H2** — once every result touching the current tuple is satisfied,
//!   skip its remaining (higher, costlier) values;
//! * **H3** — if even raising all remaining tuples to their maximum cannot
//!   meet the quota, abandon the subtree;
//! * **H4** — if the current cost plus the cheapest possible single δ step
//!   on any remaining tuple already reaches the best cost, abandon the
//!   subtree.
//!
//! With no pruning beyond the bound the search is exact but exponential
//! (`O(d^k)`); with a greedy seed (Figure 11(d)) the initial upper bound is
//! tight from the start.

use crate::clock::{Deadline, Stopwatch};
use crate::error::CoreError;
use crate::ord::OrdF64;
use crate::problem::ProblemInstance;
use crate::solution::{Solution, SolveOutcome};
use crate::state::EvalState;
use crate::Result;
use std::cmp::Reverse;
use std::time::Duration;

/// Options for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct HeuristicOptions {
    /// H1: costβ-descending base ordering.
    pub h1_ordering: bool,
    /// H2: prune right siblings when all touched results pass.
    pub h2_sibling_prune: bool,
    /// H3: prune when the optimistic completion misses the quota.
    pub h3_optimistic_prune: bool,
    /// H4: prune on the cheapest-remaining-step lower bound.
    pub h4_cost_bound: bool,
    /// Seed solution (e.g. from greedy) supplying the initial upper bound.
    pub seed: Option<Solution>,
    /// Abort after this many search nodes (`None` = unlimited).
    pub node_limit: Option<u64>,
    /// Abort after this much wall-clock time (`None` = unlimited).
    pub time_limit: Option<Duration>,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions::all()
    }
}

impl HeuristicOptions {
    /// All four heuristics enabled (the paper's "All").
    pub fn all() -> HeuristicOptions {
        HeuristicOptions {
            h1_ordering: true,
            h2_sibling_prune: true,
            h3_optimistic_prune: true,
            h4_cost_bound: true,
            seed: None,
            node_limit: None,
            time_limit: None,
        }
    }

    /// Only the cost upper bound (the paper's "Naive").
    pub fn naive() -> HeuristicOptions {
        HeuristicOptions {
            h1_ordering: false,
            h2_sibling_prune: false,
            h3_optimistic_prune: false,
            h4_cost_bound: false,
            seed: None,
            node_limit: None,
            time_limit: None,
        }
    }

    /// Naive plus exactly one heuristic, by number 1–4 (for Figure 11(a)).
    pub fn only(heuristic: u8) -> HeuristicOptions {
        let mut o = HeuristicOptions::naive();
        match heuristic {
            1 => o.h1_ordering = true,
            2 => o.h2_sibling_prune = true,
            3 => o.h3_optimistic_prune = true,
            4 => o.h4_cost_bound = true,
            _ => panic!("heuristic number must be 1..=4"),
        }
        o
    }

    /// Attach a seed solution as the initial upper bound (Figure 11(d)).
    pub fn with_seed(mut self, seed: Solution) -> HeuristicOptions {
        self.seed = Some(seed);
        self
    }
}

/// Statistics from a branch-and-bound run.
#[derive(Debug, Clone, Default)]
pub struct HeuristicStats {
    /// Search-tree nodes visited.
    pub nodes: u64,
    /// Times the incumbent solution improved.
    pub incumbent_updates: u64,
    /// Value branches cut by the cost bound.
    pub pruned_bound: u64,
    /// Sibling sets cut by H2.
    pub pruned_h2: u64,
    /// Subtrees cut by H3.
    pub pruned_h3: u64,
    /// Subtrees cut by H4.
    pub pruned_h4: u64,
    /// Confidence-function evaluations.
    pub evals: u64,
    /// Whether the search ran to completion (false on node/time limit).
    pub complete: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Solve exactly (given enough budget) with branch-and-bound.
pub fn solve(
    problem: &ProblemInstance,
    options: &HeuristicOptions,
) -> Result<SolveOutcome<HeuristicStats>> {
    let watch = Stopwatch::start();
    let mut state = EvalState::new(problem);
    crate::greedy::check_feasible(&mut state)?;

    let order: Vec<usize> = if options.h1_ordering {
        cost_beta_order(problem, &mut state)
    } else {
        (0..problem.bases.len()).collect()
    };

    // Precompute suffix minima of the cheapest-possible δ step, for H4.
    let mut suffix_min_step = vec![f64::INFINITY; order.len() + 1];
    for d in (0..order.len()).rev() {
        suffix_min_step[d] = suffix_min_step[d + 1].min(problem.min_step_cost(order[d]));
    }

    let mut search = Search {
        problem,
        options,
        order,
        suffix_min_step,
        best_cost: options
            .seed
            .as_ref()
            .map(|s| s.cost)
            .unwrap_or(f64::INFINITY),
        best: options.seed.clone(),
        stats: HeuristicStats {
            complete: true,
            ..HeuristicStats::default()
        },
        deadline: Deadline::after(options.time_limit),
    };
    search.dfs(&mut state, 0);
    search.stats.evals = state.evals;
    search.stats.elapsed = watch.elapsed();

    match search.best {
        Some(solution) => Ok(SolveOutcome {
            solution,
            stats: search.stats,
        }),
        None => Err(CoreError::GaveUp(format!(
            "no solution within limits after {} nodes",
            search.stats.nodes
        ))),
    }
}

struct Search<'p, 'o> {
    problem: &'p ProblemInstance,
    options: &'o HeuristicOptions,
    order: Vec<usize>,
    suffix_min_step: Vec<f64>,
    best_cost: f64,
    best: Option<Solution>,
    stats: HeuristicStats,
    deadline: Deadline,
}

impl Search<'_, '_> {
    fn out_of_budget(&mut self) -> bool {
        if let Some(limit) = self.options.node_limit {
            if self.stats.nodes >= limit {
                self.stats.complete = false;
                return true;
            }
        }
        // Check the clock only occasionally; reading it is not free. An
        // unbounded deadline short-circuits without touching the clock.
        if self.stats.nodes.is_multiple_of(1024) && self.deadline.expired() {
            self.stats.complete = false;
            return true;
        }
        false
    }

    fn dfs(&mut self, state: &mut EvalState<'_>, depth: usize) {
        self.stats.nodes += 1;
        if self.out_of_budget() {
            return;
        }
        if state.meets_quota() {
            // Deeper assignments only add cost; record and backtrack.
            if state.total_cost() < self.best_cost {
                self.best_cost = state.total_cost();
                self.best = Some(state.to_solution());
                self.stats.incumbent_updates += 1;
            }
            return;
        }
        if depth == self.order.len() {
            return;
        }
        if self.options.h3_optimistic_prune {
            let rest = &self.order[depth..];
            if state.optimistic_satisfied(rest) < self.problem.required {
                self.stats.pruned_h3 += 1;
                return;
            }
        }
        if self.options.h4_cost_bound
            && state.total_cost() + self.suffix_min_step[depth] >= self.best_cost
        {
            // The quota is unmet, so any solution below must raise at
            // least one remaining tuple by at least one δ step.
            self.stats.pruned_h4 += 1;
            return;
        }
        let base = self.order[depth];
        let max_steps = self.problem.max_steps(base);
        for steps in 0..=max_steps {
            state.set_steps(base, steps);
            if state.total_cost() >= self.best_cost {
                // Higher values of this base only cost more.
                self.stats.pruned_bound += 1;
                break;
            }
            self.dfs(state, depth + 1);
            if self.options.h2_sibling_prune
                && self
                    .problem
                    .results_of_base(base)
                    .iter()
                    .all(|&ri| state.is_satisfied(ri))
            {
                // Raising this base further only helps results that
                // already pass — the optimum is not to the right.
                self.stats.pruned_h2 += 1;
                break;
            }
        }
        state.set_steps(base, 0);
    }
}

/// H1: order base tuples by descending `costβ` — the minimum cost at which
/// raising the tuple *alone* lifts at least one of its results over β.
fn cost_beta_order(problem: &ProblemInstance, state: &mut EvalState<'_>) -> Vec<usize> {
    let mut keyed: Vec<(f64, usize)> = (0..problem.bases.len())
        .map(|i| (cost_beta(problem, state, i), i))
        .collect();
    // Descending by costβ; ties keep index order for determinism.
    keyed.sort_by_key(|&(c, i)| (Reverse(OrdF64(c)), i));
    keyed.into_iter().map(|(_, i)| i).collect()
}

fn cost_beta(problem: &ProblemInstance, state: &mut EvalState<'_>, i: usize) -> f64 {
    let max_steps = problem.max_steps(i);
    let mut best = f64::INFINITY;
    let mut best_unreachable = f64::INFINITY;
    for &ri in problem.results_of_base(i) {
        let mut reached = None;
        let mut f_max = 0.0;
        for s in 1..=max_steps {
            state.set_steps(i, s);
            let f = state.confidence(ri);
            f_max = f;
            if f > problem.beta {
                reached = Some(problem.cost_at(i, s));
                break;
            }
        }
        state.set_steps(i, 0);
        match reached {
            Some(c) => best = best.min(c),
            None => {
                // Paper: adjust to cost / (F_max / β) when even the maximum
                // cannot reach β.
                if f_max > 0.0 {
                    let adjusted = problem.cost_at(i, max_steps) / (f_max / problem.beta);
                    best_unreachable = best_unreachable.min(adjusted);
                }
            }
        }
    }
    if best.is_finite() {
        best
    } else {
        best_unreachable
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::greedy::{self, GreedyOptions};
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;
    use pcqe_lineage::Lineage;

    fn linear(rate: f64) -> CostFn {
        CostFn::linear(rate).unwrap()
    }

    /// A small instance with a known optimum: the paper's running example.
    fn paper_instance() -> ProblemInstance {
        let mut b = ProblemBuilder::new(0.06, 0.1);
        b.base(2, 0.3, linear(1000.0));
        b.base(3, 0.4, linear(100.0));
        b.base(13, 0.1, linear(500.0));
        b.result_from_lineage(&Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]))
        .unwrap();
        b.require(1).build().unwrap()
    }

    #[test]
    fn finds_the_paper_optimum() {
        let p = paper_instance();
        let out = solve(&p, &HeuristicOptions::all()).unwrap();
        out.solution.validate(&p).unwrap();
        // Optimal: raise tuple 03 by one step (0.4 → 0.5), cost 10,
        // giving p38 = 0.065 > 0.06.
        assert!((out.solution.cost - 10.0).abs() < 1e-9);
        assert!((out.solution.levels[1] - 0.5).abs() < 1e-9);
        assert!(out.stats.complete);
    }

    #[test]
    fn every_pruning_config_agrees_on_the_optimum() {
        let p = paper_instance();
        let reference = solve(&p, &HeuristicOptions::naive()).unwrap();
        for config in [
            HeuristicOptions::only(1),
            HeuristicOptions::only(2),
            HeuristicOptions::only(3),
            HeuristicOptions::only(4),
            HeuristicOptions::all(),
        ] {
            let out = solve(&p, &config).unwrap();
            assert!(
                (out.solution.cost - reference.solution.cost).abs() < 1e-9,
                "config {config:?} returned {} vs {}",
                out.solution.cost,
                reference.solution.cost
            );
        }
    }

    #[test]
    fn pruning_reduces_nodes() {
        let p = harder_instance();
        let naive = solve(&p, &HeuristicOptions::naive()).unwrap();
        let all = solve(&p, &HeuristicOptions::all()).unwrap();
        assert!((naive.solution.cost - all.solution.cost).abs() < 1e-9);
        assert!(
            all.stats.nodes < naive.stats.nodes,
            "all-heuristics {} nodes vs naive {}",
            all.stats.nodes,
            naive.stats.nodes
        );
    }

    /// 6 bases, 4 overlapping results, quota 3 — small enough for naive,
    /// big enough that pruning matters.
    fn harder_instance() -> ProblemInstance {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        let rates = [10.0, 40.0, 25.0, 60.0, 15.0, 35.0];
        for (i, r) in rates.iter().enumerate() {
            b.base(i as u64, 0.1, linear(*r));
        }
        for w in 0..4u64 {
            b.result_from_lineage(&Lineage::or(vec![
                Lineage::var(w),
                Lineage::and(vec![Lineage::var(w + 1), Lineage::var(w + 2)]),
            ]))
            .unwrap();
        }
        b.require(3).build().unwrap()
    }

    #[test]
    fn greedy_seed_keeps_optimality_and_shrinks_search() {
        let p = harder_instance();
        let seed = greedy::solve(&p, &GreedyOptions::default())
            .unwrap()
            .solution;
        let unseeded = solve(&p, &HeuristicOptions::all()).unwrap();
        let seeded = solve(&p, &HeuristicOptions::all().with_seed(seed)).unwrap();
        assert!((seeded.solution.cost - unseeded.solution.cost).abs() < 1e-9);
        assert!(seeded.stats.nodes <= unseeded.stats.nodes);
        seeded.solution.validate(&p).unwrap();
    }

    #[test]
    fn optimum_is_never_above_greedy() {
        let p = harder_instance();
        let g = greedy::solve(&p, &GreedyOptions::default()).unwrap();
        let h = solve(&p, &HeuristicOptions::all()).unwrap();
        assert!(h.solution.cost <= g.solution.cost + 1e-9);
    }

    #[test]
    fn node_limit_reports_incomplete() {
        let p = harder_instance();
        let opts = HeuristicOptions {
            node_limit: Some(3),
            ..HeuristicOptions::naive()
        };
        // With almost no budget and no seed, the search may fail to find
        // any solution — that must surface as GaveUp, not a wrong answer.
        match solve(&p, &opts) {
            Ok(out) => assert!(!out.stats.complete),
            Err(CoreError::GaveUp(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn time_limit_terminates_incomplete() {
        let p = harder_instance();
        let opts = HeuristicOptions {
            time_limit: Some(Duration::from_nanos(1)),
            ..HeuristicOptions::naive()
        };
        match solve(&p, &opts) {
            Ok(out) => assert!(!out.stats.complete, "a 1ns budget cannot finish"),
            Err(CoreError::GaveUp(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
        // With a seed, the search still returns a valid answer.
        let seed = greedy::solve(&p, &GreedyOptions::default())
            .unwrap()
            .solution;
        let opts = HeuristicOptions {
            time_limit: Some(Duration::from_nanos(1)),
            ..HeuristicOptions::all().with_seed(seed)
        };
        let out = solve(&p, &opts).unwrap();
        out.solution.validate(&p).unwrap();
    }

    #[test]
    fn seed_survives_when_budget_is_tiny() {
        let p = harder_instance();
        let seed = greedy::solve(&p, &GreedyOptions::default())
            .unwrap()
            .solution;
        let opts = HeuristicOptions {
            node_limit: Some(1),
            ..HeuristicOptions::all().with_seed(seed.clone())
        };
        let out = solve(&p, &opts).unwrap();
        assert!(out.solution.cost <= seed.cost + 1e-9);
    }

    #[test]
    fn zero_required_is_trivially_free() {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.1, linear(10.0));
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        let p = b.require(0).build().unwrap();
        let out = solve(&p, &HeuristicOptions::all()).unwrap();
        assert_eq!(out.solution.cost, 0.0);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut b = ProblemBuilder::new(0.9, 0.1);
        b.base_capped(0, 0.1, 0.3, linear(10.0));
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        let p = b.require(1).build().unwrap();
        assert!(matches!(
            solve(&p, &HeuristicOptions::all()),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn h1_uses_adjusted_cost_for_capped_tuples() {
        // Base 1 can never reach β alone (capped at 0.4), so its costβ is
        // the paper's adjusted value cost·β/F_max = 30·(0.5/0.4) = 37.5,
        // larger than base 0's direct costβ of 10·(0.6−0.1) = 5 — so H1
        // (descending costβ) places base 1 first.
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.1, linear(10.0));
        b.base_capped(1, 0.1, 0.4, linear(100.0));
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        b.result_from_lineage(&Lineage::var(1)).unwrap();
        let p = b.require(1).build().unwrap();
        let mut state = EvalState::new(&p);
        assert!((cost_beta(&p, &mut state, 0) - 5.0).abs() < 1e-9);
        assert!((cost_beta(&p, &mut state, 1) - 37.5).abs() < 1e-9);
        let order = cost_beta_order(&p, &mut state);
        assert_eq!(order, vec![1, 0]);
    }
}
