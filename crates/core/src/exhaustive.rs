//! Exhaustive enumeration baseline.
//!
//! Enumerates *every* grid assignment (`O(d^k)`) and keeps the cheapest
//! one meeting the quota. Useless beyond a handful of base tuples, but it
//! is the ground truth the branch-and-bound search is validated against,
//! and the honest "optimal" line for tiny evaluation points.

use crate::clock::Stopwatch;
use crate::error::CoreError;
use crate::problem::ProblemInstance;
use crate::solution::{Solution, SolveOutcome};
use crate::Result;
use std::time::Duration;

/// Statistics from an exhaustive run.
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveStats {
    /// Grid assignments evaluated.
    pub assignments: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Options: a safety cap on the number of assignments.
#[derive(Debug, Clone)]
pub struct ExhaustiveOptions {
    /// Refuse problems whose grid exceeds this many assignments.
    pub max_assignments: u64,
}

impl Default for ExhaustiveOptions {
    fn default() -> Self {
        ExhaustiveOptions {
            max_assignments: 50_000_000,
        }
    }
}

/// Enumerate the whole grid, returning the true optimum.
pub fn solve(
    problem: &ProblemInstance,
    options: &ExhaustiveOptions,
) -> Result<SolveOutcome<ExhaustiveStats>> {
    let watch = Stopwatch::start();
    let k = problem.bases.len();
    let steps: Vec<u32> = (0..k).map(|i| problem.max_steps(i)).collect();
    // Refuse combinatorially hopeless inputs up front.
    let mut total: f64 = 1.0;
    for &s in &steps {
        total *= (s + 1) as f64;
        if total > options.max_assignments as f64 {
            return Err(CoreError::GaveUp(format!(
                "grid exceeds the {}-assignment cap",
                options.max_assignments
            )));
        }
    }

    let mut stats = ExhaustiveStats::default();
    let mut assignment = vec![0u32; k];
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut probs: Vec<f64> = Vec::new();
    loop {
        stats.assignments += 1;
        let levels: Vec<f64> = (0..k).map(|i| problem.level_at(i, assignment[i])).collect();
        let mut satisfied = 0;
        for r in &problem.results {
            probs.clear();
            probs.extend(r.bases.iter().map(|&b| levels[b]));
            if r.conf.eval(&probs) > problem.beta {
                satisfied += 1;
            }
        }
        if satisfied >= problem.required {
            let cost: f64 = (0..k).map(|i| problem.cost_at(i, assignment[i])).sum();
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, levels));
            }
        }
        // Odometer.
        let mut d = 0;
        loop {
            if d == k {
                stats.elapsed = watch.elapsed();
                let Some((cost, levels)) = best else {
                    return Err(CoreError::Infeasible {
                        achievable: 0,
                        required: problem.required,
                    });
                };
                let satisfied: Vec<usize> = problem
                    .results
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        let probs: Vec<f64> = r.bases.iter().map(|&b| levels[b]).collect();
                        r.conf.eval(&probs) > problem.beta
                    })
                    .map(|(i, _)| i)
                    .collect();
                return Ok(SolveOutcome {
                    solution: Solution {
                        levels,
                        cost,
                        satisfied,
                    },
                    stats,
                });
            }
            if assignment[d] < steps[d] {
                assignment[d] += 1;
                break;
            }
            assignment[d] = 0;
            d += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{self, HeuristicOptions};
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;
    use pcqe_lineage::Lineage;

    fn tiny() -> ProblemInstance {
        let mut b = ProblemBuilder::new(0.5, 0.25);
        b.base(0, 0.0, CostFn::linear(10.0).unwrap());
        b.base(1, 0.0, CostFn::linear(3.0).unwrap());
        b.base(2, 0.0, CostFn::linear(7.0).unwrap());
        b.result_from_lineage(&Lineage::or(vec![Lineage::var(0), Lineage::var(1)]))
            .unwrap();
        b.result_from_lineage(&Lineage::and(vec![Lineage::var(1), Lineage::var(2)]))
            .unwrap();
        b.require(1).build().unwrap()
    }

    #[test]
    fn agrees_with_branch_and_bound() {
        let p = tiny();
        let e = solve(&p, &ExhaustiveOptions::default()).unwrap();
        e.solution.validate(&p).unwrap();
        let h = heuristic::solve(&p, &HeuristicOptions::all()).unwrap();
        assert!((e.solution.cost - h.solution.cost).abs() < 1e-9);
        // Cheapest fix: raise t1 to 0.75 (> β via the OR), cost 3·0.75.
        assert!((e.solution.cost - 2.25).abs() < 1e-9);
        assert_eq!(e.stats.assignments, 125, "5^3 grid fully enumerated");
    }

    #[test]
    fn grid_cap_is_enforced() {
        let p = tiny();
        assert!(matches!(
            solve(
                &p,
                &ExhaustiveOptions {
                    max_assignments: 10
                }
            ),
            Err(CoreError::GaveUp(_))
        ));
    }

    #[test]
    fn infeasible_reports() {
        let mut b = ProblemBuilder::new(0.9, 0.25);
        b.base_capped(0, 0.0, 0.5, CostFn::linear(1.0).unwrap());
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        let p = b.require(1).build().unwrap();
        assert!(matches!(
            solve(&p, &ExhaustiveOptions::default()),
            Err(CoreError::Infeasible { .. })
        ));
    }
}
