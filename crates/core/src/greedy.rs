//! The two-phase greedy algorithm (Section 4.2, Figure 6).
//!
//! Phase 1 repeatedly raises the base tuple with the highest
//! `gain* = Σ_λ ΔF_λ / cost` by one δ step until enough results exceed the
//! threshold. Phase 2 walks the raised tuples in ascending order of their
//! latest `gain*` and rolls increments back wherever the quota survives —
//! the paper measured this refinement to cut cost by more than 30 % at
//! negligible extra time (Figure 11(b)/(e)).

use crate::clock::Stopwatch;
use crate::error::CoreError;
use crate::ord::OrdF64;
use crate::problem::ProblemInstance;
use crate::solution::SolveOutcome;
use crate::state::EvalState;
use crate::Result;
use std::time::Duration;

/// How `gain*` sums confidence increments over affected results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GainMode {
    /// Sum ΔF only over results still at or below the threshold — the
    /// increment that actually moves the quota. Default.
    #[default]
    Useful,
    /// Sum ΔF over every affected result (the literal Equation 2).
    Raw,
}

/// Options for the greedy solver.
#[derive(Debug, Clone)]
pub struct GreedyOptions {
    /// Run the roll-back refinement (phase 2). On by default; Figure 11(e)
    /// is the ablation.
    pub two_phase: bool,
    /// Gain definition.
    pub gain: GainMode,
    /// Safety cap on phase-1 iterations.
    pub max_iterations: u64,
    /// Maintain gains in a lazy max-heap, recomputing only the bases whose
    /// gain a step can actually change, instead of the paper's full
    /// `O(k)` rescan per iteration. Picks the same tuples (ties broken by
    /// index in both modes); an engineering extension beyond the paper,
    /// off by default so the figures reproduce the published complexity.
    pub incremental: bool,
    /// Fan the per-iteration gain rescan (and the initial scoring of every
    /// result) out across worker threads. Picks the same tuples at the
    /// same costs bit-for-bit — the scan is read-only and the reduction
    /// replays the sequential tie-breaking — so this only changes speed.
    /// Defaults to sequential.
    pub parallelism: pcqe_par::Parallelism,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            two_phase: true,
            gain: GainMode::Useful,
            max_iterations: 50_000_000,
            incremental: false,
            parallelism: pcqe_par::Parallelism::sequential(),
        }
    }
}

impl GreedyOptions {
    /// The one-phase variant (no roll-back), for the Figure 11(b)/(e)
    /// comparison.
    pub fn one_phase() -> GreedyOptions {
        GreedyOptions {
            two_phase: false,
            ..GreedyOptions::default()
        }
    }

    /// The incremental (lazy-heap) variant.
    pub fn incremental() -> GreedyOptions {
        GreedyOptions {
            incremental: true,
            ..GreedyOptions::default()
        }
    }
}

/// Statistics reported by the greedy solver.
#[derive(Debug, Clone, Default)]
pub struct GreedyStats {
    /// Phase-1 increment steps taken.
    pub iterations: u64,
    /// Phase-2 roll-back steps kept.
    pub reductions: u64,
    /// Confidence-function evaluations.
    pub evals: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// One parallel probe record per base tuple: `(step cost,
/// touches-an-unsatisfied-result, gain numerator, F-evaluations)`.
/// `None` marks a base already at its maximum confidence.
type ProbeRecord = Option<(f64, bool, f64, u64)>;

/// Solve with the two-phase greedy algorithm.
pub fn solve(
    problem: &ProblemInstance,
    options: &GreedyOptions,
) -> Result<SolveOutcome<GreedyStats>> {
    let watch = Stopwatch::start();
    let mut state = EvalState::new_par(problem, &options.parallelism);
    check_feasible(&mut state)?;
    let mut stats = GreedyStats::default();

    // Phase 1: aggressive increments.
    // `last_gain[i]` remembers the gain* value at the most recent step on
    // base i; phase 2 sorts by it (Figure 6, line 13).
    let mut last_gain: Vec<f64> = vec![f64::NAN; problem.bases.len()];
    let mut raised: Vec<usize> = Vec::new();
    phase1(&mut state, options, &mut stats, &mut last_gain, &mut raised)?;

    // Phase 2: roll back unnecessary increments, cheapest gain first.
    if options.two_phase {
        raised.sort_by_key(|&a| (OrdF64(last_gain[a]), a));
        stats.reductions = roll_back(&mut state, &raised);
    }

    stats.evals = state.evals;
    stats.elapsed = watch.elapsed();
    let solution = state.to_solution();
    Ok(SolveOutcome { solution, stats })
}

/// Phase 1 of the greedy algorithm, operating on an arbitrary starting
/// state (divide-and-conquer reuses this for its top-up pass).
pub(crate) fn phase1(
    state: &mut EvalState<'_>,
    options: &GreedyOptions,
    stats: &mut GreedyStats,
    last_gain: &mut [f64],
    raised: &mut Vec<usize>,
) -> Result<()> {
    if options.incremental {
        return phase1_incremental(state, options, stats, last_gain, raised);
    }
    let problem = state.problem();
    let useful = options.gain == GainMode::Useful;
    let k = problem.bases.len();
    let base_ids: Vec<usize> = (0..k).collect();
    let parallel_scan = options.parallelism.workers_for(k) > 1;
    while !state.meets_quota() {
        if stats.iterations >= options.max_iterations {
            return Err(CoreError::GaveUp(format!(
                "greedy phase 1 exceeded {} iterations",
                options.max_iterations
            )));
        }
        // Full rescan each iteration — the paper's O(k · l1) loop. With a
        // parallel policy, the (read-only) probes are fanned out across
        // workers first and the best-pick reduction replays the sequential
        // loop's exact tie-breaking over the collected records, so both
        // paths pick identical tuples at identical gain values.
        let mut best: Option<(f64, usize)> = None;
        let mut cheapest_fallback: Option<(f64, usize)> = None;
        let probed: Option<Vec<ProbeRecord>> = parallel_scan.then(|| {
            let shared: &EvalState<'_> = state;
            pcqe_par::map(&options.parallelism, &base_ids, |&i| {
                let step_cost = shared.next_step_cost(i);
                if !step_cost.is_finite() {
                    return None; // already at max
                }
                let touches_unsatisfied = problem
                    .results_of_base(i)
                    .iter()
                    .any(|&ri| !shared.is_satisfied(ri));
                if useful && !touches_unsatisfied {
                    return Some((step_cost, false, 0.0, 0));
                }
                let (gain_num, evals) = shared.probe_step_gain_readonly(i, useful);
                Some((step_cost, touches_unsatisfied, gain_num, evals))
            })
        });
        for i in 0..k {
            let (step_cost, touches_unsatisfied, gain_num) = match &probed {
                Some(records) => {
                    let Some((step_cost, touches, gain_num, evals)) = records[i] else {
                        continue; // already at max
                    };
                    state.evals += evals;
                    if useful && !touches {
                        continue;
                    }
                    (step_cost, touches, gain_num)
                }
                None => {
                    let step_cost = state.next_step_cost(i);
                    if !step_cost.is_finite() {
                        continue; // already at max
                    }
                    // A base whose every result is satisfied cannot add
                    // useful gain; in Useful mode skip it without
                    // evaluating F.
                    let touches_unsatisfied = problem
                        .results_of_base(i)
                        .iter()
                        .any(|&ri| !state.is_satisfied(ri));
                    if useful && !touches_unsatisfied {
                        continue;
                    }
                    let gain_num = state.probe_step_gain(i, useful);
                    (step_cost, touches_unsatisfied, gain_num)
                }
            };
            let gain = if step_cost > 0.0 {
                gain_num / step_cost
            } else {
                // A free step with any gain is infinitely attractive.
                if gain_num > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            };
            if gain > 0.0 && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, i));
            }
            if touches_unsatisfied && cheapest_fallback.is_none_or(|(c, _)| step_cost < c) {
                cheapest_fallback = Some((step_cost, i));
            }
        }
        // On a flat gain plateau (every probe gave ΔF = 0, e.g. a conjunct
        // still at zero), fall back to the cheapest step that touches an
        // unsatisfied result so progress is still possible.
        let (gain, pick) = match best.or(cheapest_fallback) {
            Some(x) => x,
            None => {
                return Err(CoreError::GaveUp(
                    "no base tuple can still be raised towards an unsatisfied result".into(),
                ))
            }
        };
        state.step_up(pick);
        if last_gain[pick].is_nan() {
            raised.push(pick);
        }
        last_gain[pick] = gain;
        stats.iterations += 1;
    }
    Ok(())
}

/// The lazy-heap variant of phase 1: a max-heap of `(gain, index)` entries
/// with version-stamped lazy invalidation. After a step on base `b`, only
/// bases sharing a result with `b` can see their gain change (the shared
/// results are the only F values that moved, and `b` itself is the only
/// base whose next-step cost moved), so exactly that neighbourhood is
/// recomputed and re-pushed.
fn phase1_incremental(
    state: &mut EvalState<'_>,
    options: &GreedyOptions,
    stats: &mut GreedyStats,
    last_gain: &mut [f64],
    raised: &mut Vec<usize>,
) -> Result<()> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let problem = state.problem();
    let useful = options.gain == GainMode::Useful;
    let k = problem.bases.len();

    let gain_of = |state: &mut EvalState<'_>, i: usize| -> f64 {
        let step_cost = state.next_step_cost(i);
        if !step_cost.is_finite() {
            return 0.0;
        }
        if useful
            && !problem
                .results_of_base(i)
                .iter()
                .any(|&ri| !state.is_satisfied(ri))
        {
            return 0.0;
        }
        let num = state.probe_step_gain(i, useful);
        if step_cost > 0.0 {
            num / step_cost
        } else if num > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    };

    // Heap entries: (gain under the sanctioned total order, Reverse(index),
    // version). `OrdF64` makes the whole tuple derivably `Ord`, so the max
    // heap pops the highest gain, lowest index first; the version only
    // breaks ties between stale revisions of the same base, which the
    // liveness check below filters anyway.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Entry(OrdF64, Reverse<usize>, u64);

    let mut versions: Vec<u64> = vec![0; k];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k);
    for i in 0..k {
        let g = gain_of(state, i);
        if g > 0.0 {
            heap.push(Entry(OrdF64(g), Reverse(i), 0));
        }
    }

    while !state.meets_quota() {
        if stats.iterations >= options.max_iterations {
            return Err(CoreError::GaveUp(format!(
                "greedy phase 1 exceeded {} iterations",
                options.max_iterations
            )));
        }
        // Pop until a live entry emerges.
        let pick = loop {
            match heap.pop() {
                Some(Entry(g, Reverse(i), v)) => {
                    if v == versions[i] {
                        break Some((g.get(), i));
                    }
                }
                None => break None,
            }
        };
        let (gain, pick) = match pick {
            Some(p) => p,
            None => {
                // Gain plateau: fall back to the cheapest step towards an
                // unsatisfied result (same rule as the faithful loop).
                let mut fallback: Option<(f64, usize)> = None;
                for i in 0..k {
                    let c = state.next_step_cost(i);
                    if !c.is_finite() {
                        continue;
                    }
                    let touches = problem
                        .results_of_base(i)
                        .iter()
                        .any(|&ri| !state.is_satisfied(ri));
                    if touches && fallback.is_none_or(|(fc, _)| c < fc) {
                        fallback = Some((c, i));
                    }
                }
                match fallback {
                    Some((_, i)) => (0.0, i),
                    None => {
                        return Err(CoreError::GaveUp(
                            "no base tuple can still be raised towards an unsatisfied result"
                                .into(),
                        ))
                    }
                }
            }
        };
        state.step_up(pick);
        if last_gain[pick].is_nan() {
            raised.push(pick);
        }
        last_gain[pick] = gain;
        stats.iterations += 1;

        // Recompute the affected neighbourhood: every base sharing a
        // result with `pick` (which includes `pick` itself).
        let mut affected: Vec<usize> = Vec::new();
        for &ri in problem.results_of_base(pick) {
            for &b in &problem.results[ri].bases {
                if !affected.contains(&b) {
                    affected.push(b);
                }
            }
        }
        for b in affected {
            versions[b] += 1;
            let g = gain_of(state, b);
            if g > 0.0 {
                heap.push(Entry(OrdF64(g), Reverse(b), versions[b]));
            }
        }
    }
    Ok(())
}

/// Phase 2: walk `candidates` in the given order, lowering each base while
/// the quota survives; restores the last step that broke the quota.
/// Returns the number of δ steps rolled back.
pub(crate) fn roll_back(state: &mut EvalState<'_>, candidates: &[usize]) -> u64 {
    let mut reductions = 0;
    for &i in candidates {
        loop {
            if state.steps_of(i) == 0 {
                break;
            }
            state.step_down(i);
            if state.meets_quota() {
                reductions += 1;
            } else {
                state.step_up(i);
                break;
            }
        }
    }
    reductions
}

/// Reject problems that cannot be satisfied even at maximum confidence.
pub(crate) fn check_feasible(state: &mut EvalState<'_>) -> Result<()> {
    let problem = state.problem();
    let all: Vec<usize> = (0..problem.bases.len()).collect();
    let achievable = state.optimistic_satisfied(&all);
    if achievable < problem.required {
        return Err(CoreError::Infeasible {
            achievable,
            required: problem.required,
        });
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;
    use pcqe_lineage::Lineage;

    fn linear(rate: f64) -> CostFn {
        CostFn::linear(rate).unwrap()
    }

    #[test]
    fn picks_by_gain_per_cost_on_the_paper_example() {
        // Paper Section 3.1 instance. Greedy maximises ΔF/cost: one δ step
        // on t13 moves F by 0.058 at cost 50 (ratio 1.16e-3), beating one
        // step on t03 (0.007 at cost 10, ratio 7e-4) — and a single t13
        // step already satisfies β = 0.06. The exact optimum (raise t03,
        // cost 10) is found by the heuristic algorithm instead; this is
        // precisely the approximation gap Figure 11(f) shows.
        let mut b = ProblemBuilder::new(0.06, 0.1);
        b.base(2, 0.3, linear(1000.0));
        b.base(3, 0.4, linear(100.0));
        b.base(13, 0.1, linear(500.0));
        b.result_from_lineage(&Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]))
        .unwrap();
        let p = b.require(1).build().unwrap();
        let out = solve(&p, &GreedyOptions::default()).unwrap();
        out.solution.validate(&p).unwrap();
        assert!(
            (out.solution.levels[2] - 0.2).abs() < 1e-12,
            "t13 raised one step"
        );
        assert!((out.solution.cost - 50.0).abs() < 1e-9);
        // The expensive tuple 02 is never touched.
        assert!((out.solution.levels[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn cheaper_tuple_wins_when_gains_are_symmetric() {
        // Two tuples with identical ΔF per step but different cost: the
        // cheap one must be chosen (the paper's "first solution is more
        // expensive" observation).
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(2, 0.1, linear(1000.0));
        b.base(3, 0.1, linear(100.0));
        b.result_from_lineage(&Lineage::or(vec![Lineage::var(2), Lineage::var(3)]))
            .unwrap();
        let p = b.require(1).build().unwrap();
        let out = solve(&p, &GreedyOptions::default()).unwrap();
        out.solution.validate(&p).unwrap();
        assert!((out.solution.levels[0] - 0.1).abs() < 1e-12);
        assert!(out.solution.levels[1] > 0.4);
    }

    #[test]
    fn quota_already_met_is_free() {
        let mut b = ProblemBuilder::new(0.05, 0.1);
        b.base(0, 0.5, linear(10.0));
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        let p = b.require(1).build().unwrap();
        let out = solve(&p, &GreedyOptions::default()).unwrap();
        assert_eq!(out.solution.cost, 0.0);
        assert_eq!(out.stats.iterations, 0);
    }

    #[test]
    fn infeasible_detected_upfront() {
        let mut b = ProblemBuilder::new(0.9, 0.1);
        b.base_capped(0, 0.1, 0.5, linear(10.0));
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        let p = b.require(1).build().unwrap();
        assert!(matches!(
            solve(&p, &GreedyOptions::default()),
            Err(CoreError::Infeasible {
                achievable: 0,
                required: 1
            })
        ));
    }

    #[test]
    fn two_phase_never_costs_more_than_one_phase() {
        // Several overlapping results; phase 1 overshoots, phase 2 trims.
        let mut b = ProblemBuilder::new(0.5, 0.1);
        for i in 0..6u64 {
            b.base(i, 0.1, linear(10.0 + i as f64 * 7.0));
        }
        for w in 0..4u64 {
            b.result_from_lineage(&Lineage::or(vec![
                Lineage::var(w),
                Lineage::and(vec![Lineage::var(w + 1), Lineage::var(w + 2)]),
            ]))
            .unwrap();
        }
        let p = b.require(3).build().unwrap();
        let two = solve(&p, &GreedyOptions::default()).unwrap();
        let one = solve(&p, &GreedyOptions::one_phase()).unwrap();
        two.solution.validate(&p).unwrap();
        one.solution.validate(&p).unwrap();
        assert!(two.solution.cost <= one.solution.cost + 1e-9);
    }

    #[test]
    fn partial_quota_stops_early() {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.1, linear(10.0));
        b.base(1, 0.1, linear(10.0));
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        b.result_from_lineage(&Lineage::var(1)).unwrap();
        let p = b.require(1).build().unwrap();
        let out = solve(&p, &GreedyOptions::default()).unwrap();
        // Exactly one of the two singletons is raised.
        let raised = out
            .solution
            .levels
            .iter()
            .filter(|&&l| l > 0.1 + 1e-12)
            .count();
        assert_eq!(raised, 1);
    }

    #[test]
    fn escapes_zero_gain_plateau() {
        // F = t0 · t1 with both at 0: every single step has ΔF = 0, so the
        // fallback must still raise something.
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.0, linear(10.0));
        b.base(1, 0.0, linear(20.0));
        b.result_from_lineage(&Lineage::and(vec![Lineage::var(0), Lineage::var(1)]))
            .unwrap();
        let p = b.require(1).build().unwrap();
        let out = solve(&p, &GreedyOptions::default()).unwrap();
        out.solution.validate(&p).unwrap();
        assert!(out.solution.levels[0] * out.solution.levels[1] > 0.5);
    }

    #[test]
    fn raw_gain_mode_also_solves() {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.1, linear(10.0));
        b.base(1, 0.1, linear(10.0));
        b.result_from_lineage(&Lineage::or(vec![Lineage::var(0), Lineage::var(1)]))
            .unwrap();
        let p = b.require(1).build().unwrap();
        let opts = GreedyOptions {
            gain: GainMode::Raw,
            ..GreedyOptions::default()
        };
        let out = solve(&p, &opts).unwrap();
        out.solution.validate(&p).unwrap();
    }

    #[test]
    fn incremental_matches_the_faithful_loop() {
        // Same picks, same cost, same levels — the heap is an engineering
        // change, not an algorithmic one.
        let mut b = ProblemBuilder::new(0.5, 0.1);
        for i in 0..8u64 {
            b.base(i, 0.08 + 0.01 * i as f64, linear(10.0 + 13.0 * i as f64));
        }
        for w in 0..5u64 {
            b.result_from_lineage(&Lineage::or(vec![
                Lineage::var(w),
                Lineage::and(vec![Lineage::var(w + 1), Lineage::var(w + 2)]),
                Lineage::var(w + 3),
            ]))
            .unwrap();
        }
        let p = b.require(3).build().unwrap();
        let faithful = solve(&p, &GreedyOptions::default()).unwrap();
        let incremental = solve(&p, &GreedyOptions::incremental()).unwrap();
        incremental.solution.validate(&p).unwrap();
        assert_eq!(faithful.solution.levels, incremental.solution.levels);
        assert_eq!(faithful.solution.cost, incremental.solution.cost);
        assert_eq!(faithful.stats.iterations, incremental.stats.iterations);
    }

    #[test]
    fn parallel_gain_scan_matches_sequential_bitwise() {
        // Enough overlap and tie opportunities that any divergence in
        // tie-breaking or float arithmetic would change the answer.
        let mut b = ProblemBuilder::new(0.55, 0.1);
        for i in 0..24u64 {
            b.base(
                i,
                0.05 + 0.004 * (i % 9) as f64,
                linear(10.0 + 3.0 * (i % 5) as f64),
            );
        }
        for w in 0..16u64 {
            b.result_from_lineage(&Lineage::or(vec![
                Lineage::var(w),
                Lineage::and(vec![Lineage::var(w + 2), Lineage::var(w + 5)]),
                Lineage::and(vec![Lineage::var(w + 1), Lineage::var(w + 7)]),
            ]))
            .unwrap();
        }
        let p = b.require(10).build().unwrap();
        let sequential = solve(&p, &GreedyOptions::default()).unwrap();
        for workers in [2usize, 8] {
            let opts = GreedyOptions {
                parallelism: pcqe_par::Parallelism {
                    worker_threads: Some(workers),
                    parallel_threshold: 1,
                },
                ..GreedyOptions::default()
            };
            let parallel = solve(&p, &opts).unwrap();
            let seq_bits: Vec<u64> = sequential
                .solution
                .levels
                .iter()
                .map(|l| l.to_bits())
                .collect();
            let par_bits: Vec<u64> = parallel
                .solution
                .levels
                .iter()
                .map(|l| l.to_bits())
                .collect();
            assert_eq!(seq_bits, par_bits, "workers={workers}");
            assert_eq!(
                sequential.solution.cost.to_bits(),
                parallel.solution.cost.to_bits()
            );
            assert_eq!(sequential.solution.satisfied, parallel.solution.satisfied);
            assert_eq!(sequential.stats.iterations, parallel.stats.iterations);
            assert_eq!(sequential.stats.evals, parallel.stats.evals);
        }
    }

    #[test]
    fn incremental_handles_plateaus_too() {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.0, linear(10.0));
        b.base(1, 0.0, linear(20.0));
        b.result_from_lineage(&Lineage::and(vec![Lineage::var(0), Lineage::var(1)]))
            .unwrap();
        let p = b.require(1).build().unwrap();
        let out = solve(&p, &GreedyOptions::incremental()).unwrap();
        out.solution.validate(&p).unwrap();
    }

    #[test]
    fn iteration_cap_reports_give_up() {
        let mut b = ProblemBuilder::new(0.9, 0.01);
        for i in 0..4u64 {
            b.base(i, 0.0, linear(1.0));
        }
        b.result_from_lineage(&Lineage::and(vec![
            Lineage::var(0),
            Lineage::var(1),
            Lineage::var(2),
            Lineage::var(3),
        ]))
        .unwrap();
        let p = b.require(1).build().unwrap();
        let opts = GreedyOptions {
            max_iterations: 3,
            ..GreedyOptions::default()
        };
        assert!(matches!(solve(&p, &opts), Err(CoreError::GaveUp(_))));
    }
}
