//! Strategy finding — the paper's primary contribution (Section 4).
//!
//! Given a set of intermediate query results whose confidence values fall
//! below a policy threshold β, the *confidence increment problem* asks for
//! the cheapest set of base-tuple confidence increments (at granularity δ,
//! each base tuple carrying its own cost function) such that at least a
//! required number of results exceed β. The problem is NP-hard; the paper
//! proposes three algorithms, all implemented here:
//!
//! * [`heuristic`] — an exact branch-and-bound depth-first search with four
//!   individually-toggleable pruning heuristics H1–H4 (Section 4.1);
//! * [`greedy`] — the two-phase greedy algorithm (Section 4.2): an
//!   aggressive gain-per-cost increment phase followed by a roll-back
//!   phase removing unnecessary increments;
//! * [`dnc`] — the divide-and-conquer algorithm (Section 4.3): partition
//!   the results into weakly-coupled groups by merge-clustering a shared
//!   base-tuple graph, solve each group (greedy, plus branch-and-bound for
//!   small groups), then combine and refine.
//!
//! Extensions beyond the paper's core: [`multi`] implements the
//! multiple-query variant sketched at the end of Section 4, and
//! [`estimator`] the advance-time statistics sketched in Section 6.
//!
//! ```
//! use pcqe_core::{greedy, problem::ProblemBuilder, greedy::GreedyOptions};
//! use pcqe_cost::CostFn;
//! use pcqe_lineage::Lineage;
//!
//! // One result with lineage (t0 ∨ t1), threshold 0.5: raise the cheaper
//! // base tuple until the OR crosses 0.5.
//! let mut b = ProblemBuilder::new(0.5, 0.1);
//! let t0 = b.base(0, 0.1, CostFn::linear(100.0).unwrap());
//! let t1 = b.base(1, 0.1, CostFn::linear(10.0).unwrap());
//! b.result_from_lineage(&Lineage::or(vec![Lineage::var(0), Lineage::var(1)])).unwrap();
//! let problem = b.require(1).build().unwrap();
//!
//! let out = greedy::solve(&problem, &GreedyOptions::default()).unwrap();
//! assert!(out.solution.levels[t1] > 0.4, "cheap tuple was raised");
//! assert_eq!(out.solution.levels[t0], 0.1, "expensive tuple untouched");
//! ```

pub mod anneal;
pub mod clock;
pub mod dnc;
pub mod error;
pub mod estimator;
pub mod exhaustive;
pub mod greedy;
pub mod heuristic;
pub mod multi;
pub mod ord;
pub mod partition;
pub mod problem;
pub mod sink;
pub mod solution;
pub mod state;

pub use error::CoreError;
pub use problem::{BaseVar, ConfFn, ProblemBuilder, ProblemInstance, ResultSpec};
pub use solution::{Increment, Solution, SolveOutcome};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
