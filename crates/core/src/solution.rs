//! Solutions and their validation.

use crate::error::CoreError;
use crate::problem::ProblemInstance;
use crate::Result;

/// One suggested confidence increment for a base tuple — what the strategy
/// finder reports to the user ("the increment cost and the data whose
/// confidence needs to be improved will be reported to the manager",
/// Section 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Increment {
    /// Index of the base variable in the problem.
    pub base_index: usize,
    /// External id of the base tuple.
    pub id: u64,
    /// Confidence before.
    pub from: f64,
    /// Confidence after.
    pub to: f64,
    /// Cost of this increment.
    pub cost: f64,
}

/// A solution: final confidence levels, total cost, and the satisfied
/// results.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Final confidence per base variable (grid-aligned).
    pub levels: Vec<f64>,
    /// Total increment cost.
    pub cost: f64,
    /// Indexes of results whose confidence exceeds β under `levels`.
    pub satisfied: Vec<usize>,
}

impl Solution {
    /// The non-trivial increments (bases actually raised).
    pub fn increments(&self, problem: &ProblemInstance) -> Vec<Increment> {
        let mut out = Vec::new();
        for (i, (&to, base)) in self.levels.iter().zip(&problem.bases).enumerate() {
            if to > base.initial + 1e-12 {
                out.push(Increment {
                    base_index: i,
                    id: base.id,
                    from: base.initial,
                    to,
                    cost: base.cost.cost(base.initial, to),
                });
            }
        }
        out
    }

    /// Validate the solution against its problem: levels in range and on
    /// the grid, the satisfied set correct, the quota met, and the cost
    /// consistent with the levels.
    pub fn validate(&self, problem: &ProblemInstance) -> Result<()> {
        if self.levels.len() != problem.bases.len() {
            return Err(CoreError::InvalidProblem(format!(
                "solution has {} levels for {} bases",
                self.levels.len(),
                problem.bases.len()
            )));
        }
        let mut cost = 0.0;
        for (i, (&l, base)) in self.levels.iter().zip(&problem.bases).enumerate() {
            if l < base.initial - 1e-9 || l > base.max + 1e-9 {
                return Err(CoreError::InvalidProblem(format!(
                    "level {l} of base {i} outside [{}, {}]",
                    base.initial, base.max
                )));
            }
            let steps = (l - base.initial) / problem.delta;
            let on_grid = (steps - steps.round()).abs() < 1e-6 || (l - base.max).abs() < 1e-9;
            if !on_grid {
                return Err(CoreError::InvalidProblem(format!(
                    "level {l} of base {i} is off the δ grid"
                )));
            }
            cost += base.cost.cost(base.initial, l);
        }
        if (cost - self.cost).abs() > 1e-6 * (1.0 + cost.abs()) {
            return Err(CoreError::InvalidProblem(format!(
                "declared cost {} but levels cost {cost}",
                self.cost
            )));
        }
        let mut satisfied = Vec::new();
        let mut probs = Vec::new();
        for (ri, r) in problem.results.iter().enumerate() {
            probs.clear();
            probs.extend(r.bases.iter().map(|&b| self.levels[b]));
            if r.conf.eval(&probs) > problem.beta {
                satisfied.push(ri);
            }
        }
        if satisfied != self.satisfied {
            return Err(CoreError::InvalidProblem(format!(
                "declared satisfied set {:?} but recomputed {:?}",
                self.satisfied, satisfied
            )));
        }
        if satisfied.len() < problem.required {
            return Err(CoreError::Infeasible {
                achievable: satisfied.len(),
                required: problem.required,
            });
        }
        Ok(())
    }
}

/// A solution together with solver-specific statistics.
#[derive(Debug, Clone)]
pub struct SolveOutcome<S> {
    /// The solution found.
    pub solution: Solution,
    /// Solver statistics (nodes visited, iterations, …).
    pub stats: S,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;

    fn problem() -> ProblemInstance {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(7, 0.1, CostFn::linear(10.0).unwrap());
        b.result_custom(vec![0], |p| p[0]);
        b.require(1).build().unwrap()
    }

    #[test]
    fn increments_report_raised_bases() {
        let p = problem();
        let s = Solution {
            levels: vec![0.6],
            cost: 5.0,
            satisfied: vec![0],
        };
        s.validate(&p).unwrap();
        let incs = s.increments(&p);
        assert_eq!(incs.len(), 1);
        assert_eq!(incs[0].id, 7);
        assert!((incs[0].cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_wrong_cost_and_sets() {
        let p = problem();
        let bad_cost = Solution {
            levels: vec![0.6],
            cost: 1.0,
            satisfied: vec![0],
        };
        assert!(bad_cost.validate(&p).is_err());
        let bad_set = Solution {
            levels: vec![0.6],
            cost: 5.0,
            satisfied: vec![],
        };
        assert!(bad_set.validate(&p).is_err());
        let off_grid = Solution {
            levels: vec![0.55],
            cost: 4.5,
            satisfied: vec![0],
        };
        assert!(off_grid.validate(&p).is_err());
        let below_quota = Solution {
            levels: vec![0.1],
            cost: 0.0,
            satisfied: vec![],
        };
        assert!(matches!(
            below_quota.validate(&p),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn strictly_above_beta_counts() {
        let p = problem();
        // Level exactly 0.5 does NOT satisfy (strict inequality).
        let s = Solution {
            levels: vec![0.5],
            cost: 4.0,
            satisfied: vec![],
        };
        assert!(matches!(s.validate(&p), Err(CoreError::Infeasible { .. })));
    }
}
