//! Solver-statistics sink: the bridge from solver stats to observability.
//!
//! Solvers already collect per-run statistics structs ([`HeuristicStats`],
//! [`GreedyStats`], …). This module defines the [`SolverSink`] trait —
//! a write-only consumer of named counters and durations — plus `emit`
//! methods that pour each stats struct into a sink under stable metric
//! names (`solver.heuristic.nodes`, `solver.greedy.iterations`, …).
//!
//! The indirection keeps `pcqe-core` free of any observability dependency:
//! `pcqe-obs` implements `SolverSink` for its `Recorder`, and callers that
//! don't care pass [`NullSink`]. Because the solvers themselves are
//! untouched (stats are emitted *after* the solve), instrumentation is
//! result-neutral by construction.
//!
//! [`HeuristicStats`]: crate::heuristic::HeuristicStats
//! [`GreedyStats`]: crate::greedy::GreedyStats

use crate::anneal::AnnealStats;
use crate::dnc::DncStats;
use crate::exhaustive::ExhaustiveStats;
use crate::greedy::GreedyStats;
use crate::heuristic::HeuristicStats;
use std::time::Duration;

/// A write-only consumer of solver statistics.
///
/// Object-safe; implementations must never panic and must not influence
/// solver behaviour (they only see numbers after the fact).
pub trait SolverSink {
    /// Record a monotonically accumulated count under `name`.
    fn count(&self, name: &str, value: u64);
    /// Record a phase duration under `name`.
    fn duration(&self, name: &str, value: Duration);
}

/// The do-nothing sink: discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl SolverSink for NullSink {
    fn count(&self, _name: &str, _value: u64) {}
    fn duration(&self, _name: &str, _value: Duration) {}
}

impl HeuristicStats {
    /// Pour this run's statistics into `sink` under `solver.heuristic.*`.
    pub fn emit(&self, sink: &dyn SolverSink) {
        sink.count("solver.heuristic.nodes", self.nodes);
        sink.count("solver.heuristic.incumbent_updates", self.incumbent_updates);
        sink.count("solver.heuristic.pruned_bound", self.pruned_bound);
        sink.count("solver.heuristic.pruned_h2", self.pruned_h2);
        sink.count("solver.heuristic.pruned_h3", self.pruned_h3);
        sink.count("solver.heuristic.pruned_h4", self.pruned_h4);
        sink.count("solver.heuristic.evals", self.evals);
        sink.count("solver.heuristic.complete", u64::from(self.complete));
        sink.duration("solver.heuristic.elapsed", self.elapsed);
    }
}

impl GreedyStats {
    /// Pour this run's statistics into `sink` under `solver.greedy.*`.
    pub fn emit(&self, sink: &dyn SolverSink) {
        self.emit_as("solver.greedy", sink);
    }

    /// Pour under an explicit prefix — used by [`DncStats::emit`] to file
    /// its aggregate greedy stats under `solver.dnc.greedy.*`, and by the
    /// multi-query solver under `solver.multi.*`.
    pub fn emit_as(&self, prefix: &str, sink: &dyn SolverSink) {
        sink.count(&format!("{prefix}.iterations"), self.iterations);
        sink.count(&format!("{prefix}.reductions"), self.reductions);
        sink.count(&format!("{prefix}.evals"), self.evals);
        sink.duration(&format!("{prefix}.elapsed"), self.elapsed);
    }
}

impl DncStats {
    /// Pour this run's statistics into `sink` under `solver.dnc.*`.
    pub fn emit(&self, sink: &dyn SolverSink) {
        sink.count("solver.dnc.groups", self.groups as u64);
        sink.count(
            "solver.dnc.largest_group_bases",
            self.largest_group_bases as u64,
        );
        sink.count("solver.dnc.bb_groups", self.bb_groups as u64);
        sink.count("solver.dnc.bb_nodes", self.bb_nodes);
        sink.count(
            "solver.dnc.refinement_reductions",
            self.refinement_reductions,
        );
        sink.duration("solver.dnc.partition_elapsed", self.partition_elapsed);
        sink.duration("solver.dnc.elapsed", self.elapsed);
        self.greedy.emit_as("solver.dnc.greedy", sink);
    }
}

impl AnnealStats {
    /// Pour this run's statistics into `sink` under `solver.anneal.*`.
    pub fn emit(&self, sink: &dyn SolverSink) {
        sink.count("solver.anneal.moves", self.moves);
        sink.count("solver.anneal.accepted", self.accepted);
        sink.count("solver.anneal.repaired", u64::from(self.repaired));
        sink.duration("solver.anneal.elapsed", self.elapsed);
    }
}

impl ExhaustiveStats {
    /// Pour this run's statistics into `sink` under `solver.exhaustive.*`.
    pub fn emit(&self, sink: &dyn SolverSink) {
        sink.count("solver.exhaustive.assignments", self.assignments);
        sink.duration("solver.exhaustive.elapsed", self.elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A test sink capturing every call in order.
    #[derive(Default)]
    struct CaptureSink {
        counts: RefCell<Vec<(String, u64)>>,
        durations: RefCell<Vec<(String, Duration)>>,
    }

    impl SolverSink for CaptureSink {
        fn count(&self, name: &str, value: u64) {
            self.counts.borrow_mut().push((name.to_owned(), value));
        }
        fn duration(&self, name: &str, value: Duration) {
            self.durations.borrow_mut().push((name.to_owned(), value));
        }
    }

    #[test]
    fn heuristic_stats_emit_all_fields() {
        let stats = HeuristicStats {
            nodes: 7,
            incumbent_updates: 2,
            pruned_bound: 3,
            pruned_h2: 4,
            pruned_h3: 5,
            pruned_h4: 6,
            evals: 8,
            complete: true,
            elapsed: Duration::from_millis(9),
        };
        let sink = CaptureSink::default();
        stats.emit(&sink);
        let counts = sink.counts.borrow();
        assert_eq!(counts.len(), 8);
        assert!(counts.contains(&("solver.heuristic.nodes".to_owned(), 7)));
        assert!(counts.contains(&("solver.heuristic.pruned_h4".to_owned(), 6)));
        assert!(counts.contains(&("solver.heuristic.complete".to_owned(), 1)));
        assert_eq!(
            sink.durations.borrow()[0],
            (
                "solver.heuristic.elapsed".to_owned(),
                Duration::from_millis(9)
            )
        );
    }

    #[test]
    fn dnc_stats_nest_greedy_under_dnc_prefix() {
        let stats = DncStats {
            groups: 3,
            greedy: GreedyStats {
                iterations: 11,
                ..GreedyStats::default()
            },
            ..DncStats::default()
        };
        let sink = CaptureSink::default();
        stats.emit(&sink);
        let counts = sink.counts.borrow();
        assert!(counts.contains(&("solver.dnc.groups".to_owned(), 3)));
        assert!(counts.contains(&("solver.dnc.greedy.iterations".to_owned(), 11)));
    }

    #[test]
    fn null_sink_discards_silently() {
        HeuristicStats::default().emit(&NullSink);
        GreedyStats::default().emit(&NullSink);
        DncStats::default().emit(&NullSink);
        AnnealStats::default().emit(&NullSink);
        ExhaustiveStats::default().emit(&NullSink);
    }
}
