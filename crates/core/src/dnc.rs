//! The divide-and-conquer algorithm (Section 4.3, Figure 10).
//!
//! 1. **Partition** the intermediate results into groups by merge-
//!    clustering the shared-base-tuple graph (see [`crate::partition`]).
//! 2. **Solve** each group independently with the greedy algorithm; for
//!    groups with fewer than τ base tuples additionally run the heuristic
//!    branch-and-bound, seeded with the group's greedy solution as the
//!    initial cost upper bound.
//! 3. **Combine**: overlapping base tuples take the maximum confidence
//!    across group solutions (never reducing any group's results).
//! 4. **Refine**: a phase-2-style roll-back, starting from the base tuple
//!    with the minimum gain*, trims increments the combined answer no
//!    longer needs.

use crate::clock::Stopwatch;
use crate::error::CoreError;
use crate::greedy::{self, GreedyOptions, GreedyStats};
use crate::heuristic::{self, HeuristicOptions};
use crate::ord::OrdF64;
use crate::partition::{partition, PartitionOptions};
use crate::problem::{ProblemInstance, ResultSpec};
use crate::solution::SolveOutcome;
use crate::state::EvalState;
use crate::Result;
use std::collections::BTreeMap;
use std::time::Duration;

/// Options for the divide-and-conquer solver.
#[derive(Debug, Clone)]
pub struct DncOptions {
    /// Graph-partitioning weight threshold γ (merge while `w_max > γ`).
    pub gamma: f64,
    /// Run branch-and-bound refinement in groups with fewer than τ base
    /// tuples.
    pub tau: usize,
    /// Node budget for each per-group branch-and-bound run.
    pub bb_node_budget: u64,
    /// Greedy configuration used inside each group.
    pub greedy: GreedyOptions,
    /// Cap on base tuples per group (forwarded to the partitioner).
    pub max_group_bases: Option<usize>,
}

impl Default for DncOptions {
    fn default() -> Self {
        DncOptions {
            gamma: 1.0,
            tau: 10,
            bb_node_budget: 100_000,
            greedy: GreedyOptions::default(),
            max_group_bases: Some(4096),
        }
    }
}

/// Statistics from a divide-and-conquer run.
#[derive(Debug, Clone, Default)]
pub struct DncStats {
    /// Number of groups after partitioning.
    pub groups: usize,
    /// Base tuples in the largest group.
    pub largest_group_bases: usize,
    /// Groups that also ran branch-and-bound.
    pub bb_groups: usize,
    /// Total branch-and-bound nodes across groups.
    pub bb_nodes: u64,
    /// Aggregate greedy statistics across groups.
    pub greedy: GreedyStats,
    /// Steps removed by the final refinement.
    pub refinement_reductions: u64,
    /// Time spent partitioning.
    pub partition_elapsed: Duration,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

/// Solve with divide-and-conquer.
pub fn solve(problem: &ProblemInstance, options: &DncOptions) -> Result<SolveOutcome<DncStats>> {
    let watch = Stopwatch::start();
    let mut state = EvalState::new_par(problem, &options.greedy.parallelism);
    greedy::check_feasible(&mut state)?;
    let mut stats = DncStats::default();

    // --- Partition ---------------------------------------------------
    let part_watch = Stopwatch::start();
    let groups = partition(
        problem,
        &PartitionOptions {
            gamma: options.gamma,
            max_group_bases: options.max_group_bases,
        },
    );
    stats.partition_elapsed = part_watch.elapsed();
    stats.groups = groups.len();

    // --- Solve each group --------------------------------------------
    // Final step counts per global base index (max across groups).
    let mut combined_steps: Vec<u32> = vec![0; problem.bases.len()];
    for group in &groups {
        let (sub, base_map) = sub_problem(problem, group);
        stats.largest_group_bases = stats.largest_group_bases.max(sub.bases.len());
        if sub.required == 0 {
            continue;
        }
        let g = greedy::solve(&sub, &options.greedy)?;
        stats.greedy.iterations += g.stats.iterations;
        stats.greedy.reductions += g.stats.reductions;
        stats.greedy.evals += g.stats.evals;
        let solution = if sub.bases.len() < options.tau {
            stats.bb_groups += 1;
            let opts = HeuristicOptions {
                node_limit: Some(options.bb_node_budget),
                ..HeuristicOptions::all().with_seed(g.solution.clone())
            };
            let h = heuristic::solve(&sub, &opts)?;
            stats.bb_nodes += h.stats.nodes;
            h.solution
        } else {
            g.solution
        };
        for (sub_idx, &global_idx) in base_map.iter().enumerate() {
            let steps = ((solution.levels[sub_idx] - sub.bases[sub_idx].initial) / sub.delta)
                .round() as u32;
            combined_steps[global_idx] = combined_steps[global_idx].max(steps);
        }
    }

    // --- Combine -------------------------------------------------------
    for (i, &steps) in combined_steps.iter().enumerate() {
        if steps > 0 {
            state.set_steps(i, steps);
        }
    }
    // Defensive top-up: with monotone confidence functions the combination
    // always meets the quota, but non-monotone custom functions could
    // regress; finish the job with greedy steps if needed.
    if !state.meets_quota() {
        let mut last_gain = vec![f64::NAN; problem.bases.len()];
        let mut raised = Vec::new();
        greedy::phase1(
            &mut state,
            &options.greedy,
            &mut stats.greedy,
            &mut last_gain,
            &mut raised,
        )?;
    }

    // --- Refine ---------------------------------------------------------
    // Roll back from the lowest gain* upward (Section 4.3: "starts from
    // the base tuple with the minimum gain*"). After combination the
    // relevant gain of a raised base is what its increments actually buy:
    // the confidence its results would lose were it reset, per unit of
    // cost refunded — bases delivering the least confidence per cost are
    // rolled back first.
    let mut candidates: Vec<(f64, usize)> = Vec::new();
    for i in 0..problem.bases.len() {
        let steps = state.steps_of(i);
        if steps == 0 {
            continue;
        }
        let refund = problem.cost_at(i, steps);
        let results: Vec<usize> = problem.results_of_base(i).to_vec();
        let now = state.confidences_snapshot(&results);
        state.set_steps(i, 0);
        let then = state.confidences_snapshot(&results);
        state.set_steps(i, steps);
        let loss: f64 = now.iter().zip(&then).map(|(a, b)| (a - b).max(0.0)).sum();
        let gain = if refund > 0.0 {
            loss / refund
        } else {
            f64::INFINITY
        };
        candidates.push((gain, i));
    }
    candidates.sort_by_key(|&(g, i)| (OrdF64(g), i));
    let order: Vec<usize> = candidates.into_iter().map(|(_, i)| i).collect();
    stats.refinement_reductions = greedy::roll_back(&mut state, &order);

    stats.elapsed = watch.elapsed();
    debug_assert!(state.meets_quota());
    let solution = state.to_solution();
    if solution.satisfied.len() < problem.required {
        return Err(CoreError::GaveUp(
            "combination failed to meet the quota (non-monotone confidence function?)".into(),
        ));
    }
    Ok(SolveOutcome { solution, stats })
}

/// Build the sub-problem for one group of result indexes. Returns the
/// instance plus the mapping from sub-base index to global base index.
fn sub_problem(problem: &ProblemInstance, group: &[usize]) -> (ProblemInstance, Vec<usize>) {
    let mut base_map: Vec<usize> = Vec::new();
    let mut global_to_sub: BTreeMap<usize, usize> = BTreeMap::new();
    for &ri in group {
        for &b in &problem.results[ri].bases {
            global_to_sub.entry(b).or_insert_with(|| {
                base_map.push(b);
                base_map.len() - 1
            });
        }
    }
    let bases = base_map
        .iter()
        .map(|&g| problem.bases[g].clone())
        .collect::<Vec<_>>();
    let results: Vec<ResultSpec> = group
        .iter()
        .map(|&ri| {
            let r = &problem.results[ri];
            ResultSpec {
                bases: r.bases.iter().map(|&b| global_to_sub[&b]).collect(),
                conf: r.conf.clone(),
            }
        })
        .collect();
    // Paper: a group with x results targets min(x, y) where y is the whole
    // query's requirement — further capped by what the group can actually
    // achieve, so per-group solving never reports a spurious Infeasible.
    let mut builder = crate::problem::ProblemBuilder::new(problem.beta, problem.delta);
    for b in &bases {
        builder.base_capped(b.id, b.initial, b.max, b.cost.clone());
    }
    for r in &results {
        let conf = r.conf.clone();
        let bases_idx = r.bases.clone();
        builder.result_custom(bases_idx, move |p| conf.eval(p));
    }
    let probe = builder
        .build()
        .expect("sub-problem inherits a validated problem");
    let achievable = {
        let mut s = EvalState::new(&probe);
        let all: Vec<usize> = (0..probe.bases.len()).collect();
        s.optimistic_satisfied(&all)
    };
    let required = group.len().min(problem.required).min(achievable);
    let mut sub = probe;
    sub.required = required;
    (sub, base_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic;
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;
    use pcqe_lineage::Lineage;

    fn linear(rate: f64) -> CostFn {
        CostFn::linear(rate).unwrap()
    }

    /// Two independent clusters of results plus one singleton.
    fn clustered_instance(required: usize) -> ProblemInstance {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        for i in 0..9u64 {
            b.base(i, 0.1, linear(10.0 + (i as f64) * 5.0));
        }
        // Cluster A over bases 0-3.
        b.result_from_lineage(&Lineage::or(vec![
            Lineage::var(0),
            Lineage::and(vec![Lineage::var(1), Lineage::var(2)]),
        ]))
        .unwrap();
        b.result_from_lineage(&Lineage::or(vec![Lineage::var(1), Lineage::var(3)]))
            .unwrap();
        // Cluster B over bases 4-7.
        b.result_from_lineage(&Lineage::or(vec![
            Lineage::var(4),
            Lineage::and(vec![Lineage::var(5), Lineage::var(6)]),
        ]))
        .unwrap();
        b.result_from_lineage(&Lineage::or(vec![Lineage::var(5), Lineage::var(7)]))
            .unwrap();
        // Singleton over base 8.
        b.result_from_lineage(&Lineage::var(8)).unwrap();
        b.require(required).build().unwrap()
    }

    #[test]
    fn solves_and_validates() {
        let p = clustered_instance(3);
        let out = solve(&p, &DncOptions::default()).unwrap();
        out.solution.validate(&p).unwrap();
        assert!(out.stats.groups >= 2, "clusters must not collapse");
    }

    #[test]
    fn matches_exact_optimum_on_small_instances() {
        for required in 1..=4 {
            let p = clustered_instance(required);
            let exact = heuristic::solve(&p, &HeuristicOptions::all()).unwrap();
            let dnc = solve(&p, &DncOptions::default()).unwrap();
            dnc.solution.validate(&p).unwrap();
            assert!(
                dnc.solution.cost <= exact.solution.cost * 1.5 + 1e-9,
                "required={required}: dnc {} vs optimal {}",
                dnc.solution.cost,
                exact.solution.cost
            );
            assert!(
                dnc.solution.cost >= exact.solution.cost - 1e-9,
                "dnc cannot beat the optimum"
            );
        }
    }

    #[test]
    fn group_bb_refinement_kicks_in_for_small_groups() {
        let p = clustered_instance(3);
        let out = solve(
            &p,
            &DncOptions {
                tau: 100,
                ..DncOptions::default()
            },
        )
        .unwrap();
        assert!(out.stats.bb_groups > 0);
        assert!(out.stats.bb_nodes > 0);
    }

    #[test]
    fn tau_zero_disables_group_bb() {
        let p = clustered_instance(3);
        let out = solve(
            &p,
            &DncOptions {
                tau: 0,
                ..DncOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.stats.bb_groups, 0);
        out.solution.validate(&p).unwrap();
    }

    #[test]
    fn full_quota_across_all_groups() {
        let p = clustered_instance(5);
        let out = solve(&p, &DncOptions::default()).unwrap();
        out.solution.validate(&p).unwrap();
        assert_eq!(out.solution.satisfied.len(), 5);
    }

    #[test]
    fn infeasible_detected() {
        let mut b = ProblemBuilder::new(0.9, 0.1);
        b.base_capped(0, 0.1, 0.3, linear(1.0));
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        let p = b.require(1).build().unwrap();
        assert!(matches!(
            solve(&p, &DncOptions::default()),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn overlapping_groups_take_max_confidence() {
        // One base shared between two results that land in different
        // groups when γ is high enough to keep them apart.
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.1, linear(10.0));
        b.base(1, 0.1, linear(10.0));
        b.base(2, 0.1, linear(10.0));
        b.result_from_lineage(&Lineage::or(vec![Lineage::var(0), Lineage::var(1)]))
            .unwrap();
        b.result_from_lineage(&Lineage::or(vec![Lineage::var(1), Lineage::var(2)]))
            .unwrap();
        let p = b.require(2).build().unwrap();
        let out = solve(
            &p,
            &DncOptions {
                gamma: 5.0, // keep the two results in separate groups
                ..DncOptions::default()
            },
        )
        .unwrap();
        out.solution.validate(&p).unwrap();
        assert_eq!(out.stats.groups, 2);
    }
}
