//! Multiple-query strategy finding (the extension sketched at the end of
//! Section 4: "the search space has to be extended to include all distinct
//! base tuples associated with all queries … we need to check whether a
//! solution is found for all queries").

use crate::clock::Stopwatch;
use crate::error::CoreError;
use crate::greedy::{GainMode, GreedyOptions, GreedyStats};
use crate::ord::OrdF64;
use crate::problem::{BaseVar, ProblemInstance, ResultSpec};
use crate::solution::{Solution, SolveOutcome};
use crate::state::EvalState;
use crate::Result;
use std::collections::BTreeMap;

/// A batch of confidence-increment problems that share base tuples (the
/// same user issuing several queries within a short time period).
///
/// All queries must agree on δ; each keeps its own threshold β and quota.
#[derive(Debug, Clone)]
pub struct MultiQueryProblem {
    /// The merged base-tuple pool (deduplicated by external id).
    pub bases: Vec<BaseVar>,
    /// Every result across all queries, remapped onto the merged pool.
    pub results: Vec<ResultSpec>,
    /// `(first result index, result count, β, required)` per query.
    pub queries: Vec<QuerySlice>,
    /// Shared increment granularity δ.
    pub delta: f64,
}

/// One query's slice of the merged result list, with its own threshold and
/// quota.
#[derive(Debug, Clone, Copy)]
pub struct QuerySlice {
    /// Index of the query's first result in [`MultiQueryProblem::results`].
    pub start: usize,
    /// Number of results belonging to the query.
    pub len: usize,
    /// The query's threshold β.
    pub beta: f64,
    /// Results that must exceed β.
    pub required: usize,
}

impl MultiQueryProblem {
    /// Merge single-query instances into one multi-query problem. Base
    /// tuples with the same external id are identified (first definition
    /// wins; initial confidences and cost functions must agree in any
    /// sane use).
    pub fn merge(instances: &[ProblemInstance]) -> Result<MultiQueryProblem> {
        let Some(first) = instances.first() else {
            return Err(CoreError::InvalidProblem("no queries supplied".into()));
        };
        let delta = first.delta;
        for (qi, p) in instances.iter().enumerate() {
            if (p.delta - delta).abs() > 1e-12 {
                return Err(CoreError::InvalidProblem(format!(
                    "query {qi} uses δ = {} but query 0 uses {delta}",
                    p.delta
                )));
            }
        }
        let mut bases: Vec<BaseVar> = Vec::new();
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        let mut results = Vec::new();
        let mut queries = Vec::new();
        for p in instances {
            let local: Vec<usize> = p
                .bases
                .iter()
                .map(|b| {
                    *by_id.entry(b.id).or_insert_with(|| {
                        bases.push(b.clone());
                        bases.len() - 1
                    })
                })
                .collect();
            let start = results.len();
            for r in &p.results {
                results.push(ResultSpec {
                    bases: r.bases.iter().map(|&b| local[b]).collect(),
                    conf: r.conf.clone(),
                });
            }
            queries.push(QuerySlice {
                start,
                len: p.results.len(),
                beta: p.beta,
                required: p.required,
            });
        }
        Ok(MultiQueryProblem {
            bases,
            results,
            queries,
            delta,
        })
    }

    /// Flatten into a single [`ProblemInstance`] whose β is the *maximum*
    /// across queries — only usable for feasibility probing, since each
    /// query keeps its own threshold in the real solve.
    fn as_flat_instance(&self) -> Result<ProblemInstance> {
        let beta_max = self.queries.iter().map(|q| q.beta).fold(0.0f64, f64::max);
        let mut builder = crate::problem::ProblemBuilder::new(beta_max, self.delta);
        for b in &self.bases {
            builder.base_capped(b.id, b.initial, b.max, b.cost.clone());
        }
        for r in &self.results {
            let conf = r.conf.clone();
            builder.result_custom(r.bases.clone(), move |p| conf.eval(p));
        }
        builder.build()
    }
}

/// Solve a multi-query problem greedily: phase 1 raises the base tuple
/// with the best summed gain over *all* queries' unsatisfied results until
/// every query's quota holds; phase 2 rolls increments back while every
/// quota survives.
pub fn solve_greedy(
    multi: &MultiQueryProblem,
    options: &GreedyOptions,
) -> Result<SolveOutcome<GreedyStats>> {
    let watch = Stopwatch::start();
    let flat = multi.as_flat_instance()?;
    let mut state = EvalState::new_par(&flat, &options.parallelism);
    let mut stats = GreedyStats::default();

    // Feasibility: every query must be satisfiable at max confidence.
    {
        let all: Vec<usize> = (0..flat.bases.len()).collect();
        for (qi, q) in multi.queries.iter().enumerate() {
            let achievable = optimistic_for_query(&mut state, multi, qi, &all);
            if achievable < q.required {
                return Err(CoreError::Infeasible {
                    achievable,
                    required: q.required,
                });
            }
        }
    }

    let useful = options.gain == GainMode::Useful;
    let quotas_met = |state: &EvalState<'_>| {
        multi
            .queries
            .iter()
            .enumerate()
            .all(|(qi, q)| satisfied_for_query(state, multi, qi) >= q.required)
    };

    let mut last_gain = vec![f64::NAN; multi.bases.len()];
    let mut raised: Vec<usize> = Vec::new();
    while !quotas_met(&state) {
        if stats.iterations >= options.max_iterations {
            return Err(CoreError::GaveUp("multi-query greedy iteration cap".into()));
        }
        let mut best: Option<(f64, usize)> = None;
        let mut fallback: Option<(f64, usize)> = None;
        for i in 0..multi.bases.len() {
            let step_cost = state.next_step_cost(i);
            if !step_cost.is_finite() {
                continue;
            }
            let gain_num = gain_for(&mut state, multi, i, useful);
            let touches = gain_num > 0.0
                || flat.results_of_base(i).iter().any(|&ri| {
                    let (qi, q) = query_of(multi, ri);
                    state.confidence(ri) <= q.beta
                        && satisfied_for_query(&state, multi, qi) < q.required
                });
            let gain = if step_cost > 0.0 {
                gain_num / step_cost
            } else if gain_num > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            if gain > 0.0 && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, i));
            }
            if touches && fallback.is_none_or(|(c, _)| step_cost < c) {
                fallback = Some((step_cost, i));
            }
        }
        let (gain, pick) = best.or(fallback).ok_or_else(|| {
            CoreError::GaveUp("no base tuple can help any unsatisfied query".into())
        })?;
        state.step_up(pick);
        if last_gain[pick].is_nan() {
            raised.push(pick);
        }
        last_gain[pick] = gain;
        stats.iterations += 1;
    }

    if options.two_phase {
        raised.sort_by_key(|&a| (OrdF64(last_gain[a]), a));
        for &i in &raised {
            loop {
                if state.steps_of(i) == 0 {
                    break;
                }
                state.step_down(i);
                if quotas_met(&state) {
                    stats.reductions += 1;
                } else {
                    state.step_up(i);
                    break;
                }
            }
        }
    }

    stats.evals = state.evals;
    stats.elapsed = watch.elapsed();
    // Satisfied set: results above their own query's β.
    let satisfied: Vec<usize> = (0..multi.results.len())
        .filter(|&ri| {
            let (_, q) = query_of(multi, ri);
            state.confidence(ri) > q.beta
        })
        .collect();
    let solution = Solution {
        levels: (0..multi.bases.len()).map(|i| state.level(i)).collect(),
        cost: state.total_cost(),
        satisfied,
    };
    Ok(SolveOutcome { solution, stats })
}

fn query_of(multi: &MultiQueryProblem, ri: usize) -> (usize, &QuerySlice) {
    for (qi, q) in multi.queries.iter().enumerate() {
        if ri >= q.start && ri < q.start + q.len {
            return (qi, q);
        }
    }
    unreachable!("result index {ri} outside every query slice")
}

fn satisfied_for_query(state: &EvalState<'_>, multi: &MultiQueryProblem, qi: usize) -> usize {
    let q = &multi.queries[qi];
    (q.start..q.start + q.len)
        .filter(|&ri| state.confidence(ri) > q.beta)
        .count()
}

fn optimistic_for_query(
    state: &mut EvalState<'_>,
    multi: &MultiQueryProblem,
    qi: usize,
    all: &[usize],
) -> usize {
    // Raise everything to max, count this query's passing results, restore.
    let saved: Vec<u32> = (0..multi.bases.len()).map(|i| state.steps_of(i)).collect();
    for &i in all {
        let max = state.problem().max_steps(i);
        state.set_steps(i, max);
    }
    let count = satisfied_for_query(state, multi, qi);
    for (i, &s) in saved.iter().enumerate() {
        state.set_steps(i, s);
    }
    count
}

/// Summed ΔF of one δ step on base `i` over unsatisfied results of
/// unsatisfied queries.
fn gain_for(state: &mut EvalState<'_>, multi: &MultiQueryProblem, i: usize, useful: bool) -> f64 {
    let flat = state.problem();
    let s = state.steps_of(i);
    if s >= flat.max_steps(i) {
        return 0.0;
    }
    let mut gain = 0.0;
    let results: Vec<usize> = flat.results_of_base(i).to_vec();
    let old = state.confidences_snapshot(&results);
    // Probe by temporarily committing the step (cheap and exact).
    state.set_steps(i, s + 1);
    for (k, &ri) in results.iter().enumerate() {
        let (_, q) = query_of(multi, ri);
        if useful && old[k] > q.beta {
            continue;
        }
        gain += (state.confidence(ri) - old[k]).max(0.0);
    }
    state.set_steps(i, s);
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;
    use pcqe_lineage::Lineage;

    fn linear(rate: f64) -> CostFn {
        CostFn::linear(rate).unwrap()
    }

    fn query(beta: f64, ids: &[u64], required: usize) -> ProblemInstance {
        let mut b = ProblemBuilder::new(beta, 0.1);
        for &id in ids {
            b.base(id, 0.1, linear(10.0 + id as f64));
        }
        for &id in ids {
            b.result_from_lineage(&Lineage::var(id)).unwrap();
        }
        b.require(required).build().unwrap()
    }

    #[test]
    fn merge_identifies_shared_bases() {
        let q1 = query(0.5, &[0, 1], 1);
        let q2 = query(0.6, &[1, 2], 1);
        let m = MultiQueryProblem::merge(&[q1, q2]).unwrap();
        assert_eq!(m.bases.len(), 3, "base 1 is shared");
        assert_eq!(m.results.len(), 4);
        assert_eq!(m.queries[1].start, 2);
    }

    #[test]
    fn solves_both_quotas() {
        let q1 = query(0.5, &[0, 1], 1);
        let q2 = query(0.6, &[1, 2], 2);
        let m = MultiQueryProblem::merge(&[q1, q2]).unwrap();
        let out = solve_greedy(&m, &GreedyOptions::default()).unwrap();
        // Query 2 needs both of its results above 0.6.
        let q2_satisfied = out.solution.satisfied.iter().filter(|&&ri| ri >= 2).count();
        assert_eq!(q2_satisfied, 2);
        // Query 1 needs one above 0.5 — base 1 (shared) already serves q2.
        assert!(out.solution.satisfied.iter().any(|&ri| ri < 2));
    }

    #[test]
    fn shared_base_serves_both_queries_cheaply() {
        // Both queries watch the same single tuple; raising it once must
        // satisfy both (no double cost).
        let q1 = query(0.5, &[7], 1);
        let q2 = query(0.4, &[7], 1);
        let m = MultiQueryProblem::merge(&[q1, q2]).unwrap();
        let out = solve_greedy(&m, &GreedyOptions::default()).unwrap();
        // 0.1 → 0.6 on a rate-17 linear cost: 0.5 · 17.
        assert!((out.solution.cost - 0.5 * 17.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_delta_rejected() {
        let q1 = query(0.5, &[0], 1);
        let mut q2 = query(0.5, &[1], 1);
        q2.delta = 0.2;
        assert!(matches!(
            MultiQueryProblem::merge(&[q1, q2]),
            Err(CoreError::InvalidProblem(_))
        ));
    }

    #[test]
    fn infeasible_query_detected() {
        let q1 = query(0.5, &[0], 1);
        let mut b = ProblemBuilder::new(0.9, 0.1);
        b.base_capped(9, 0.1, 0.2, linear(1.0));
        b.result_from_lineage(&Lineage::var(9)).unwrap();
        let q2 = b.require(1).build().unwrap();
        let m = MultiQueryProblem::merge(&[q1, q2]).unwrap();
        assert!(matches!(
            solve_greedy(&m, &GreedyOptions::default()),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(MultiQueryProblem::merge(&[]).is_err());
    }

    #[test]
    fn two_phase_trims_multi_query_cost() {
        let q1 = query(0.5, &[0, 1, 2], 2);
        let q2 = query(0.55, &[1, 2, 3], 2);
        let m = MultiQueryProblem::merge(&[q1, q2]).unwrap();
        let two = solve_greedy(&m, &GreedyOptions::default()).unwrap();
        let one = solve_greedy(&m, &GreedyOptions::one_phase()).unwrap();
        assert!(two.solution.cost <= one.solution.cost + 1e-9);
    }
}
