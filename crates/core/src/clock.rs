//! The crate's only sanctioned wall-clock access point.
//!
//! The solvers measure elapsed time (for statistics) and enforce optional
//! time limits (for anytime behaviour). Both are *observability* concerns:
//! no solver decision that affects the returned solution may depend on the
//! clock, except the explicitly-requested time-limit cutoff. Concentrating
//! every `Instant::now()` here keeps that boundary auditable — lint rule
//! `PCQE-T001` forbids wall-clock reads anywhere else in the workspace
//! outside `crates/bench`, and clippy's `disallowed_methods` mirrors the
//! ban workspace-wide (hence the targeted `#[allow]`s below).
//!
//! # Time sources
//!
//! The [`Clock`] trait abstracts the monotonic time source so downstream
//! instrumentation (the `pcqe-obs` recorder, solver stats, span timing)
//! can be driven deterministically in tests. Two implementations ship
//! here:
//!
//! * [`SystemClock`] — the real monotonic clock, reported as a [`Duration`]
//!   since a lazily-pinned process epoch. This module owns the only raw
//!   `Instant::now()` calls in the workspace outside `crates/bench`.
//! * [`ManualClock`] — an atomic counter advanced explicitly by tests, so
//!   golden exports and span trees are byte-stable.
//!
//! # Timing primitives
//!
//! [`Stopwatch`] measures elapsed time for run statistics; [`Deadline`]
//! answers "is the time limit up?" for solvers that accept
//! `Option<Duration>` budgets.
//!
//! ## Deadline semantics
//!
//! There is exactly one constructor path: [`Deadline::after`] is the
//! canonical entry and [`Deadline::unbounded`] is sugar for
//! `Deadline::after(None)`. A `None` budget produces a deadline whose
//! [`Deadline::expired`] is a constant `false` with **no clock read at
//! all** — untimed solves stay clock-free. A `Some(limit)` budget reads
//! the clock once at construction and again on each `expired()` poll.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic time source reporting time as a [`Duration`] since an
/// implementation-defined epoch.
///
/// Object-safe so recorders can hold `Arc<dyn Clock + Send + Sync>`.
/// Implementations must be monotonic: successive readings never decrease.
pub trait Clock {
    /// Monotonic reading since the clock's epoch.
    fn monotonic(&self) -> Duration;
}

/// The process epoch for [`SystemClock`]: pinned on first read so all
/// readings are small, comparable `Duration`s.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    #[allow(clippy::disallowed_methods)] // the sanctioned clock read
    *EPOCH.get_or_init(Instant::now)
}

/// The real monotonic clock.
///
/// Readings are `Duration`s since a lazily-pinned process epoch, so the
/// very first reading is near zero and all readings are comparable within
/// one process. This type owns the workspace's sanctioned `Instant::now()`
/// call sites (together with the [`Stopwatch`]/[`Deadline`] shims below).
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn monotonic(&self) -> Duration {
        let epoch = process_epoch();
        #[allow(clippy::disallowed_methods)] // the sanctioned clock read
        let now = Instant::now();
        now.saturating_duration_since(epoch)
    }
}

/// A deterministic clock for tests: time advances only when told to.
///
/// Shared freely across threads; all methods take `&self`.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A manual clock starting at `at` past its epoch.
    pub fn starting_at(at: Duration) -> ManualClock {
        let c = ManualClock::new();
        c.set(at);
        c
    }

    /// Advance the clock by `by` (saturating at `u64::MAX` nanoseconds).
    pub fn advance(&self, by: Duration) {
        let add = duration_to_nanos(by);
        let mut cur = self.nanos.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(add);
            match self
                .nanos
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Set the absolute reading. Monotonicity is the caller's contract —
    /// tests should only move time forward.
    pub fn set(&self, to: Duration) {
        self.nanos.store(duration_to_nanos(to), Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn monotonic(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

/// Clamp a `Duration` to a `u64` nanosecond count.
fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Measures elapsed wall-clock time for run statistics.
///
/// Results never depend on the value read — stats only.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Duration,
}

impl Stopwatch {
    /// Start timing now, on the real [`SystemClock`].
    pub fn start() -> Stopwatch {
        Stopwatch::start_with(&SystemClock)
    }

    /// Start timing now, on an explicit clock (e.g. [`ManualClock`]).
    pub fn start_with(clock: &(impl Clock + ?Sized)) -> Stopwatch {
        Stopwatch {
            started: clock.monotonic(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`], on the real clock.
    pub fn elapsed(&self) -> Duration {
        self.elapsed_with(&SystemClock)
    }

    /// Time elapsed since the start, read from an explicit clock. The
    /// clock must be the same one the stopwatch was started on.
    pub fn elapsed_with(&self, clock: &(impl Clock + ?Sized)) -> Duration {
        clock.monotonic().saturating_sub(self.started)
    }
}

/// An optional time budget for anytime solvers.
///
/// Built from `Option<Duration>`: `None` yields an unbounded deadline whose
/// [`Deadline::expired`] is a constant `false` with no clock read at all.
/// See the module docs for the full semantics.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    expires: Option<Duration>,
}

impl Deadline {
    /// A deadline `limit` from now on the real clock; `None` never
    /// expires. This is the single constructor path — [`Deadline::unbounded`]
    /// delegates here.
    pub fn after(limit: Option<Duration>) -> Deadline {
        Deadline::after_with(limit, &SystemClock)
    }

    /// A deadline `limit` from now on an explicit clock.
    ///
    /// `None` never reads the clock; `Some(limit)` reads it once here and
    /// once per [`Deadline::expired`] poll (via the matching `*_with`
    /// method or the real-clock shims).
    pub fn after_with(limit: Option<Duration>, clock: &(impl Clock + ?Sized)) -> Deadline {
        Deadline {
            expires: limit.map(|l| clock.monotonic().saturating_add(l)),
        }
    }

    /// A deadline that never expires and never reads the clock.
    /// Equivalent to `Deadline::after(None)`.
    pub fn unbounded() -> Deadline {
        Deadline::after_with(None, &SystemClock)
    }

    /// Has the budget run out? (real clock)
    pub fn expired(&self) -> bool {
        self.expired_with(&SystemClock)
    }

    /// Has the budget run out, per an explicit clock?
    pub fn expired_with(&self, clock: &(impl Clock + ?Sized)) -> bool {
        match self.expires {
            None => false,
            Some(at) => clock.monotonic() >= at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let w = Stopwatch::start();
        assert!(w.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn unbounded_deadline_never_expires() {
        assert!(!Deadline::unbounded().expired());
        assert!(!Deadline::after(None).expired());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        assert!(Deadline::after(Some(Duration::ZERO)).expired());
    }

    #[test]
    fn long_deadline_not_yet_expired() {
        assert!(!Deadline::after(Some(Duration::from_secs(3600))).expired());
    }

    #[test]
    fn manual_clock_starts_at_zero_and_advances() {
        let c = ManualClock::new();
        assert_eq!(c.monotonic(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.monotonic(), Duration::from_millis(5));
        c.advance(Duration::from_millis(5));
        assert_eq!(c.monotonic(), Duration::from_millis(10));
        c.set(Duration::from_secs(1));
        assert_eq!(c.monotonic(), Duration::from_secs(1));
    }

    #[test]
    fn stopwatch_on_manual_clock_is_deterministic() {
        let c = ManualClock::new();
        let w = Stopwatch::start_with(&c);
        assert_eq!(w.elapsed_with(&c), Duration::ZERO);
        c.advance(Duration::from_micros(250));
        assert_eq!(w.elapsed_with(&c), Duration::from_micros(250));
    }

    #[test]
    fn deadline_on_manual_clock_expires_exactly_on_time() {
        let c = ManualClock::new();
        let d = Deadline::after_with(Some(Duration::from_millis(10)), &c);
        assert!(!d.expired_with(&c));
        c.advance(Duration::from_millis(9));
        assert!(!d.expired_with(&c));
        c.advance(Duration::from_millis(1));
        assert!(d.expired_with(&c));
    }

    #[test]
    fn unbounded_deadline_never_reads_any_clock() {
        // A ManualClock at zero: unbounded stays unexpired regardless.
        let c = ManualClock::new();
        let d = Deadline::after_with(None, &c);
        c.advance(Duration::from_secs(10_000));
        assert!(!d.expired_with(&c));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock;
        let a = c.monotonic();
        let b = c.monotonic();
        assert!(b >= a);
    }

    #[test]
    fn clock_trait_is_object_safe() {
        let clocks: Vec<Box<dyn Clock + Send + Sync>> =
            vec![Box::new(SystemClock), Box::new(ManualClock::new())];
        for c in &clocks {
            let _ = c.monotonic();
        }
    }
}
