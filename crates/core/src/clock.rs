//! The crate's only sanctioned wall-clock access point.
//!
//! The solvers measure elapsed time (for statistics) and enforce optional
//! time limits (for anytime behaviour). Both are *observability* concerns:
//! no solver decision that affects the returned solution may depend on the
//! clock, except the explicitly-requested time-limit cutoff. Concentrating
//! every `Instant::now()` here keeps that boundary auditable — lint rule
//! `PCQE-T001` forbids wall-clock reads anywhere else in the workspace
//! outside `crates/bench`, and clippy's `disallowed_methods` mirrors the
//! ban workspace-wide (hence the targeted `#[allow]`s below).
//!
//! [`Stopwatch`] measures elapsed time for run statistics; [`Deadline`]
//! answers "is the time limit up?" for solvers that accept
//! `Option<Duration>` budgets. `Deadline::unbounded()` never expires and
//! never reads the clock, so untimed solves stay clock-free.

use std::time::{Duration, Instant};

/// Measures elapsed wall-clock time for run statistics.
///
/// Results never depend on the value read — stats only.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        #[allow(clippy::disallowed_methods)] // the sanctioned clock read
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        #[allow(clippy::disallowed_methods)] // the sanctioned clock read
        self.started.elapsed()
    }
}

/// An optional time budget for anytime solvers.
///
/// Built from `Option<Duration>`: `None` yields an unbounded deadline whose
/// [`Deadline::expired`] is a constant `false` with no clock read at all.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    expires: Option<Instant>,
}

impl Deadline {
    /// A deadline `limit` from now; `None` never expires.
    pub fn after(limit: Option<Duration>) -> Deadline {
        #[allow(clippy::disallowed_methods)] // the sanctioned clock read
        Deadline {
            expires: limit.map(|l| Instant::now() + l),
        }
    }

    /// A deadline that never expires and never reads the clock.
    pub fn unbounded() -> Deadline {
        Deadline { expires: None }
    }

    /// Has the budget run out?
    pub fn expired(&self) -> bool {
        match self.expires {
            None => false,
            Some(at) => {
                #[allow(clippy::disallowed_methods)] // the sanctioned clock read
                let now = Instant::now();
                now >= at
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let w = Stopwatch::start();
        assert!(w.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn unbounded_deadline_never_expires() {
        assert!(!Deadline::unbounded().expired());
        assert!(!Deadline::after(None).expired());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        assert!(Deadline::after(Some(Duration::ZERO)).expired());
    }

    #[test]
    fn long_deadline_not_yet_expired() {
        assert!(!Deadline::after(Some(Duration::from_secs(3600))).expired());
    }
}
