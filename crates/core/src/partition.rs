//! Result-graph partitioning for divide-and-conquer (Section 4.3).
//!
//! Results are nodes; two results are connected with weight equal to the
//! number of base tuples they share (the prose and Figure 8 semantics —
//! the pseudocode's `|Gi ∪ Gj|` is a typo for the intersection). Clusters
//! are grown by repeatedly merging the pair connected by the maximum
//! weight, until that maximum drops to the threshold γ; after a merge, the
//! edge weight between a cluster and a neighbour is the *sum* of the
//! weights of the edges it absorbed, exactly as in the paper's Figure 9
//! walk-through.

use crate::ord::OrdF64;
use crate::problem::ProblemInstance;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Options for the partitioning phase.
#[derive(Debug, Clone)]
pub struct PartitionOptions {
    /// Stop merging once the maximum inter-cluster weight is ≤ γ
    /// (the paper merges while `w_max > γ`).
    pub gamma: f64,
    /// Refuse merges that would put more than this many base tuples in one
    /// group (the paper's first requirement: keep each sub-problem
    /// solvable in reasonable time). `None` disables the cap.
    pub max_group_bases: Option<usize>,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            gamma: 1.0,
            max_group_bases: Some(4096),
        }
    }
}

/// Partition the problem's results into groups of result indexes.
///
/// Results sharing no base tuple with anything else come out as singleton
/// groups. The output is deterministic: groups are sorted by their
/// smallest result index, members ascending.
pub fn partition(problem: &ProblemInstance, options: &PartitionOptions) -> Vec<Vec<usize>> {
    let n = problem.results.len();
    let mut uf = UnionFind::new(n);

    // Edge weights: number of shared base tuples per result pair, found by
    // walking each base's result list.
    let mut weights: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for b in 0..problem.bases.len() {
        let rs = problem.results_of_base(b);
        for (x, &i) in rs.iter().enumerate() {
            for &j in &rs[x + 1..] {
                let key = if i < j { (i, j) } else { (j, i) };
                *weights.entry(key).or_insert(0.0) += 1.0;
            }
        }
    }

    // Per-cluster adjacency and base sets (for the size cap). Ordered maps
    // throughout: the absorbed-neighbour loop below iterates `gone_adj`,
    // and with a hash map that order — hence the heap's insertion order and
    // any weight-tied merge sequence — would vary run to run (PCQE-D001).
    let mut adj: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); n];
    for (&(i, j), &w) in &weights {
        adj[i].insert(j, w);
        adj[j].insert(i, w);
    }
    let mut bases: Vec<BTreeSet<usize>> = (0..n)
        .map(|ri| problem.results[ri].bases.iter().copied().collect())
        .collect();

    // Max-weight merge loop with a lazy heap. Heap entries carry the two
    // cluster roots and the weight at push time; stale entries are skipped.
    let mut heap: BinaryHeap<HeapEdge> = weights
        .iter()
        .map(|(&(i, j), &w)| HeapEdge {
            w: OrdF64(w),
            a: Reverse(i),
            b: Reverse(j),
        })
        .collect();

    while let Some(HeapEdge {
        w,
        a: Reverse(a),
        b: Reverse(b),
    }) = heap.pop()
    {
        let w = w.get();
        if w <= options.gamma {
            break;
        }
        let (ra, rb) = (uf.find(a), uf.find(b));
        if ra == rb {
            continue;
        }
        // Stale check: the entry must match the current weight between the
        // two live clusters.
        match adj[ra].get(&rb) {
            Some(&cur) if (cur - w).abs() < 1e-9 => {}
            _ => continue,
        }
        if let Some(cap) = options.max_group_bases {
            let combined = bases[ra].len() + bases[rb].len();
            // (Upper bound: shared bases counted twice, still fine as cap.)
            if combined > cap {
                // Drop the edge so it is not retried forever.
                adj[ra].remove(&rb);
                adj[rb].remove(&ra);
                continue;
            }
        }
        // Merge rb into ra (union-find decides the surviving root).
        let root = uf.union(ra, rb);
        let (keep, gone) = if root == ra { (ra, rb) } else { (rb, ra) };
        let gone_adj = std::mem::take(&mut adj[gone]);
        let gone_bases = std::mem::take(&mut bases[gone]);
        bases[keep].extend(gone_bases);
        adj[keep].remove(&gone);
        for (nb, w2) in gone_adj {
            let nb = uf.find(nb);
            if nb == keep {
                continue;
            }
            let entry = adj[keep].entry(nb).or_insert(0.0);
            *entry += w2;
            let merged_w = *entry;
            // Mirror on the neighbour side: remove the old key, add the new.
            adj[nb].remove(&gone);
            adj[nb].insert(keep, merged_w);
            heap.push(HeapEdge {
                w: OrdF64(merged_w),
                a: Reverse(keep),
                b: Reverse(nb),
            });
        }
    }

    // Collect groups.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for ri in 0..n {
        groups.entry(uf.find(ri)).or_default().push(ri);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    out
}

/// Max-heap entry: highest weight pops first; weight ties break towards
/// the *lower* index pair (hence the `Reverse`d fields) for determinism.
/// Deriving `Ord` on top of [`OrdF64`] keeps the ordering structural —
/// no hand-written comparator to drift (PCQE-D004).
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct HeapEdge {
    w: OrdF64,
    a: Reverse<usize>,
    b: Reverse<usize>,
}

struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Union by size; returns the surviving root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        big
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;

    fn linear() -> CostFn {
        CostFn::linear(10.0).unwrap()
    }

    /// Build a problem where result i depends on the base indexes given.
    fn problem_with(results: &[&[u64]]) -> ProblemInstance {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        let mut seen = std::collections::HashSet::new();
        for r in results {
            for &id in *r {
                if seen.insert(id) {
                    b.base(id, 0.1, linear());
                }
            }
        }
        for r in results {
            // Ids are chosen to equal indexes in these tests (they appear
            // in ascending first-seen order).
            let bases: Vec<usize> = r.iter().map(|&id| id as usize).collect();
            b.result_custom(bases, |p| p.iter().product());
        }
        b.require(0).build().unwrap()
    }

    #[test]
    fn independent_results_stay_separate() {
        let p = problem_with(&[&[0, 1], &[2, 3], &[4]]);
        let groups = partition(&p, &PartitionOptions::default());
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn heavily_shared_results_merge() {
        // r0 and r1 share bases {0,1,2} (weight 3); r2 is linked to r1 by
        // one shared base (weight 1 ≤ γ).
        let p = problem_with(&[&[0, 1, 2, 3], &[0, 1, 2, 4], &[4, 5, 6]]);
        let groups = partition(
            &p,
            &PartitionOptions {
                gamma: 1.0,
                max_group_bases: None,
            },
        );
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn gamma_zero_merges_any_sharing() {
        let p = problem_with(&[&[0, 1, 2, 3], &[0, 1, 2, 4], &[4, 5, 6]]);
        let groups = partition(
            &p,
            &PartitionOptions {
                gamma: 0.0,
                max_group_bases: None,
            },
        );
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn merged_edge_weights_accumulate() {
        // Figure 9 flavour: a chain where merging two nodes sums their
        // edges to a common neighbour. r0-r1 weight 2; r0-r2 weight 1,
        // r1-r2 weight 1 → after merging {r0,r1}, the cluster-r2 weight is
        // 2 > γ=1.5, so everything merges.
        let p = problem_with(&[&[0, 1, 2], &[0, 1, 3], &[2, 3]]);
        let groups = partition(
            &p,
            &PartitionOptions {
                gamma: 1.5,
                max_group_bases: None,
            },
        );
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn size_cap_blocks_merges() {
        let p = problem_with(&[&[0, 1, 2, 3], &[0, 1, 2, 4]]);
        let groups = partition(
            &p,
            &PartitionOptions {
                gamma: 1.0,
                max_group_bases: Some(4),
            },
        );
        assert_eq!(groups.len(), 2, "cap of 4 bases forbids the merge");
    }

    #[test]
    fn empty_problem_yields_no_groups() {
        let p = ProblemBuilder::new(0.5, 0.1).build().unwrap();
        assert!(partition(&p, &PartitionOptions::default()).is_empty());
    }
}
