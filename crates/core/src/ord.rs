//! The one sanctioned total order over `f64`.
//!
//! Confidence values, gains and costs are `f64`s, and the solvers sort,
//! heap and tie-break on them constantly. `f64` is only [`PartialOrd`]
//! (`NaN` breaks totality), which historically pushed each call site to
//! hand-roll its own `total_cmp`-based `Ord` impl — and every hand-rolled
//! comparator is one more place a future edit can silently introduce a
//! platform- or ordering-dependent result. Rule `PCQE-D004` therefore
//! bans raw `partial_cmp`/`total_cmp`/float `==` in the result-affecting
//! crates, and this module is the single exemption: wrap the value in
//! [`OrdF64`] and derive/compose orderings structurally.
//!
//! The wrapper uses [`f64::total_cmp`], i.e. the IEEE 754 `totalOrder`
//! predicate: `-NaN < -∞ < … < -0.0 < +0.0 < … < +∞ < NaN`, which is
//! bit-deterministic on every platform.
//!
//! ```
//! use pcqe_core::ord::OrdF64;
//! let mut xs = vec![2.5, f64::NAN, 0.1, -0.0, 0.0];
//! xs.sort_by_key(|&x| OrdF64(x));
//! assert_eq!(xs[0], 0.1_f64.min(-0.0)); // -0.0 first
//! assert!(xs[4].is_nan()); // NaN sorts last, deterministically
//! ```

use std::cmp::Ordering;

/// An `f64` carrying the IEEE 754 total order — `Eq`/`Ord`, so it can be
/// a sort key, heap entry field, or map key without a hand-written
/// comparator.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(x: f64) -> OrdF64 {
        OrdF64(x)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;

    #[test]
    fn total_order_is_total_and_deterministic() {
        let mut xs = [
            f64::NAN,
            1.0,
            -1.0,
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        xs.sort_by_key(|&x| OrdF64(x));
        assert_eq!(xs[0], f64::NEG_INFINITY);
        assert_eq!(xs[1], -1.0);
        // -0.0 strictly before +0.0 under totalOrder.
        assert!(xs[2].is_sign_negative() && xs[2] == 0.0);
        assert!(xs[3].is_sign_positive() && xs[3] == 0.0);
        assert_eq!(xs[4], 1.0);
        assert_eq!(xs[5], f64::INFINITY);
        assert!(xs[6].is_nan());
    }

    #[test]
    fn eq_distinguishes_zero_signs_and_equates_nans() {
        assert_ne!(OrdF64(0.0), OrdF64(-0.0));
        assert_eq!(OrdF64(f64::NAN), OrdF64(f64::NAN));
        assert_eq!(OrdF64(2.5), OrdF64(2.5));
    }

    #[test]
    fn works_as_heap_and_tuple_key() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<(OrdF64, Reverse<usize>)> = BinaryHeap::new();
        heap.push((OrdF64(0.5), Reverse(3)));
        heap.push((OrdF64(2.0), Reverse(1)));
        heap.push((OrdF64(0.5), Reverse(2)));
        assert_eq!(heap.pop().unwrap(), (OrdF64(2.0), Reverse(1)));
        // Equal gains: the lower index wins via Reverse.
        assert_eq!(heap.pop().unwrap(), (OrdF64(0.5), Reverse(2)));
        assert_eq!(heap.pop().unwrap(), (OrdF64(0.5), Reverse(3)));
    }
}
