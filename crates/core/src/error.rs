//! Error type for the strategy-finding algorithms.

use std::fmt;

/// Errors raised while building or solving a confidence-increment problem.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The problem definition was inconsistent.
    InvalidProblem(String),
    /// Even raising every base tuple to its maximum confidence satisfies
    /// fewer results than required.
    Infeasible {
        /// Results satisfiable at maximum confidence everywhere.
        achievable: usize,
        /// Results the caller required.
        required: usize,
    },
    /// A solver gave up (node/time limit, or a gain plateau it could not
    /// escape).
    GaveUp(String),
    /// A lineage compilation or evaluation failed while building the
    /// problem.
    Lineage(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidProblem(m) => write!(f, "invalid problem: {m}"),
            CoreError::Infeasible {
                achievable,
                required,
            } => write!(
                f,
                "infeasible: at most {achievable} results can satisfy the threshold, {required} required"
            ),
            CoreError::GaveUp(m) => write!(f, "solver gave up: {m}"),
            CoreError::Lineage(m) => write!(f, "lineage error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::Infeasible {
            achievable: 2,
            required: 5,
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('5'));
    }
}
