//! A simulated-annealing baseline for the confidence-increment problem.
//!
//! The paper frames strategy finding as a nonlinear constrained
//! optimisation and solves it with domain-specific algorithms; a generic
//! stochastic-search baseline puts their performance in context (and is
//! measured against them in the `ablations` bench). The annealer walks
//! the grid of per-tuple step vectors, minimising
//! `cost + penalty · max(0, required − satisfied)` with a geometric
//! cooling schedule, and repairs its best state to feasibility with
//! greedy steps if the quota is still unmet when the temperature floor is
//! reached.
//!
//! Deterministic in [`AnnealOptions::seed`].

use crate::clock::Stopwatch;
use crate::error::CoreError;
use crate::greedy::{self, GreedyOptions, GreedyStats};
use crate::problem::ProblemInstance;
use crate::solution::SolveOutcome;
use crate::state::EvalState;
use crate::Result;
use pcqe_lineage::rng::Rng64;
use std::time::Duration;

/// Options for the annealing baseline.
#[derive(Debug, Clone)]
pub struct AnnealOptions {
    /// Proposal steps at each temperature.
    pub moves_per_temperature: u32,
    /// Initial temperature (in cost units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per level, in `(0, 1)`.
    pub cooling: f64,
    /// Temperature floor ending the walk.
    pub min_temperature: f64,
    /// Penalty per missing satisfied result (should dominate typical
    /// per-step costs).
    pub quota_penalty: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            moves_per_temperature: 400,
            initial_temperature: 100.0,
            cooling: 0.9,
            min_temperature: 0.05,
            quota_penalty: 1_000.0,
            seed: 0xa11e,
        }
    }
}

/// Statistics from an annealing run.
#[derive(Debug, Clone, Default)]
pub struct AnnealStats {
    /// Proposals evaluated.
    pub moves: u64,
    /// Proposals accepted.
    pub accepted: u64,
    /// Whether the final state needed a greedy feasibility repair.
    pub repaired: bool,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

fn energy(state: &EvalState<'_>, penalty: f64) -> f64 {
    let missing = state
        .problem()
        .required
        .saturating_sub(state.satisfied_count()) as f64;
    state.total_cost() + penalty * missing
}

/// Solve with simulated annealing (a baseline, not one of the paper's
/// algorithms). Always returns a *valid* solution: if the walk ends
/// infeasible, a greedy phase-1 repair runs from the best state found.
pub fn solve(
    problem: &ProblemInstance,
    options: &AnnealOptions,
) -> Result<SolveOutcome<AnnealStats>> {
    let watch = Stopwatch::start();
    let mut state = EvalState::new(problem);
    greedy::check_feasible(&mut state)?;
    let mut stats = AnnealStats::default();
    if problem.bases.is_empty() || state.meets_quota() {
        stats.elapsed = watch.elapsed();
        return Ok(SolveOutcome {
            solution: state.to_solution(),
            stats,
        });
    }
    let mut rng = Rng64::seed_from_u64(options.seed);
    let mut temperature = options.initial_temperature;
    let mut current = energy(&state, options.quota_penalty);
    // Track the best *feasible* step vector seen, if any.
    let mut best_feasible: Option<(f64, Vec<u32>)> = None;
    let k = problem.bases.len();

    while temperature > options.min_temperature {
        for _ in 0..options.moves_per_temperature {
            stats.moves += 1;
            let i = rng.below_usize(k);
            let up = rng.next_f64() < 0.6;
            let moved = if up {
                state.step_up(i)
            } else {
                state.step_down(i)
            };
            if !moved {
                continue;
            }
            let proposed = energy(&state, options.quota_penalty);
            let delta = proposed - current;
            let accept = delta <= 0.0 || rng.next_f64() < (-delta / temperature).exp();
            if accept {
                current = proposed;
                stats.accepted += 1;
                if state.meets_quota()
                    && best_feasible
                        .as_ref()
                        .is_none_or(|(c, _)| state.total_cost() < *c)
                {
                    let steps: Vec<u32> = (0..k).map(|b| state.steps_of(b)).collect();
                    best_feasible = Some((state.total_cost(), steps));
                }
            } else {
                // Undo.
                if up {
                    state.step_down(i);
                } else {
                    state.step_up(i);
                }
            }
        }
        temperature *= options.cooling;
    }

    // Restore the best feasible state, or repair greedily.
    match best_feasible {
        Some((_, steps)) => {
            for (i, &s) in steps.iter().enumerate() {
                state.set_steps(i, s);
            }
        }
        None => {
            stats.repaired = true;
            let mut gstats = GreedyStats::default();
            let mut last_gain = vec![f64::NAN; k];
            let mut raised = Vec::new();
            greedy::phase1(
                &mut state,
                &GreedyOptions::default(),
                &mut gstats,
                &mut last_gain,
                &mut raised,
            )?;
        }
    }
    // Final trim: roll back anything the quota does not need.
    let order: Vec<usize> = (0..k).filter(|&i| state.steps_of(i) > 0).collect();
    greedy::roll_back(&mut state, &order);

    stats.elapsed = watch.elapsed();
    let solution = state.to_solution();
    if solution.satisfied.len() < problem.required {
        return Err(CoreError::GaveUp(
            "annealing repair failed to meet the quota".into(),
        ));
    }
    Ok(SolveOutcome { solution, stats })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::heuristic::{self, HeuristicOptions};
    use crate::problem::ProblemBuilder;
    use pcqe_cost::CostFn;
    use pcqe_lineage::Lineage;

    fn instance() -> ProblemInstance {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        let rates = [10.0, 40.0, 25.0, 60.0, 15.0, 35.0];
        for (i, r) in rates.iter().enumerate() {
            b.base(i as u64, 0.1, CostFn::linear(*r).unwrap());
        }
        for w in 0..4u64 {
            b.result_from_lineage(&Lineage::or(vec![
                Lineage::var(w),
                Lineage::and(vec![Lineage::var(w + 1), Lineage::var(w + 2)]),
            ]))
            .unwrap();
        }
        b.require(3).build().unwrap()
    }

    #[test]
    fn produces_valid_solutions() {
        let p = instance();
        let out = solve(&p, &AnnealOptions::default()).unwrap();
        out.solution.validate(&p).unwrap();
        assert!(out.stats.moves > 0);
    }

    #[test]
    fn never_beats_the_exact_optimum() {
        let p = instance();
        let exact = heuristic::solve(&p, &HeuristicOptions::all()).unwrap();
        for seed in [1u64, 2, 3] {
            let out = solve(
                &p,
                &AnnealOptions {
                    seed,
                    ..AnnealOptions::default()
                },
            )
            .unwrap();
            out.solution.validate(&p).unwrap();
            assert!(
                out.solution.cost >= exact.solution.cost - 1e-9,
                "seed {seed}: anneal {} below optimum {}",
                out.solution.cost,
                exact.solution.cost
            );
        }
    }

    #[test]
    fn deterministic_in_the_seed() {
        let p = instance();
        let a = solve(&p, &AnnealOptions::default()).unwrap();
        let b = solve(&p, &AnnealOptions::default()).unwrap();
        assert_eq!(a.solution.levels, b.solution.levels);
        assert_eq!(a.stats.moves, b.stats.moves);
    }

    #[test]
    fn trivial_and_infeasible_cases() {
        // Already satisfied → free.
        let mut b = ProblemBuilder::new(0.1, 0.1);
        b.base(0, 0.5, CostFn::linear(1.0).unwrap());
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        let p = b.require(1).build().unwrap();
        let out = solve(&p, &AnnealOptions::default()).unwrap();
        assert_eq!(out.solution.cost, 0.0);
        // Infeasible detected up front.
        let mut b = ProblemBuilder::new(0.9, 0.1);
        b.base_capped(0, 0.1, 0.3, CostFn::linear(1.0).unwrap());
        b.result_from_lineage(&Lineage::var(0)).unwrap();
        let p = b.require(1).build().unwrap();
        assert!(matches!(
            solve(&p, &AnnealOptions::default()),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn quick_schedule_still_repairs_to_feasibility() {
        let p = instance();
        let out = solve(
            &p,
            &AnnealOptions {
                moves_per_temperature: 2,
                initial_temperature: 0.2,
                min_temperature: 0.1,
                ..AnnealOptions::default()
            },
        )
        .unwrap();
        out.solution.validate(&p).unwrap();
    }
}
