//! The confidence-increment problem model (the constraint-optimisation
//! problem of Section 3.2).

use crate::error::CoreError;
use crate::Result;
use pcqe_cost::CostFn;
use pcqe_lineage::{CompiledLineage, Lineage};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One base tuple in the optimisation problem: its external id, initial
/// confidence `p`, maximum achievable confidence, and cost function.
#[derive(Debug, Clone)]
pub struct BaseVar {
    /// External identifier (the engine uses the global tuple id).
    pub id: u64,
    /// Initial confidence `p_λ0`.
    pub initial: f64,
    /// Maximum achievable confidence (usually `1.0`).
    pub max: f64,
    /// Cost of raising this tuple's confidence.
    pub cost: CostFn,
}

/// A user-supplied confidence function over a slice of probabilities.
pub type CustomConfFn = Arc<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// The confidence function `F(p_1 … p_k)` of one intermediate result.
///
/// The function receives the probabilities of the result's base tuples in
/// the order of [`ResultSpec::bases`].
#[derive(Clone)]
pub enum ConfFn {
    /// Compiled lineage formula (the usual case).
    Compiled(Arc<CompiledLineage>),
    /// Arbitrary user-supplied function (must be monotone non-decreasing in
    /// every argument for the algorithms' pruning rules to be sound).
    Custom(CustomConfFn),
}

impl std::fmt::Debug for ConfFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfFn::Compiled(c) => write!(f, "ConfFn::Compiled({} vars)", c.vars().len()),
            ConfFn::Custom(_) => f.write_str("ConfFn::Custom"),
        }
    }
}

impl ConfFn {
    /// Evaluate the function on the probabilities of the result's bases.
    pub fn eval(&self, probs: &[f64]) -> f64 {
        match self {
            ConfFn::Compiled(c) => c.eval(probs),
            ConfFn::Custom(f) => f(probs),
        }
    }
}

/// One intermediate result: which base tuples it depends on (as indexes
/// into [`ProblemInstance::bases`]) and its confidence function.
#[derive(Debug, Clone)]
pub struct ResultSpec {
    /// Base-variable indexes, in the order the confidence function expects.
    pub bases: Vec<usize>,
    /// Confidence function over those bases.
    pub conf: ConfFn,
}

/// A complete confidence-increment problem.
///
/// A result is *satisfied* when its confidence is strictly greater than
/// [`ProblemInstance::beta`] (matching Definition 1's "higher than β").
/// A solution must satisfy at least [`ProblemInstance::required`] results
/// while minimising the summed increment cost.
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    /// The base tuples.
    pub bases: Vec<BaseVar>,
    /// The intermediate results.
    pub results: Vec<ResultSpec>,
    /// Confidence threshold β.
    pub beta: f64,
    /// Number of results that must be satisfied.
    pub required: usize,
    /// Confidence-increment granularity δ.
    pub delta: f64,
    /// For each base index, the result indexes it participates in.
    base_to_results: Vec<Vec<usize>>,
}

impl ProblemInstance {
    /// Results affected by a change to base `i`.
    pub fn results_of_base(&self, i: usize) -> &[usize] {
        &self.base_to_results[i]
    }

    /// Number of grid steps available to base `i` (from initial to max).
    pub fn max_steps(&self, i: usize) -> u32 {
        let b = &self.bases[i];
        if b.max <= b.initial {
            return 0;
        }
        ((b.max - b.initial) / self.delta).ceil() as u32
    }

    /// Confidence level of base `i` after `steps` grid steps.
    pub fn level_at(&self, i: usize, steps: u32) -> f64 {
        let b = &self.bases[i];
        (b.initial + steps as f64 * self.delta).min(b.max)
    }

    /// Cost of holding base `i` at `steps` grid steps.
    pub fn cost_at(&self, i: usize, steps: u32) -> f64 {
        let b = &self.bases[i];
        b.cost.cost(b.initial, self.level_at(i, steps))
    }

    /// The cheapest possible single-δ step anywhere on base `i`'s grid —
    /// a safe lower bound for heuristic H4 regardless of the cost
    /// function's convexity.
    pub fn min_step_cost(&self, i: usize) -> f64 {
        let steps = self.max_steps(i);
        let mut best = f64::INFINITY;
        for s in 0..steps {
            let c = self.cost_at(i, s + 1) - self.cost_at(i, s);
            if c < best {
                best = c;
            }
        }
        best
    }
}

/// Builder for [`ProblemInstance`].
#[derive(Debug)]
pub struct ProblemBuilder {
    bases: Vec<BaseVar>,
    results: Vec<ResultSpec>,
    beta: f64,
    delta: f64,
    required: usize,
    id_to_index: BTreeMap<u64, usize>,
    lineage_budget: usize,
}

impl ProblemBuilder {
    /// Start a problem with threshold `beta` and granularity `delta`.
    pub fn new(beta: f64, delta: f64) -> ProblemBuilder {
        ProblemBuilder {
            bases: Vec::new(),
            results: Vec::new(),
            beta,
            delta,
            required: 0,
            id_to_index: BTreeMap::new(),
            lineage_budget: 4096,
        }
    }

    /// Shannon-expansion budget used when compiling result lineage.
    pub fn lineage_budget(mut self, budget: usize) -> ProblemBuilder {
        self.lineage_budget = budget;
        self
    }

    /// Add a base tuple with maximum confidence 1.0; returns its index.
    pub fn base(&mut self, id: u64, initial: f64, cost: CostFn) -> usize {
        self.base_capped(id, initial, 1.0, cost)
    }

    /// Add a base tuple with an explicit maximum confidence.
    pub fn base_capped(&mut self, id: u64, initial: f64, max: f64, cost: CostFn) -> usize {
        let index = self.bases.len();
        self.id_to_index.insert(id, index);
        self.bases.push(BaseVar {
            id,
            initial,
            max,
            cost,
        });
        index
    }

    /// Add a result whose confidence function is a lineage formula over
    /// base *ids* previously registered with [`ProblemBuilder::base`].
    pub fn result_from_lineage(&mut self, lineage: &Lineage) -> Result<usize> {
        let compiled = CompiledLineage::compile(lineage, self.lineage_budget)
            .map_err(|e| CoreError::Lineage(e.to_string()))?;
        let mut bases = Vec::with_capacity(compiled.vars().len());
        for v in compiled.vars() {
            let idx = self.id_to_index.get(&v.0).copied().ok_or_else(|| {
                CoreError::InvalidProblem(format!("lineage references unknown base id {}", v.0))
            })?;
            bases.push(idx);
        }
        self.results.push(ResultSpec {
            bases,
            conf: ConfFn::Compiled(Arc::new(compiled)),
        });
        Ok(self.results.len() - 1)
    }

    /// Like [`ProblemBuilder::result_from_lineage`], but compiling through
    /// a shared [`CircuitCache`] pool: results whose lineage (or
    /// subformulas thereof) were already compiled for this query reuse the
    /// pooled circuit via its `Arc` instead of re-expanding. Budget
    /// success/failure and the compiled circuit's variables and arithmetic
    /// are identical to the uncached path.
    pub fn result_from_lineage_cached(
        &mut self,
        lineage: &Lineage,
        cache: &mut pcqe_lineage::CircuitCache,
    ) -> Result<usize> {
        let id = cache
            .compile(lineage, self.lineage_budget)
            .map_err(|e| CoreError::Lineage(e.to_string()))?;
        let compiled = cache.compiled(id).cloned().ok_or_else(|| {
            CoreError::InvalidProblem("circuit cache returned a dangling handle".to_owned())
        })?;
        let mut bases = Vec::with_capacity(compiled.vars().len());
        for v in compiled.vars() {
            let idx = self.id_to_index.get(&v.0).copied().ok_or_else(|| {
                CoreError::InvalidProblem(format!("lineage references unknown base id {}", v.0))
            })?;
            bases.push(idx);
        }
        self.results.push(ResultSpec {
            bases,
            conf: ConfFn::Compiled(compiled),
        });
        Ok(self.results.len() - 1)
    }

    /// Add a result with a custom (monotone) confidence function over the
    /// given base indexes.
    pub fn result_custom<F>(&mut self, bases: Vec<usize>, f: F) -> usize
    where
        F: Fn(&[f64]) -> f64 + Send + Sync + 'static,
    {
        self.results.push(ResultSpec {
            bases,
            conf: ConfFn::Custom(Arc::new(f)),
        });
        self.results.len() - 1
    }

    /// Require at least `n` results to be satisfied.
    pub fn require(mut self, n: usize) -> ProblemBuilder {
        self.required = n;
        self
    }

    /// Finish, validating the problem.
    pub fn build(self) -> Result<ProblemInstance> {
        if !self.beta.is_finite() || !(0.0..=1.0).contains(&self.beta) {
            // The offending β is deliberately not interpolated: typed
            // errors surface to clients (PCQE-F002).
            return Err(CoreError::InvalidProblem(
                "threshold β outside [0, 1] or not finite".to_owned(),
            ));
        }
        if !(self.delta > 0.0 && self.delta <= 1.0) {
            return Err(CoreError::InvalidProblem(format!(
                "granularity δ = {} outside (0, 1]",
                self.delta
            )));
        }
        if self.required > self.results.len() {
            return Err(CoreError::InvalidProblem(format!(
                "{} results required but only {} exist",
                self.required,
                self.results.len()
            )));
        }
        for (i, b) in self.bases.iter().enumerate() {
            if !b.initial.is_finite() || !(0.0..=1.0).contains(&b.initial) {
                // Indexes identify the bad base; the confidence value
                // itself stays out of the message (PCQE-F003).
                return Err(CoreError::InvalidProblem(format!(
                    "base {i} initial confidence outside [0, 1]"
                )));
            }
            if !b.max.is_finite() || b.max < b.initial || b.max > 1.0 {
                return Err(CoreError::InvalidProblem(format!(
                    "base {i} max confidence below initial, above 1, or not finite"
                )));
            }
        }
        for (i, r) in self.results.iter().enumerate() {
            for &b in &r.bases {
                if b >= self.bases.len() {
                    return Err(CoreError::InvalidProblem(format!(
                        "result {i} references base index {b} out of range"
                    )));
                }
            }
        }
        let mut base_to_results = vec![Vec::new(); self.bases.len()];
        for (ri, r) in self.results.iter().enumerate() {
            for &b in &r.bases {
                if !base_to_results[b].contains(&ri) {
                    base_to_results[b].push(ri);
                }
            }
        }
        Ok(ProblemInstance {
            bases: self.bases,
            results: self.results,
            beta: self.beta,
            required: self.required,
            delta: self.delta,
            base_to_results,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear() -> CostFn {
        CostFn::linear(10.0).unwrap()
    }

    #[test]
    fn builder_round_trip() {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        let i0 = b.base(100, 0.1, linear());
        let i1 = b.base(200, 0.2, linear());
        b.result_from_lineage(&Lineage::and(vec![Lineage::var(100), Lineage::var(200)]))
            .unwrap();
        let p = b.require(1).build().unwrap();
        assert_eq!(p.bases.len(), 2);
        assert_eq!(p.results[0].bases, vec![i0, i1]);
        assert_eq!(p.results_of_base(i0), &[0]);
        assert_eq!(p.results_of_base(i1), &[0]);
    }

    #[test]
    fn grid_arithmetic() {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        let i = b.base(0, 0.1, linear());
        b.result_custom(vec![i], |p| p[0]);
        let p = b.require(0).build().unwrap();
        assert_eq!(p.max_steps(i), 9);
        assert!((p.level_at(i, 0) - 0.1).abs() < 1e-12);
        assert!((p.level_at(i, 4) - 0.5).abs() < 1e-12);
        assert!((p.level_at(i, 99) - 1.0).abs() < 1e-12, "clamped at max");
        assert!((p.cost_at(i, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn min_step_cost_handles_concave_functions() {
        // Logarithmic cost: steps get cheaper at higher confidence, so the
        // minimum step is the last one, not the first.
        let mut b = ProblemBuilder::new(0.5, 0.1);
        let i = b.base(0, 0.1, CostFn::logarithmic(10.0, 20.0).unwrap());
        b.result_custom(vec![i], |p| p[0]);
        let p = b.require(0).build().unwrap();
        let last_step = p.cost_at(i, p.max_steps(i)) - p.cost_at(i, p.max_steps(i) - 1);
        assert!((p.min_step_cost(i) - last_step).abs() < 1e-9);
    }

    #[test]
    fn unknown_lineage_id_rejected() {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 0.1, linear());
        assert!(b.result_from_lineage(&Lineage::var(999)).is_err());
    }

    #[test]
    fn validation_catches_bad_inputs() {
        assert!(ProblemBuilder::new(1.5, 0.1).build().is_err());
        assert!(ProblemBuilder::new(0.5, 0.0).build().is_err());
        assert!(ProblemBuilder::new(0.5, 0.1).require(1).build().is_err());
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base(0, 1.5, linear());
        assert!(b.build().is_err());
        let mut b = ProblemBuilder::new(0.5, 0.1);
        b.base_capped(0, 0.5, 0.4, linear());
        assert!(b.build().is_err());
    }

    #[test]
    fn custom_conf_fn_evaluates() {
        let mut b = ProblemBuilder::new(0.5, 0.1);
        let i = b.base(0, 0.3, linear());
        let j = b.base(1, 0.4, linear());
        b.result_custom(vec![i, j], |p| (p[0] + p[1]) / 2.0);
        let p = b.require(1).build().unwrap();
        assert!((p.results[0].conf.eval(&[0.3, 0.4]) - 0.35).abs() < 1e-12);
    }
}
