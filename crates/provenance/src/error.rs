//! Error type for provenance-based assignment.

use std::fmt;

/// Errors raised while building provenance records or assessing them.
#[derive(Debug, Clone, PartialEq)]
pub enum ProvenanceError {
    /// A trust score was outside `[0, 1]` or not finite.
    InvalidTrust {
        /// Whose trust was rejected (source or agent name).
        who: String,
        /// The offending value.
        value: f64,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// No provenance records were supplied.
    NoRecords,
}

impl fmt::Display for ProvenanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvenanceError::InvalidTrust { who, value } => {
                write!(f, "trust {value} for `{who}` outside [0, 1]")
            }
            ProvenanceError::InvalidConfig { name, value } => {
                write!(f, "invalid assigner parameter `{name}` = {value}")
            }
            ProvenanceError::NoRecords => f.write_str("no provenance records supplied"),
        }
    }
}

impl std::error::Error for ProvenanceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProvenanceError::InvalidTrust {
            who: "lab".into(),
            value: 2.0,
        };
        assert!(e.to_string().contains("lab"));
    }
}
