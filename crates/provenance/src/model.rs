//! Sources, agents, collection methods and provenance records.

use crate::error::ProvenanceError;
use crate::Result;

/// A data provider with a trust score in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Source {
    /// Stable identifier (used to detect same-source duplication).
    pub id: String,
    /// Trustworthiness of the provider.
    pub trust: f64,
}

impl Source {
    /// Create a source, validating its trust score.
    pub fn new(id: impl Into<String>, trust: f64) -> Result<Source> {
        let id = id.into();
        check_trust(&id, trust)?;
        Ok(Source { id, trust })
    }
}

/// An intermediate agent a record passed through (an ETL stage, a clerk,
/// a mirror). Each hop attenuates the record's confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Agent {
    /// Agent name (for error messages).
    pub name: String,
    /// Probability the agent preserved the datum faithfully.
    pub fidelity: f64,
}

impl Agent {
    /// Create an agent, validating its fidelity.
    pub fn new(name: impl Into<String>, fidelity: f64) -> Result<Agent> {
        let name = name.into();
        check_trust(&name, fidelity)?;
        Ok(Agent { name, fidelity })
    }
}

/// How the datum was collected. Each method carries an intrinsic
/// reliability factor, following the paper's motivating examples (patient
/// surveys are cheaper but weaker than audited medical records).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionMethod {
    /// Independently audited record (the strongest evidence).
    Audited,
    /// Automated instrument or system-of-record export.
    Automated,
    /// Manually keyed entry.
    ManualEntry,
    /// Self-reported survey response.
    Survey,
    /// Third-party aggregated feed of unknown methodology.
    ThirdPartyFeed,
}

impl CollectionMethod {
    /// The method's reliability multiplier.
    pub fn reliability(self) -> f64 {
        match self {
            CollectionMethod::Audited => 1.0,
            CollectionMethod::Automated => 0.95,
            CollectionMethod::ManualEntry => 0.85,
            CollectionMethod::Survey => 0.7,
            CollectionMethod::ThirdPartyFeed => 0.6,
        }
    }
}

/// One piece of provenance: where a datum came from and how.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceRecord {
    /// Originating provider.
    pub source: Source,
    /// Intermediate agents, in transit order.
    pub path: Vec<Agent>,
    /// Collection method.
    pub method: CollectionMethod,
    /// Age of the record, in days, for freshness decay.
    pub age_days: f64,
}

impl ProvenanceRecord {
    /// A fresh record straight from the source.
    pub fn new(source: Source, method: CollectionMethod) -> ProvenanceRecord {
        ProvenanceRecord {
            source,
            path: Vec::new(),
            method,
            age_days: 0.0,
        }
    }

    /// Add an intermediate agent hop.
    pub fn via(mut self, agent: Agent) -> ProvenanceRecord {
        self.path.push(agent);
        self
    }

    /// Set the record's age in days.
    pub fn aged(mut self, days: f64) -> ProvenanceRecord {
        self.age_days = days.max(0.0);
        self
    }
}

pub(crate) fn check_trust(who: &str, value: f64) -> Result<()> {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        return Err(ProvenanceError::InvalidTrust {
            who: who.to_owned(),
            value,
        });
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;

    #[test]
    fn sources_and_agents_validate_trust() {
        assert!(Source::new("s", 0.5).is_ok());
        assert!(Source::new("s", -0.1).is_err());
        assert!(Agent::new("a", 1.1).is_err());
        assert!(Agent::new("a", f64::NAN).is_err());
    }

    #[test]
    fn method_reliabilities_are_ordered() {
        let methods = [
            CollectionMethod::Audited,
            CollectionMethod::Automated,
            CollectionMethod::ManualEntry,
            CollectionMethod::Survey,
            CollectionMethod::ThirdPartyFeed,
        ];
        for w in methods.windows(2) {
            assert!(w[0].reliability() > w[1].reliability());
        }
    }

    #[test]
    fn record_builder() {
        let r = ProvenanceRecord::new(
            Source::new("registry", 0.9).unwrap(),
            CollectionMethod::Automated,
        )
        .via(Agent::new("etl", 0.99).unwrap())
        .aged(30.0);
        assert_eq!(r.path.len(), 1);
        assert_eq!(r.age_days, 30.0);
        // Negative ages clamp to zero.
        assert_eq!(r.aged(-5.0).age_days, 0.0);
    }
}
