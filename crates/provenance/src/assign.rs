//! The confidence assigner.

use crate::error::ProvenanceError;
use crate::model::ProvenanceRecord;
use crate::Result;
use std::collections::HashMap;

/// Combines provenance records into one base-tuple confidence.
#[derive(Debug, Clone)]
pub struct Assigner {
    /// Freshness half-life in days: a record this old contributes half of
    /// its fresh confidence. `f64::INFINITY` disables decay.
    pub freshness_half_life_days: f64,
    /// Damping applied to corroborating (distinct-source) evidence in the
    /// noisy-OR combination: `1.0` is full independence, `0.0` ignores
    /// everything but the best record.
    pub corroboration: f64,
}

impl Default for Assigner {
    fn default() -> Self {
        Assigner {
            freshness_half_life_days: 365.0,
            corroboration: 0.6,
        }
    }
}

impl Assigner {
    /// Create an assigner, validating parameters.
    pub fn new(freshness_half_life_days: f64, corroboration: f64) -> Result<Assigner> {
        // NaN must fail too, hence the negated comparison.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(freshness_half_life_days > 0.0) {
            return Err(ProvenanceError::InvalidConfig {
                name: "freshness_half_life_days",
                value: freshness_half_life_days,
            });
        }
        if !corroboration.is_finite() || !(0.0..=1.0).contains(&corroboration) {
            return Err(ProvenanceError::InvalidConfig {
                name: "corroboration",
                value: corroboration,
            });
        }
        Ok(Assigner {
            freshness_half_life_days,
            corroboration,
        })
    }

    /// Confidence contributed by a single record:
    /// `source.trust · Π agent.fidelity · method.reliability · 2^(−age/half-life)`.
    pub fn record_confidence(&self, record: &ProvenanceRecord) -> f64 {
        let mut c = record.source.trust;
        for agent in &record.path {
            c *= agent.fidelity;
        }
        c *= record.method.reliability();
        if self.freshness_half_life_days.is_finite() {
            c *= (-record.age_days / self.freshness_half_life_days * std::f64::consts::LN_2).exp();
        }
        c.clamp(0.0, 1.0)
    }

    /// Combine records into one confidence value.
    ///
    /// Records sharing a source are collapsed to their best record (a
    /// provider repeating itself is not new evidence); across distinct
    /// sources the best record counts fully and every further record
    /// corroborates via a damped noisy-OR.
    pub fn assess(&self, records: &[ProvenanceRecord]) -> Result<f64> {
        if records.is_empty() {
            return Err(ProvenanceError::NoRecords);
        }
        // Best record per source.
        let mut per_source: HashMap<&str, f64> = HashMap::new();
        for r in records {
            let c = self.record_confidence(r);
            let e = per_source.entry(r.source.id.as_str()).or_insert(0.0);
            if c > *e {
                *e = c;
            }
        }
        let mut contributions: Vec<f64> = per_source.into_values().collect();
        contributions.sort_by(|a, b| b.total_cmp(a));
        // `records` was checked non-empty, so there is at least one
        // contribution — but the assessor stays panic-free (PCQE-P002) by
        // treating the impossible empty case as the typed error above.
        let (&best, rest) = contributions
            .split_first()
            .ok_or(ProvenanceError::NoRecords)?;
        let mut confidence = best;
        for &c in rest {
            // Damped noisy-OR: each corroborating source closes a fraction
            // of the remaining gap to certainty.
            confidence += (1.0 - confidence) * self.corroboration * c;
        }
        Ok(confidence.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Agent, CollectionMethod, Source};

    fn record(source_id: &str, trust: f64, method: CollectionMethod) -> ProvenanceRecord {
        ProvenanceRecord::new(Source::new(source_id, trust).unwrap(), method)
    }

    #[test]
    fn single_fresh_record() {
        let a = Assigner::default();
        let r = record("registry", 0.9, CollectionMethod::Audited);
        let c = a.assess(std::slice::from_ref(&r)).unwrap();
        assert!((c - 0.9).abs() < 1e-12);
    }

    #[test]
    fn agents_and_method_attenuate() {
        let a = Assigner::default();
        let r = record("survey", 0.8, CollectionMethod::Survey)
            .via(Agent::new("transcriber", 0.9).unwrap());
        let c = a.record_confidence(&r);
        assert!((c - 0.8 * 0.9 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn freshness_decay_halves_at_half_life() {
        let a = Assigner::new(100.0, 0.6).unwrap();
        let fresh = a.record_confidence(&record("s", 0.8, CollectionMethod::Audited));
        let stale = a.record_confidence(&record("s", 0.8, CollectionMethod::Audited).aged(100.0));
        assert!((stale - fresh / 2.0).abs() < 1e-9);
    }

    #[test]
    fn corroboration_raises_and_same_source_does_not() {
        let a = Assigner::default();
        let lone = a
            .assess(&[record("survey", 0.5, CollectionMethod::Survey)])
            .unwrap();
        let corroborated = a
            .assess(&[
                record("survey", 0.5, CollectionMethod::Survey),
                record("registry", 0.9, CollectionMethod::Audited),
            ])
            .unwrap();
        assert!(corroborated > lone);
        let duplicated = a
            .assess(&[
                record("survey", 0.5, CollectionMethod::Survey),
                record("survey", 0.5, CollectionMethod::Survey),
            ])
            .unwrap();
        assert!(
            (duplicated - lone).abs() < 1e-12,
            "same source is not evidence"
        );
    }

    #[test]
    fn same_source_takes_best_record() {
        let a = Assigner::default();
        let c = a
            .assess(&[
                record("s", 0.8, CollectionMethod::Survey),
                record("s", 0.8, CollectionMethod::Audited),
            ])
            .unwrap();
        assert!((c - 0.8).abs() < 1e-12);
    }

    #[test]
    fn result_stays_in_unit_interval() {
        let a = Assigner::new(365.0, 1.0).unwrap();
        let records: Vec<_> = (0..20)
            .map(|i| record(&format!("s{i}"), 0.95, CollectionMethod::Audited))
            .collect();
        let c = a.assess(&records).unwrap();
        assert!(c <= 1.0 && c > 0.95);
    }

    #[test]
    fn zero_corroboration_keeps_best_only() {
        let a = Assigner::new(365.0, 0.0).unwrap();
        let c = a
            .assess(&[
                record("a", 0.6, CollectionMethod::Audited),
                record("b", 0.5, CollectionMethod::Audited),
            ])
            .unwrap();
        assert!((c - 0.6).abs() < 1e-12);
    }

    #[test]
    fn errors() {
        assert_eq!(
            Assigner::default().assess(&[]).unwrap_err(),
            ProvenanceError::NoRecords
        );
        assert!(Assigner::new(0.0, 0.5).is_err());
        assert!(Assigner::new(10.0, 1.5).is_err());
    }
}
