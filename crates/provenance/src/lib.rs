//! Provenance-based confidence assignment — the paper's first key element.
//!
//! The paper obtains base-tuple confidences "by using techniques like those
//! proposed by Dai et al. \[5\] which determine the confidence value of a
//! data item based on various factors, such as the trustworthiness of data
//! providers and the way in which the data has been collected"
//! (Section 1). That system is external to the paper; this crate is a
//! self-contained substrate in its spirit:
//!
//! * each [`ProvenanceRecord`] contributes a *record confidence* equal to
//!   the source's trust, attenuated by every intermediate agent it passed
//!   through, by the [`CollectionMethod`]'s reliability, and by an
//!   exponential freshness decay;
//! * records from **distinct** sources corroborate each other (noisy-OR
//!   combination, damped by a configurable corroboration factor), while
//!   repeated records from the same source only count once (their best
//!   record);
//! * the result is a confidence in `[0, 1]`, ready to be stored on a base
//!   tuple.
//!
//! ```
//! use pcqe_provenance::{Assigner, CollectionMethod, ProvenanceRecord, Source};
//!
//! let registry = Source::new("cancer-registry", 0.9).unwrap();
//! let survey = Source::new("patient-survey", 0.5).unwrap();
//! let assigner = Assigner::default();
//!
//! let lone = assigner.assess(&[
//!     ProvenanceRecord::new(survey.clone(), CollectionMethod::Survey),
//! ]).unwrap();
//! let corroborated = assigner.assess(&[
//!     ProvenanceRecord::new(survey, CollectionMethod::Survey),
//!     ProvenanceRecord::new(registry, CollectionMethod::Audited),
//! ]).unwrap();
//! assert!(corroborated > lone);
//! ```

pub mod assign;
pub mod error;
pub mod model;

pub use assign::Assigner;
pub use error::ProvenanceError;
pub use model::{Agent, CollectionMethod, ProvenanceRecord, Source};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ProvenanceError>;
