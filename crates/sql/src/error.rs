//! Error type for the SQL front-end.

use pcqe_algebra::AlgebraError;
use std::fmt;

/// Errors raised while lexing, parsing or planning SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer error at a byte offset.
    Lex {
        /// Byte offset in the input.
        pos: usize,
        /// What went wrong.
        message: String,
    },
    /// Parser error at a byte offset.
    Parse {
        /// Byte offset in the input (of the offending token).
        pos: usize,
        /// What went wrong.
        message: String,
    },
    /// Planning error (name resolution, typing, schema mismatch).
    Plan(AlgebraError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            SqlError::Parse { pos, message } => {
                write!(f, "parse error at byte {pos}: {message}")
            }
            SqlError::Plan(e) => write!(f, "planning error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for SqlError {
    fn from(e: AlgebraError) -> Self {
        SqlError::Plan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_positions() {
        let e = SqlError::Parse {
            pos: 7,
            message: "expected FROM".into(),
        };
        assert!(e.to_string().contains("byte 7"));
        assert!(e.to_string().contains("FROM"));
    }
}
