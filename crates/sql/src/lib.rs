//! SQL-subset front-end for PCQE.
//!
//! The paper's users "input query information in the form ⟨Q, pu, perc⟩,
//! where Q is a normal SQL query" (Section 3.2). This crate provides the
//! `Q` part: a hand-written tokenizer, a recursive-descent parser for a
//! practical subset of SQL, and a planner that lowers the AST onto the
//! lineage-propagating algebra of `pcqe-algebra`.
//!
//! Supported grammar (joins may be chained; `,` is a cross product):
//!
//! ```text
//! query   := select (UNION select | EXCEPT select)*
//! select  := SELECT [DISTINCT|ALL] items FROM ref (JOIN ref ON expr | , ref)* [WHERE expr]
//! items   := * | expr [AS name] (, expr [AS name])*
//! ref     := table [[AS] alias]
//! ```
//!
//! ```
//! use pcqe_sql::parse_and_plan;
//! use pcqe_storage::{Catalog, Column, DataType, Schema, Value};
//! use pcqe_algebra::execute;
//!
//! let mut catalog = Catalog::new();
//! catalog.create_table("t", Schema::new(vec![
//!     Column::new("x", DataType::Int),
//! ]).unwrap()).unwrap();
//! catalog.insert("t", vec![Value::Int(3)], 0.9).unwrap();
//!
//! let plan = parse_and_plan("SELECT x FROM t WHERE x > 1", &catalog).unwrap();
//! assert_eq!(execute(&plan, &catalog).unwrap().len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::Statement;
pub use error::SqlError;
pub use parser::{parse, parse_statement};
pub use planner::{literal_row, plan_query};

use pcqe_algebra::Plan;
use pcqe_storage::Catalog;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Parse a SQL string and lower it to an executable plan in one call.
pub fn parse_and_plan(sql: &str, catalog: &Catalog) -> Result<Plan> {
    let query = parse(sql)?;
    plan_query(&query, catalog)
}
