//! SQL tokenizer.

use crate::error::SqlError;
use crate::Result;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Real(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
}

/// A token plus the byte offset where it starts (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    pos: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    pos: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    pos: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    pos: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    pos: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Spanned {
                    token: Token::Slash,
                    pos: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Spanned {
                    token: Token::Plus,
                    pos: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Spanned {
                    token: Token::Minus,
                    pos: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned {
                    token: Token::Semicolon,
                    pos: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned {
                    token: Token::Eq,
                    pos: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ne,
                        pos: start,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        pos: start,
                        message: "unexpected `!`".into(),
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Spanned {
                        token: Token::Le,
                        pos: start,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Spanned {
                        token: Token::Ne,
                        pos: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        pos: start,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        pos: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        pos: start,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                pos: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            // Multi-byte UTF-8 is copied verbatim.
                            let ch_len = utf8_len(b);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    pos: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut end = i;
                let mut is_real = false;
                while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                    end += 1;
                }
                if end < bytes.len()
                    && bytes[end] == b'.'
                    && end + 1 < bytes.len()
                    && (bytes[end + 1] as char).is_ascii_digit()
                {
                    is_real = true;
                    end += 1;
                    while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                        end += 1;
                    }
                }
                if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
                    let mut j = end + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_real = true;
                        end = j;
                        while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                            end += 1;
                        }
                    }
                }
                let text = &input[i..end];
                let token = if is_real {
                    Token::Real(text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: format!("bad real literal `{text}`"),
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        pos: start,
                        message: format!("bad integer literal `{text}`"),
                    })?)
                };
                tokens.push(Spanned { token, pos: start });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let ch = bytes[end] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Ident(input[i..end].to_owned()),
                    pos: start,
                });
                i = end;
            }
            other => {
                return Err(SqlError::Lex {
                    pos: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_and_symbols() {
        assert_eq!(
            toks("SELECT * FROM t WHERE x >= 2;"),
            vec![
                Token::Ident("SELECT".into()),
                Token::Star,
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("x".into()),
                Token::Ge,
                Token::Int(2),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn numbers_int_real_exponent() {
        assert_eq!(
            toks("1 2.5 3e2 4.5E-1"),
            vec![
                Token::Int(1),
                Token::Real(2.5),
                Token::Real(300.0),
                Token::Real(0.45),
            ]
        );
        // A trailing dot is not part of the number.
        assert_eq!(toks("1."), vec![Token::Int(1), Token::Dot]);
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        assert_eq!(
            toks("'it''s' 'héllo'"),
            vec![Token::Str("it's".into()), Token::Str("héllo".into())]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = <> !="),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- the works\n x"),
            vec![Token::Ident("SELECT".into()), Token::Ident("x".into())]
        );
    }

    #[test]
    fn errors_carry_positions() {
        match tokenize("SELECT @") {
            Err(SqlError::Lex { pos, .. }) => assert_eq!(pos, 7),
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(tokenize("'open").is_err());
        assert!(tokenize("!x").is_err());
    }
}
