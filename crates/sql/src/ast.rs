//! Abstract syntax tree for the SQL subset.

use pcqe_storage::DataType;

/// A complete statement: a query, or DDL/DML.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` (possibly with set operators).
    Query(Query),
    /// `CREATE TABLE name (col TYPE, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `INSERT INTO name VALUES (…), … [WITH CONFIDENCE c]`.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Expr>>,
        /// Per-row confidence; defaults to `1.0` when omitted.
        confidence: Option<f64>,
    },
}

/// One column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

/// A full query: one `SELECT` block optionally combined with others by set
/// operators (left-associative), optionally ordered and limited.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A plain `SELECT`.
    Select(Select),
    /// `left UNION right` (set semantics).
    Union(Box<Query>, Box<Query>),
    /// `left EXCEPT right` (set difference).
    Except(Box<Query>, Box<Query>),
    /// `query ORDER BY … [LIMIT n]` — keys resolve against the query's
    /// *output* schema, per SQL semantics.
    Ordered {
        /// The underlying query.
        input: Box<Query>,
        /// Sort keys in priority order (empty when only LIMIT was given).
        keys: Vec<OrderItem>,
        /// Optional row limit.
        limit: Option<usize>,
    },
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Key expression (resolved against the output schema).
    pub expr: Expr,
    /// `DESC` when true.
    pub descending: bool,
}

/// A `SELECT … FROM … [WHERE …] [GROUP BY …] [HAVING …]` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` merges duplicate rows (OR-lineage); plain `SELECT` keeps
    /// bag semantics.
    pub distinct: bool,
    /// The projection list; empty means `*`.
    pub items: Vec<SelectItem>,
    /// First table plus any comma-separated cross-product tables.
    pub from: Vec<TableRef>,
    /// `JOIN … ON …` clauses applied left-to-right after `from[0]`.
    pub joins: Vec<JoinClause>,
    /// Optional `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` key expressions (empty = no grouping unless an
    /// aggregate appears in the projection).
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate, resolved against the aggregate output columns.
    pub having: Option<Expr>,
}

/// One projection item: an expression and an optional output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Output column name, if given with `AS`.
    pub alias: Option<String>,
}

/// A base-table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias, if given.
    pub alias: Option<String>,
}

/// One `JOIN table ON predicate` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The join predicate.
    pub on: Expr,
}

/// Binary operators in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `LIKE`
    Like,
}

/// An expression in the surface syntax (names not yet resolved).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified (`t.x`).
    Column {
        /// Table qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `NULL`.
    Null,
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Aggregate call: `COUNT(*)` has no argument, everything else does.
    /// Only valid as a top-level projection item or inside `HAVING`.
    Agg {
        /// The aggregate function.
        func: pcqe_algebra::plan::AggFunc,
        /// The argument; `None` only for `COUNT(*)`.
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(qualifier: Option<&str>, name: &str) -> Expr {
        Expr::Column {
            qualifier: qualifier.map(str::to_owned),
            name: name.to_owned(),
        }
    }

    /// A default output name for unaliased projection items: the bare
    /// column name for column references, the lower-cased function name
    /// for aggregates, `expr` otherwise.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Agg { func, .. } => func.name().to_ascii_lowercase(),
            _ => "expr".to_owned(),
        }
    }

    /// Does the expression contain an aggregate call anywhere?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) | Expr::Neg(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_names() {
        assert_eq!(Expr::col(Some("t"), "x").default_name(), "x");
        assert_eq!(Expr::Int(1).default_name(), "expr");
    }
}
