//! Recursive-descent parser.

use crate::ast::{
    BinOp, ColumnDef, Expr, JoinClause, OrderItem, Query, Select, SelectItem, Statement, TableRef,
};
use crate::error::SqlError;
use crate::lexer::{tokenize, Spanned, Token};
use crate::Result;
use pcqe_storage::DataType;

/// Parse a SQL string into a [`Query`].
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
        depth: 0,
    };
    let q = p.query()?;
    p.eat_if(&Token::Semicolon);
    if let Some(t) = p.peek() {
        return Err(p.err_at(t.pos, "unexpected trailing input"));
    }
    Ok(q)
}

/// Parse a SQL string into a [`Statement`] (query, `CREATE TABLE`, or
/// `INSERT … [WITH CONFIDENCE c]`).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
        depth: 0,
    };
    let stmt = if p.peek_kw("CREATE") {
        p.create_table()?
    } else if p.peek_kw("INSERT") {
        p.insert()?
    } else {
        Statement::Query(p.query()?)
    };
    p.eat_if(&Token::Semicolon);
    if let Some(t) = p.peek() {
        return Err(p.err_at(t.pos, "unexpected trailing input"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
    depth: usize,
}

/// Maximum expression nesting depth; beyond this the parser reports an
/// error instead of risking the stack.
const MAX_EXPR_DEPTH: usize = 128;

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> SqlError {
        let pos = self.peek().map(|t| t.pos).unwrap_or(self.input_len);
        SqlError::Parse {
            pos,
            message: message.into(),
        }
    }

    fn err_at(&self, pos: usize, message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            pos,
            message: message.into(),
        }
    }

    /// Is the next token the given keyword (case-insensitive)?
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Spanned { token: Token::Ident(s), .. }) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the next token if it is the given keyword.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kw}")))
        }
    }

    fn eat_if(&mut self, token: &Token) -> bool {
        if self.peek().map(|t| &t.token) == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: Token, what: &str) -> Result<()> {
        if self.eat_if(&token) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    /// Take an identifier that is not a reserved keyword.
    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) if !is_reserved(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err_here(format!("expected {what}"))),
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let name = self.ident("table name")?;
        self.expect(Token::LParen, "`(`")?;
        let mut columns = vec![self.column_def()?];
        while self.eat_if(&Token::Comma) {
            columns.push(self.column_def()?);
        }
        self.expect(Token::RParen, "`)`")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn column_def(&mut self) -> Result<ColumnDef> {
        let name = self.ident("column name")?;
        let ty = self.ident("column type")?;
        let data_type = match ty.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => DataType::Int,
            "REAL" | "FLOAT" | "DOUBLE" => DataType::Real,
            "TEXT" | "STRING" | "VARCHAR" | "CHAR" => DataType::Text,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            other => {
                return Err(self.err_here(format!("unknown column type `{other}`")));
            }
        };
        Ok(ColumnDef { name, data_type })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident("table name")?;
        self.expect_kw("VALUES")?;
        let mut rows = vec![self.value_row()?];
        while self.eat_if(&Token::Comma) {
            rows.push(self.value_row()?);
        }
        let confidence = if self.eat_kw("WITH") {
            self.expect_kw("CONFIDENCE")?;
            let pos = self.peek().map(|t| t.pos).unwrap_or(self.input_len);
            match self.next().map(|t| t.token) {
                Some(Token::Real(r)) => Some(r),
                Some(Token::Int(i)) => Some(i as f64),
                _ => {
                    return Err(self.err_at(pos, "expected a numeric confidence"));
                }
            }
        } else {
            None
        };
        Ok(Statement::Insert {
            table,
            rows,
            confidence,
        })
    }

    fn value_row(&mut self) -> Result<Vec<Expr>> {
        self.expect(Token::LParen, "`(`")?;
        let mut row = vec![self.expr()?];
        while self.eat_if(&Token::Comma) {
            row.push(self.expr()?);
        }
        self.expect(Token::RParen, "`)`")?;
        Ok(row)
    }

    fn query(&mut self) -> Result<Query> {
        let mut left = Query::Select(self.select()?);
        loop {
            if self.eat_kw("UNION") {
                let right = Query::Select(self.select()?);
                left = Query::Union(Box::new(left), Box::new(right));
            } else if self.eat_kw("EXCEPT") {
                let right = Query::Select(self.select()?);
                left = Query::Except(Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        // ORDER BY / LIMIT apply to the whole set expression.
        let mut keys = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                keys.push(OrderItem { expr, descending });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            let pos = self.peek().map(|t| t.pos).unwrap_or(self.input_len);
            match self.next().map(|t| t.token) {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.err_at(pos, "expected a non-negative LIMIT count")),
            }
        } else {
            None
        };
        if !keys.is_empty() || limit.is_some() {
            left = Query::Ordered {
                input: Box::new(left),
                keys,
                limit,
            };
        }
        Ok(left)
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let items = if self.eat_if(&Token::Star) {
            Vec::new()
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat_if(&Token::Comma) {
                items.push(self.select_item()?);
            }
            items
        };
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        let mut joins = Vec::new();
        loop {
            if self.eat_if(&Token::Comma) {
                from.push(self.table_ref()?);
            } else if self.eat_kw("JOIN") || {
                // INNER JOIN
                if self.peek_kw("INNER") {
                    let save = self.pos;
                    self.pos += 1;
                    if self.eat_kw("JOIN") {
                        true
                    } else {
                        self.pos = save;
                        false
                    }
                } else {
                    false
                }
            } {
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                joins.push(JoinClause { table, on });
            } else {
                break;
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_if(&Token::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            joins,
            selection,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident("alias after AS")?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident("table name")?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident("alias after AS")?)
        } else {
            // Bare alias: `FROM Proposal p`.
            match self.peek() {
                Some(Spanned {
                    token: Token::Ident(s),
                    ..
                }) if !is_reserved(s) => {
                    let s = s.clone();
                    self.pos += 1;
                    Some(s)
                }
                _ => None,
            }
        };
        Ok(TableRef { table, alias })
    }

    fn expr(&mut self) -> Result<Expr> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.err_here(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        self.depth += 1;
        let out = self.or_expr();
        self.depth -= 1;
        out
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        // Postfix predicate forms first: IS [NOT] NULL, [NOT] BETWEEN,
        // [NOT] IN, [NOT] LIKE.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = {
            // NOT here only applies to BETWEEN/IN/LIKE; bare `x NOT` is an
            // error reported by the expect below.
            let save = self.pos;
            if self.eat_kw("NOT") {
                if self.peek_kw("BETWEEN") || self.peek_kw("IN") || self.peek_kw("LIKE") {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_kw("BETWEEN") {
            // Desugar: x BETWEEN a AND b → x >= a AND x <= b.
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            let range = Expr::Binary {
                op: BinOp::And,
                left: Box::new(Expr::Binary {
                    op: BinOp::Ge,
                    left: Box::new(left.clone()),
                    right: Box::new(lo),
                }),
                right: Box::new(Expr::Binary {
                    op: BinOp::Le,
                    left: Box::new(left),
                    right: Box::new(hi),
                }),
            };
            return Ok(if negated {
                Expr::Not(Box::new(range))
            } else {
                range
            });
        }
        if self.eat_kw("IN") {
            // Desugar: x IN (a, b) → x = a OR x = b.
            self.expect(Token::LParen, "`(`")?;
            let mut alternatives = vec![self.add_expr()?];
            while self.eat_if(&Token::Comma) {
                alternatives.push(self.add_expr()?);
            }
            self.expect(Token::RParen, "`)`")?;
            let mut disjunction: Option<Expr> = None;
            for alt in alternatives {
                let eq = Expr::Binary {
                    op: BinOp::Eq,
                    left: Box::new(left.clone()),
                    right: Box::new(alt),
                };
                disjunction = Some(match disjunction {
                    None => eq,
                    Some(d) => Expr::Binary {
                        op: BinOp::Or,
                        left: Box::new(d),
                        right: Box::new(eq),
                    },
                });
            }
            let Some(set) = disjunction else {
                return Err(self.err_here("empty IN list"));
            };
            return Ok(if negated {
                Expr::Not(Box::new(set))
            } else {
                set
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.add_expr()?;
            let like = Expr::Binary {
                op: BinOp::Like,
                left: Box::new(left),
                right: Box::new(pattern),
            };
            return Ok(if negated {
                Expr::Not(Box::new(like))
            } else {
                like
            });
        }
        if negated {
            return Err(self.err_here("expected BETWEEN, IN or LIKE after NOT"));
        }
        let op = match self.peek().map(|t| &t.token) {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            })
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.token) {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.token) {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_if(&Token::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let Some(t) = self.next() else {
            return Err(self.err_here("unexpected end of input"));
        };
        match t.token {
            Token::Int(i) => Ok(Expr::Int(i)),
            Token::Real(r) => Ok(Expr::Real(r)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(e)
            }
            Token::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Expr::Bool(true)),
            Token::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Expr::Bool(false)),
            Token::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Expr::Null),
            Token::Ident(s)
                if agg_func(&s).is_some()
                    && self.peek().map(|t| &t.token) == Some(&Token::LParen) =>
            {
                // The match guard established `agg_func(&s).is_some()`; the
                // impossible miss becomes a parse error, not a panic.
                let func = match agg_func(&s) {
                    Some(f) => f,
                    None => return Err(self.err_here("expected an aggregate function")),
                };
                self.expect(Token::LParen, "`(`")?;
                let arg = if func == pcqe_algebra::plan::AggFunc::Count && self.eat_if(&Token::Star)
                {
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::Agg { func, arg })
            }
            Token::Ident(s) if !is_reserved(&s) => {
                if self.eat_if(&Token::Dot) {
                    let name = self.ident("column name after `.`")?;
                    Ok(Expr::Column {
                        qualifier: Some(s),
                        name,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name: s,
                    })
                }
            }
            other => Err(self.err_at(t.pos, format!("unexpected token {other:?}"))),
        }
    }
}

/// Keywords that cannot be used as bare identifiers.
fn is_reserved(s: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "DISTINCT", "ALL", "FROM", "WHERE", "JOIN", "INNER", "ON", "AS", "AND", "OR",
        "NOT", "UNION", "EXCEPT", "TRUE", "FALSE", "NULL", "ORDER", "LIMIT", "GROUP", "HAVING",
    ];
    RESERVED.iter().any(|k| k.eq_ignore_ascii_case(s))
}

/// Map an identifier to an aggregate function, if it names one.
fn agg_func(s: &str) -> Option<pcqe_algebra::plan::AggFunc> {
    use pcqe_algebra::plan::AggFunc;
    let f = match s.to_ascii_uppercase().as_str() {
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "AVG" => AggFunc::Avg,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        _ => return None,
    };
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse("SELECT * FROM t").unwrap();
        let Query::Select(s) = q else {
            panic!("expected select")
        };
        assert!(s.items.is_empty());
        assert_eq!(s.from[0].table, "t");
        assert!(!s.distinct);
    }

    #[test]
    fn distinct_projection_and_aliases() {
        let q = parse("SELECT DISTINCT c.company AS name, income FROM CompanyInfo c").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(s.distinct);
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.items[0].alias.as_deref(), Some("name"));
        assert_eq!(s.items[0].expr, Expr::col(Some("c"), "company"));
        assert_eq!(s.from[0].alias.as_deref(), Some("c"));
    }

    #[test]
    fn joins_and_where() {
        let q = parse(
            "SELECT DISTINCT CompanyInfo.company, income \
             FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
             WHERE funding < 1000000.0",
        )
        .unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.table, "CompanyInfo");
        assert!(s.selection.is_some());
    }

    #[test]
    fn inner_join_keyword() {
        let q = parse("SELECT * FROM a INNER JOIN b ON a.x = b.x").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.joins.len(), 1);
    }

    #[test]
    fn cross_product_by_comma() {
        let q = parse("SELECT * FROM a, b WHERE a.x = b.x").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.from.len(), 2);
    }

    #[test]
    fn operator_precedence() {
        // a OR b AND c parses as a OR (b AND c)
        let q = parse("SELECT * FROM t WHERE a OR b AND c").unwrap();
        let Query::Select(s) = q else { panic!() };
        let Some(Expr::Binary {
            op: BinOp::Or,
            right,
            ..
        }) = s.selection
        else {
            panic!("expected OR at top");
        };
        assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));

        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let q = parse("SELECT * FROM t WHERE x = 1 + 2 * 3").unwrap();
        let Query::Select(s) = q else { panic!() };
        let Some(Expr::Binary {
            op: BinOp::Eq,
            right,
            ..
        }) = s.selection
        else {
            panic!()
        };
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = *right
        else {
            panic!("expected + under =");
        };
        assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn union_and_except_are_left_associative() {
        let q = parse("SELECT * FROM a UNION SELECT * FROM b EXCEPT SELECT * FROM c").unwrap();
        assert!(matches!(q, Query::Except(_, _)));
        let Query::Except(l, _) = q else { panic!() };
        assert!(matches!(*l, Query::Union(_, _)));
    }

    #[test]
    fn parenthesised_predicates_and_not() {
        let q = parse("SELECT * FROM t WHERE NOT (x = 1 OR y = 2)").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(s.selection, Some(Expr::Not(_))));
    }

    #[test]
    fn literals() {
        let q = parse("SELECT * FROM t WHERE s = 'it''s' AND b = TRUE AND n = NULL").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert!(s.selection.is_some());
    }

    #[test]
    fn negative_numbers() {
        let q = parse("SELECT * FROM t WHERE x > -5").unwrap();
        let Query::Select(s) = q else { panic!() };
        let Some(Expr::Binary { right, .. }) = s.selection else {
            panic!()
        };
        assert!(matches!(*right, Expr::Neg(_)));
    }

    #[test]
    fn error_positions_and_messages() {
        assert!(matches!(parse("SELECT"), Err(SqlError::Parse { .. })));
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra garbage ,").is_err());
        assert!(parse("FROM t").is_err());
        // Reserved word used as a table name.
        assert!(parse("SELECT * FROM select").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn create_table_statement() {
        let s = parse_statement(
            "CREATE TABLE Proposal (company TEXT, funding REAL, year INT, open BOOL);",
        )
        .unwrap();
        let Statement::CreateTable { name, columns } = s else {
            panic!("expected CREATE TABLE");
        };
        assert_eq!(name, "Proposal");
        assert_eq!(columns.len(), 4);
        assert_eq!(columns[1].data_type, DataType::Real);
        assert_eq!(columns[3].data_type, DataType::Bool);
    }

    #[test]
    fn create_table_rejects_unknown_types() {
        assert!(parse_statement("CREATE TABLE t (x BLOB)").is_err());
        assert!(parse_statement("CREATE TABLE t ()").is_err());
    }

    #[test]
    fn insert_with_confidence() {
        let s =
            parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b') WITH CONFIDENCE 0.4").unwrap();
        let Statement::Insert {
            table,
            rows,
            confidence,
        } = s
        else {
            panic!("expected INSERT");
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2);
        assert_eq!(confidence, Some(0.4));
    }

    #[test]
    fn insert_without_confidence_defaults() {
        let s = parse_statement("INSERT INTO t VALUES (-3.5)").unwrap();
        let Statement::Insert {
            confidence, rows, ..
        } = s
        else {
            panic!()
        };
        assert_eq!(confidence, None);
        assert!(matches!(rows[0][0], Expr::Neg(_)));
    }

    #[test]
    fn statement_parser_accepts_queries_too() {
        let s = parse_statement("SELECT * FROM t").unwrap();
        assert!(matches!(s, Statement::Query(_)));
    }

    #[test]
    fn insert_errors() {
        assert!(parse_statement("INSERT t VALUES (1)").is_err());
        assert!(parse_statement("INSERT INTO t VALUES 1").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (1) WITH CONFIDENCE 'x'").is_err());
    }
}
