//! Lowering the AST to a `pcqe-algebra` plan.

use crate::ast::{BinOp, Expr, Query, Select, TableRef};
use crate::Result;
use pcqe_algebra::plan::SortKey;
use pcqe_algebra::{Plan, ProjItem, ScalarExpr};
use pcqe_storage::{Catalog, Schema, Value};

/// Lower a parsed [`Query`] to an executable [`Plan`].
pub fn plan_query(query: &Query, catalog: &Catalog) -> Result<Plan> {
    match query {
        Query::Select(s) => plan_select(s, catalog),
        Query::Union(l, r) => Ok(plan_query(l, catalog)?.union(plan_query(r, catalog)?)),
        Query::Except(l, r) => Ok(plan_query(l, catalog)?.difference(plan_query(r, catalog)?)),
        Query::Ordered { input, keys, limit } => {
            let mut plan = plan_query(input, catalog)?;
            if !keys.is_empty() {
                // ORDER BY keys resolve against the query's output schema.
                let schema = plan.schema(catalog)?;
                let resolved = keys
                    .iter()
                    .map(|k| {
                        Ok(SortKey {
                            expr: resolve(&k.expr, &schema)?,
                            descending: k.descending,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                plan = plan.sort(resolved);
            }
            if let Some(n) = limit {
                plan = plan.limit(*n);
            }
            Ok(plan)
        }
    }
}

fn scan_of(t: &TableRef) -> Plan {
    match &t.alias {
        Some(a) => Plan::scan_as(&t.table, a),
        None => Plan::scan(&t.table),
    }
}

fn plan_select(s: &Select, catalog: &Catalog) -> Result<Plan> {
    // FROM: first table, then comma cross products, then JOINs. The
    // parser guarantees a non-empty FROM, but the planner reports the
    // impossible case as a typed error instead of indexing (PCQE-P002).
    let (first, rest) = s
        .from
        .split_first()
        .ok_or_else(|| plan_err("SELECT without a FROM table"))?;
    let mut plan = scan_of(first);
    for extra in rest {
        plan = plan.product(scan_of(extra));
    }
    for join in &s.joins {
        let right = scan_of(&join.table);
        let combined = plan.schema(catalog)?.join(&right.schema(catalog)?);
        let predicate = resolve(&join.on, &combined)?;
        plan = plan.join(right, predicate);
    }
    // WHERE.
    if let Some(cond) = &s.selection {
        if cond.contains_aggregate() {
            return Err(plan_err("aggregates are not allowed in WHERE (use HAVING)"));
        }
        let schema = plan.schema(catalog)?;
        plan = plan.select(resolve(cond, &schema)?);
    }
    // Aggregation path: GROUP BY present, or an aggregate in the
    // projection, or HAVING.
    let is_aggregate = !s.group_by.is_empty()
        || s.having.is_some()
        || s.items.iter().any(|i| i.expr.contains_aggregate());
    if is_aggregate {
        return plan_aggregate(s, plan, catalog);
    }
    // Projection. `SELECT *` projects every input column under its bare
    // name (qualified where needed for uniqueness).
    let schema = plan.schema(catalog)?;
    let items: Vec<ProjItem> = if s.items.is_empty() {
        schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // Prefer the bare name; fall back to the qualified name if
                // the bare one is ambiguous in the input schema.
                let bare_unique = schema
                    .columns()
                    .iter()
                    .filter(|o| o.name.eq_ignore_ascii_case(&c.name))
                    .count()
                    == 1;
                let name = if bare_unique {
                    c.name.clone()
                } else {
                    c.display_name().replace('.', "_")
                };
                ProjItem::new(ScalarExpr::column(i), name)
            })
            .collect()
    } else {
        s.items
            .iter()
            .map(|item| {
                let expr = resolve(&item.expr, &schema)?;
                let name = item
                    .alias
                    .clone()
                    .unwrap_or_else(|| item.expr.default_name());
                Ok(ProjItem::new(expr, name))
            })
            .collect::<Result<Vec<_>>>()?
    };
    Ok(if s.distinct {
        plan.project(items)
    } else {
        plan.project_all(items)
    })
}

fn plan_err(message: impl Into<String>) -> crate::SqlError {
    crate::SqlError::Plan(pcqe_algebra::AlgebraError::Type(message.into()))
}

/// Plan a grouped/aggregated SELECT on top of the FROM/WHERE plan.
///
/// Restrictions (reported as planning errors): every projection item must
/// be either exactly one of the GROUP BY expressions or a single
/// aggregate call (no arithmetic around aggregates), `SELECT *` cannot be
/// grouped, and HAVING resolves against the aggregate *output* columns.
fn plan_aggregate(s: &Select, input: Plan, catalog: &Catalog) -> Result<Plan> {
    use pcqe_algebra::plan::AggItem;
    if s.items.is_empty() {
        return Err(plan_err("SELECT * cannot be combined with GROUP BY"));
    }
    let in_schema = input.schema(catalog)?;

    // Group keys, in GROUP BY order.
    let mut group_items: Vec<ProjItem> = Vec::with_capacity(s.group_by.len());
    for (i, g) in s.group_by.iter().enumerate() {
        if g.contains_aggregate() {
            return Err(plan_err("aggregates are not allowed in GROUP BY"));
        }
        // Default key names: the column name, or a positional fallback.
        let name = match g.default_name().as_str() {
            "expr" => format!("group_{i}"),
            n => n.to_owned(),
        };
        group_items.push(ProjItem::new(resolve(g, &in_schema)?, name));
    }

    // Walk the projection: group-key references and aggregate calls.
    let mut aggregates: Vec<AggItem> = Vec::new();
    // (output position → column index in the aggregate's output)
    let mut output: Vec<(usize, String)> = Vec::new();
    for item in &s.items {
        match &item.expr {
            Expr::Agg { func, arg } => {
                let resolved_arg = match arg {
                    Some(a) => {
                        if a.contains_aggregate() {
                            return Err(plan_err("nested aggregates are not allowed"));
                        }
                        Some(resolve(a, &in_schema)?)
                    }
                    None => None,
                };
                let mut name = item
                    .alias
                    .clone()
                    .unwrap_or_else(|| item.expr.default_name());
                // Keep output names unique.
                if output.iter().any(|(_, n)| n.eq_ignore_ascii_case(&name))
                    || group_items
                        .iter()
                        .any(|g| g.name.eq_ignore_ascii_case(&name))
                {
                    name = format!("{name}_{}", aggregates.len());
                }
                let idx = group_items.len() + aggregates.len();
                aggregates.push(AggItem {
                    func: *func,
                    arg: resolved_arg,
                    name: name.clone(),
                });
                output.push((idx, name));
            }
            expr if expr.contains_aggregate() => {
                return Err(plan_err(
                    "aggregates must be top-level projection items (no arithmetic around them)",
                ));
            }
            expr => {
                // Must match a GROUP BY expression syntactically.
                let pos = s.group_by.iter().position(|g| g == expr).ok_or_else(|| {
                    plan_err(format!(
                        "`{}` appears in SELECT but not in GROUP BY",
                        expr.default_name()
                    ))
                })?;
                let name = match item.alias.clone() {
                    Some(a) => a,
                    None => group_items
                        .get(pos)
                        .map(|g| g.name.clone())
                        .ok_or_else(|| plan_err("GROUP BY position out of range"))?,
                };
                output.push((pos, name));
            }
        }
    }

    let mut plan = input.aggregate(group_items, aggregates);

    // HAVING over the aggregate output columns.
    if let Some(h) = &s.having {
        let schema = plan.schema(catalog)?;
        let resolved = resolve_having(h, s, &schema)?;
        plan = plan.select(resolved);
    }

    // Re-order/rename to the SELECT list.
    let items: Vec<ProjItem> = output
        .into_iter()
        .map(|(idx, name)| ProjItem::new(ScalarExpr::column(idx), name))
        .collect();
    Ok(if s.distinct {
        plan.project(items)
    } else {
        plan.project_all(items)
    })
}

/// Resolve a HAVING predicate against the aggregate output schema.
/// Aggregate calls inside HAVING must match one of the SELECT list's
/// aggregates (same function and argument); bare columns resolve against
/// the output schema (group keys and aggregate aliases).
fn resolve_having(h: &Expr, s: &Select, schema: &Schema) -> Result<ScalarExpr> {
    Ok(match h {
        Expr::Agg { .. } => {
            // Find the matching SELECT aggregate and reference its column.
            let pos = s
                .items
                .iter()
                .position(|item| &item.expr == h)
                .ok_or_else(|| plan_err("HAVING aggregates must also appear in the SELECT list"))?;
            // Output columns are group keys then aggregates in SELECT
            // order; recover the aggregate's index among aggregates.
            let agg_rank = s
                .items
                .iter()
                .take(pos)
                .filter(|i| matches!(i.expr, Expr::Agg { .. }))
                .count();
            let group_count = s.group_by.len();
            ScalarExpr::column(group_count + agg_rank)
        }
        Expr::Binary { op, left, right } => {
            let l = resolve_having(left, s, schema)?;
            let r = resolve_having(right, s, schema)?;
            match op {
                BinOp::Eq => l.eq(r),
                BinOp::Ne => l.ne(r),
                BinOp::Lt => l.lt(r),
                BinOp::Le => l.le(r),
                BinOp::Gt => l.gt(r),
                BinOp::Ge => l.ge(r),
                BinOp::And => l.and(r),
                BinOp::Or => l.or(r),
                BinOp::Add => l.add(r),
                BinOp::Sub => l.sub(r),
                BinOp::Mul => l.mul(r),
                BinOp::Div => l.div(r),
                BinOp::Like => ScalarExpr::Binary {
                    op: pcqe_algebra::BinaryOp::Like,
                    left: Box::new(l),
                    right: Box::new(r),
                },
            }
        }
        Expr::Not(e) => resolve_having(e, s, schema)?.not(),
        Expr::Neg(e) => ScalarExpr::Unary {
            op: pcqe_algebra::UnaryOp::Neg,
            expr: Box::new(resolve_having(e, s, schema)?),
        },
        other => resolve(other, schema)?,
    })
}

/// Evaluate a row of literal expressions (an `INSERT … VALUES` row) to
/// concrete values. Column references are rejected, arithmetic on
/// literals is folded.
pub fn literal_row(row: &[Expr]) -> Result<Vec<Value>> {
    let empty = Schema::new(vec![]).map_err(pcqe_algebra::AlgebraError::from)?;
    row.iter()
        .map(|e| {
            let resolved = resolve(e, &empty)?;
            resolved.eval(&[]).map_err(Into::into)
        })
        .collect()
}

/// Resolve a surface expression against a schema, producing a positional
/// [`ScalarExpr`].
pub fn resolve(expr: &Expr, schema: &Schema) -> Result<ScalarExpr> {
    Ok(match expr {
        Expr::Column { qualifier, name } => ScalarExpr::named(schema, qualifier.as_deref(), name)?,
        Expr::Int(i) => ScalarExpr::literal(Value::Int(*i)),
        Expr::Real(r) => ScalarExpr::literal(Value::Real(*r)),
        Expr::Str(s) => ScalarExpr::literal(Value::text(s.clone())),
        Expr::Bool(b) => ScalarExpr::literal(Value::Bool(*b)),
        Expr::Null => ScalarExpr::literal(Value::Null),
        Expr::Binary { op, left, right } => {
            let l = resolve(left, schema)?;
            let r = resolve(right, schema)?;
            match op {
                BinOp::Eq => l.eq(r),
                BinOp::Ne => l.ne(r),
                BinOp::Lt => l.lt(r),
                BinOp::Le => l.le(r),
                BinOp::Gt => l.gt(r),
                BinOp::Ge => l.ge(r),
                BinOp::And => l.and(r),
                BinOp::Or => l.or(r),
                BinOp::Add => l.add(r),
                BinOp::Sub => l.sub(r),
                BinOp::Mul => l.mul(r),
                BinOp::Div => l.div(r),
                BinOp::Like => pcqe_algebra::ScalarExpr::Binary {
                    op: pcqe_algebra::BinaryOp::Like,
                    left: Box::new(l),
                    right: Box::new(r),
                },
            }
        }
        Expr::Not(e) => resolve(e, schema)?.not(),
        Expr::Neg(e) => pcqe_algebra::ScalarExpr::Unary {
            op: pcqe_algebra::UnaryOp::Neg,
            expr: Box::new(resolve(e, schema)?),
        },
        Expr::IsNull { expr, negated } => pcqe_algebra::ScalarExpr::Unary {
            op: if *negated {
                pcqe_algebra::UnaryOp::IsNotNull
            } else {
                pcqe_algebra::UnaryOp::IsNull
            },
            expr: Box::new(resolve(expr, schema)?),
        },
        Expr::Agg { func, .. } => {
            return Err(plan_err(format!(
                "{} is only allowed in the SELECT list or HAVING",
                func.name()
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use pcqe_algebra::execute;
    use pcqe_lineage::{Evaluator, VarId};
    use pcqe_storage::{Column, DataType, TupleId};

    /// The paper's Tables 1–2, with the exact confidences of Section 3.1.
    fn paper_db() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "Proposal",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("proposal", DataType::Text),
                Column::new("funding", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        c.create_table(
            "CompanyInfo",
            Schema::new(vec![
                Column::new("company", DataType::Text),
                Column::new("income", DataType::Real),
            ])
            .unwrap(),
        )
        .unwrap();
        // id 0: big proposal, filtered out by funding < 1M.
        c.insert(
            "Proposal",
            vec![
                Value::text("MegaCorp"),
                Value::text("factory"),
                Value::Real(5_000_000.0),
            ],
            0.9,
        )
        .unwrap();
        // ids 1, 2: the paper's tuples 02 (p=0.3) and 03 (p=0.4).
        c.insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v1"),
                Value::Real(800_000.0),
            ],
            0.3,
        )
        .unwrap();
        c.insert(
            "Proposal",
            vec![
                Value::text("SkyCam"),
                Value::text("drone v2"),
                Value::Real(900_000.0),
            ],
            0.4,
        )
        .unwrap();
        // id 3: the paper's tuple 13 (p=0.1).
        c.insert(
            "CompanyInfo",
            vec![Value::text("SkyCam"), Value::Real(500_000.0)],
            0.1,
        )
        .unwrap();
        c
    }

    fn run_scored(sql: &str, catalog: &Catalog) -> Vec<(Vec<Value>, f64)> {
        let plan = plan_query(&parse(sql).unwrap(), catalog).unwrap();
        let rs = execute(&plan, catalog).unwrap();
        let probs = |v: VarId| catalog.confidence(TupleId(v.0));
        rs.score(&probs, &Evaluator::default())
            .unwrap()
            .into_iter()
            .map(|s| (s.tuple.values().to_vec(), s.confidence))
            .collect()
    }

    #[test]
    fn paper_query_end_to_end() {
        let c = paper_db();
        let rows = run_scored(
            "SELECT DISTINCT CompanyInfo.company, income \
             FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
             WHERE funding < 1000000.0",
            &c,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0[0], Value::text("SkyCam"));
        assert!((rows[0].1 - 0.058).abs() < 1e-12);
    }

    #[test]
    fn select_star_expands_columns() {
        let c = paper_db();
        let plan = plan_query(&parse("SELECT * FROM CompanyInfo").unwrap(), &c).unwrap();
        let rs = execute(&plan, &c).unwrap();
        assert_eq!(rs.schema().arity(), 2);
        assert_eq!(rs.schema().columns()[0].name, "company");
    }

    #[test]
    fn select_star_disambiguates_joined_duplicates() {
        let c = paper_db();
        let plan = plan_query(
            &parse(
                "SELECT * FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company",
            )
            .unwrap(),
            &c,
        )
        .unwrap();
        let schema = plan.schema(&c).unwrap();
        let names: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"Proposal_company"));
        assert!(names.contains(&"CompanyInfo_company"));
        assert!(names.contains(&"funding"));
    }

    #[test]
    fn aliases_rename_tables_and_columns() {
        let c = paper_db();
        let rows = run_scored(
            "SELECT p.company AS who FROM Proposal p WHERE p.funding > 1000000.0",
            &c,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0[0], Value::text("MegaCorp"));
    }

    #[test]
    fn cross_product_with_where_equals_join() {
        let c = paper_db();
        let a = run_scored(
            "SELECT DISTINCT CompanyInfo.company, income \
             FROM Proposal, CompanyInfo \
             WHERE Proposal.company = CompanyInfo.company AND funding < 1000000.0",
            &c,
        );
        let b = run_scored(
            "SELECT DISTINCT CompanyInfo.company, income \
             FROM Proposal JOIN CompanyInfo ON Proposal.company = CompanyInfo.company \
             WHERE funding < 1000000.0",
            &c,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn union_and_except_plans() {
        let c = paper_db();
        let union = run_scored(
            "SELECT company FROM Proposal UNION SELECT company FROM CompanyInfo",
            &c,
        );
        // MegaCorp, SkyCam (merged across both sides).
        assert_eq!(union.len(), 2);
        let except = run_scored(
            "SELECT company FROM Proposal EXCEPT SELECT company FROM CompanyInfo",
            &c,
        );
        assert_eq!(except.len(), 2, "difference keeps uncertain rows");
        let sky = except
            .iter()
            .find(|(v, _)| v[0] == Value::text("SkyCam"))
            .unwrap();
        // P(SkyCam ∈ Proposal∖CompanyInfo) = P(02∨03)·(1−p13)
        let expected = (0.3 + 0.4 - 0.3 * 0.4) * 0.9;
        assert!((sky.1 - expected).abs() < 1e-12);
    }

    #[test]
    fn bag_select_keeps_duplicates() {
        let c = paper_db();
        let rows = run_scored("SELECT company FROM Proposal", &c);
        assert_eq!(rows.len(), 3);
        let rows = run_scored("SELECT DISTINCT company FROM Proposal", &c);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unknown_names_error_at_planning() {
        let c = paper_db();
        assert!(plan_query(&parse("SELECT nope FROM Proposal").unwrap(), &c).is_err());
        assert!(plan_query(&parse("SELECT * FROM Missing").unwrap(), &c).is_err());
        assert!(plan_query(
            &parse("SELECT * FROM Proposal WHERE CompanyInfo.income > 0").unwrap(),
            &c
        )
        .is_err());
    }

    #[test]
    fn like_between_in_and_null_predicates() {
        let mut c = paper_db();
        c.insert("CompanyInfo", vec![Value::text("NullCo"), Value::Null], 0.9)
            .unwrap();
        // LIKE.
        let rows = run_scored("SELECT company FROM Proposal WHERE company LIKE 'Sky%'", &c);
        assert_eq!(rows.len(), 2);
        let rows = run_scored(
            "SELECT company FROM Proposal WHERE company NOT LIKE '%Corp'",
            &c,
        );
        assert_eq!(rows.len(), 2);
        // BETWEEN (inclusive bounds).
        let rows = run_scored(
            "SELECT company FROM Proposal WHERE funding BETWEEN 800000.0 AND 900000.0",
            &c,
        );
        assert_eq!(rows.len(), 2);
        let rows = run_scored(
            "SELECT company FROM Proposal WHERE funding NOT BETWEEN 0 AND 1000000",
            &c,
        );
        assert_eq!(rows.len(), 1);
        // IN lists.
        let rows = run_scored(
            "SELECT company FROM Proposal WHERE company IN ('MegaCorp', 'Nobody')",
            &c,
        );
        assert_eq!(rows.len(), 1);
        let rows = run_scored(
            "SELECT company FROM Proposal WHERE company NOT IN ('MegaCorp')",
            &c,
        );
        assert_eq!(rows.len(), 2);
        // IS NULL / IS NOT NULL.
        let rows = run_scored("SELECT company FROM CompanyInfo WHERE income IS NULL", &c);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0[0], Value::text("NullCo"));
        let rows = run_scored(
            "SELECT company FROM CompanyInfo WHERE income IS NOT NULL",
            &c,
        );
        assert_eq!(rows.len(), 1);
        // Errors: dangling NOT, bad IS.
        assert!(parse("SELECT * FROM t WHERE x NOT 1").is_err());
        assert!(parse("SELECT * FROM t WHERE x IS 1").is_err());
        assert!(parse("SELECT * FROM t WHERE x IN ()").is_err());
    }

    #[test]
    fn group_by_with_aggregates() {
        let c = paper_db();
        let rows = run_scored(
            "SELECT company, COUNT(*) AS n, SUM(funding) AS total \
             FROM Proposal GROUP BY company ORDER BY company",
            &c,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].0,
            vec![
                Value::text("MegaCorp"),
                Value::Int(1),
                Value::Real(5_000_000.0)
            ]
        );
        assert_eq!(rows[1].0[1], Value::Int(2));
        // Group confidence = P(∃ member): SkyCam = p02 ∨ p03.
        assert!((rows[1].1 - (0.3 + 0.4 - 0.12)).abs() < 1e-12);
    }

    #[test]
    fn global_aggregates_without_group_by() {
        let c = paper_db();
        let rows = run_scored(
            "SELECT COUNT(*) AS n, AVG(funding) AS a, MIN(funding) AS lo, MAX(funding) AS hi \
             FROM Proposal",
            &c,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0[0], Value::Int(3));
        assert_eq!(rows[0].0[2], Value::Real(800_000.0));
        assert_eq!(rows[0].0[3], Value::Real(5_000_000.0));
    }

    #[test]
    fn having_filters_groups() {
        let c = paper_db();
        let rows = run_scored(
            "SELECT company, COUNT(*) AS n FROM Proposal \
             GROUP BY company HAVING COUNT(*) > 1",
            &c,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0[0], Value::text("SkyCam"));
        // HAVING can also reference output names.
        let rows = run_scored(
            "SELECT company, COUNT(*) AS n FROM Proposal GROUP BY company HAVING n > 1",
            &c,
        );
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn aggregate_planning_errors() {
        let c = paper_db();
        let plan = |sql: &str| plan_query(&parse(sql).unwrap(), &c);
        // Non-grouped column in SELECT.
        assert!(plan("SELECT company, funding, COUNT(*) FROM Proposal GROUP BY company").is_err());
        // Aggregate in WHERE.
        assert!(plan("SELECT company FROM Proposal WHERE COUNT(*) > 1").is_err());
        // Arithmetic around an aggregate.
        assert!(plan("SELECT SUM(funding) + 1 FROM Proposal").is_err());
        // SELECT * with GROUP BY.
        assert!(plan("SELECT * FROM Proposal GROUP BY company").is_err());
        // HAVING aggregate not in the SELECT list.
        assert!(plan(
            "SELECT company, COUNT(*) FROM Proposal GROUP BY company HAVING SUM(funding) > 1"
        )
        .is_err());
        // Nested aggregate.
        assert!(plan("SELECT SUM(COUNT(*)) FROM Proposal").is_err());
        // GROUP BY an aggregate.
        assert!(plan("SELECT COUNT(*) FROM Proposal GROUP BY COUNT(*)").is_err());
    }

    #[test]
    fn count_is_still_a_valid_column_name() {
        let mut c = Catalog::new();
        c.create_table(
            "t",
            Schema::new(vec![Column::new("count", DataType::Int)]).unwrap(),
        )
        .unwrap();
        c.insert("t", vec![Value::Int(5)], 0.5).unwrap();
        let rows = run_scored("SELECT count FROM t WHERE count = 5", &c);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn order_by_and_limit() {
        let c = paper_db();
        let rows = run_scored(
            "SELECT company, funding FROM Proposal ORDER BY funding DESC",
            &c,
        );
        assert_eq!(rows[0].0[0], Value::text("MegaCorp"));
        assert_eq!(rows[2].0[1], Value::Real(800_000.0));
        let rows = run_scored(
            "SELECT company, funding FROM Proposal ORDER BY funding ASC LIMIT 2",
            &c,
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0[1], Value::Real(800_000.0));
        // Multi-key: company ascending, funding descending within it.
        let rows = run_scored(
            "SELECT company, funding FROM Proposal ORDER BY company, funding DESC",
            &c,
        );
        assert_eq!(rows[0].0[0], Value::text("MegaCorp"));
        assert_eq!(rows[1].0[1], Value::Real(900_000.0));
        // LIMIT without ORDER BY.
        let rows = run_scored("SELECT company FROM Proposal LIMIT 1", &c);
        assert_eq!(rows.len(), 1);
        // ORDER BY over a UNION resolves against the output schema.
        let rows = run_scored(
            "SELECT company FROM Proposal UNION SELECT company FROM CompanyInfo \
             ORDER BY company DESC LIMIT 1",
            &c,
        );
        assert_eq!(rows[0].0[0], Value::text("SkyCam"));
        // Errors: bad key, bad limit.
        assert!(parse("SELECT * FROM t ORDER BY").is_err());
        assert!(parse("SELECT * FROM t LIMIT -1").is_err());
        assert!(plan_query(
            &parse("SELECT company FROM Proposal ORDER BY nope").unwrap(),
            &c
        )
        .is_err());
    }

    #[test]
    fn literal_rows_fold_arithmetic_and_reject_columns() {
        use crate::ast::Expr;
        let row = vec![
            Expr::Int(1),
            Expr::Binary {
                op: crate::ast::BinOp::Mul,
                left: Box::new(Expr::Int(6)),
                right: Box::new(Expr::Int(7)),
            },
            Expr::Str("x".into()),
            Expr::Neg(Box::new(Expr::Real(2.5))),
        ];
        let values = literal_row(&row).unwrap();
        assert_eq!(
            values,
            vec![
                Value::Int(1),
                Value::Int(42),
                Value::text("x"),
                Value::Real(-2.5)
            ]
        );
        assert!(literal_row(&[Expr::col(None, "oops")]).is_err());
    }

    #[test]
    fn computed_projection_items() {
        let c = paper_db();
        let rows = run_scored(
            "SELECT funding / 1000.0 AS funding_k FROM Proposal WHERE company = 'MegaCorp'",
            &c,
        );
        assert_eq!(rows[0].0[0], Value::Real(5000.0));
    }
}
