//! Seeded property suites for the Fréchet bound interval and for budget
//! exhaustion as a *typed* failure mode.
//!
//! Two contracts are pinned here:
//!
//! * `bound::bounds` returns a sound interval: for any formula the exact
//!   probability lies inside `[lower, upper]`, whatever dependence the
//!   shared variables induce.
//! * Running out of Shannon budget is an error value, never a panic:
//!   `CompiledLineage::compile` and `CircuitCache::compile` both report
//!   `LineageError::BudgetExceeded`, and they agree formula-by-formula on
//!   whether a given budget suffices (the cache's budget-parity contract).
//!
//! A third suite pins the parallel-scoring contract for *pooled* circuits:
//! `Arc`-shared compiled circuits evaluated through `pcqe_par` produce
//! bit-identical confidences at any worker-thread count.

use pcqe_lineage::{
    bounds, CircuitCache, CompiledLineage, Evaluator, Lineage, LineageError, Rng64, VarId,
};
use std::collections::BTreeMap;
use std::sync::Arc;

const MAX_VARS: u64 = 6;

/// A random lineage formula over variables `0..max_vars`, negation and
/// constants included (the same shape space as the engine-level suites).
fn random_lineage(rng: &mut Rng64, max_vars: u64, depth: u32) -> Lineage {
    if depth == 0 || rng.below_u64(4) == 0 {
        if rng.chance(0.75) {
            Lineage::var(rng.below_u64(max_vars))
        } else {
            Lineage::Const(rng.chance(0.5))
        }
    } else {
        match rng.below_u64(3) {
            0 => Lineage::not(random_lineage(rng, max_vars, depth - 1)),
            1 => Lineage::and(
                (0..rng.range_usize(1, 4))
                    .map(|_| random_lineage(rng, max_vars, depth - 1))
                    .collect(),
            ),
            _ => Lineage::or(
                (0..rng.range_usize(1, 4))
                    .map(|_| random_lineage(rng, max_vars, depth - 1))
                    .collect(),
            ),
        }
    }
}

fn random_probs(rng: &mut Rng64) -> BTreeMap<VarId, f64> {
    (0..MAX_VARS).map(|v| (VarId(v), rng.next_f64())).collect()
}

#[test]
fn frechet_bounds_bracket_the_exact_probability() {
    let mut rng = Rng64::seed_from_u64(0x00B0_0001);
    for case in 0..400 {
        let l = random_lineage(&mut rng, MAX_VARS, 4);
        let probs = random_probs(&mut rng);
        let b = bounds(&l, &probs).expect("all variables are known");
        assert!(
            (0.0..=1.0).contains(&b.lower) && (0.0..=1.0).contains(&b.upper),
            "case {case}: bounds escape the unit interval: {b:?} for {l:?}"
        );
        assert!(
            b.lower <= b.upper + 1e-12,
            "case {case}: crossed bounds {b:?} for {l:?}"
        );
        let exact = Evaluator::exact_only(1 << 20)
            .probability(&l, &probs)
            .expect("depth-4 formulas over 6 variables fit a 2^20 budget");
        assert!(
            b.lower - 1e-9 <= exact && exact <= b.upper + 1e-9,
            "case {case}: exact {exact} outside [{}, {}] for {l:?}",
            b.lower,
            b.upper
        );
    }
}

#[test]
fn exhausted_budgets_are_typed_errors_and_cache_agrees() {
    let mut rng = Rng64::seed_from_u64(0x00B0_0002);
    let mut exhausted = 0u32;
    for case in 0..200 {
        let l = random_lineage(&mut rng, MAX_VARS, 4);
        for budget in [0usize, 1, 2, 4, 8] {
            // A fresh standalone compile and a cold cache must agree on
            // success, and both must surface exhaustion as the typed
            // BudgetExceeded error — never a panic, never a wrong circuit.
            let fresh = CompiledLineage::compile(&l, budget);
            let mut cache = CircuitCache::new();
            let pooled = cache.compile(&l, budget);
            match (&fresh, &pooled) {
                (Ok(circuit), Ok(id)) => {
                    let compiled = cache.compiled(*id).expect("id just issued");
                    assert_eq!(
                        circuit.vars(),
                        compiled.vars(),
                        "case {case}: var lists diverged at budget {budget} for {l:?}"
                    );
                }
                (
                    Err(LineageError::BudgetExceeded { .. }),
                    Err(LineageError::BudgetExceeded { .. }),
                ) => exhausted += 1,
                (f, p) => panic!(
                    "case {case}: compile outcomes diverged at budget {budget} for {l:?}: \
                     fresh {f:?} vs pooled {p:?}"
                ),
            }
        }
    }
    assert!(
        exhausted > 0,
        "the generator never exhausted a budget; the suite tests nothing"
    );
}

#[test]
fn pooled_circuits_score_bit_identically_at_any_thread_count() {
    let mut rng = Rng64::seed_from_u64(0x00B0_0003);
    let mut cache = CircuitCache::new();
    let mut circuits: Vec<Arc<CompiledLineage>> = Vec::new();
    for _ in 0..120 {
        let l = random_lineage(&mut rng, MAX_VARS, 3);
        let id = cache.compile(&l, 4096).expect("generous budget");
        circuits.push(cache.compiled(id).expect("id just issued").clone());
    }
    let probs = random_probs(&mut rng);
    let lookup = |v: VarId| probs.get(&v).copied().unwrap_or(0.0);
    let sequential: Vec<f64> = circuits.iter().map(|c| c.eval_with(lookup)).collect();
    for workers in [1usize, 2, 8] {
        let par = pcqe_par::Parallelism {
            worker_threads: Some(workers),
            parallel_threshold: 1,
        };
        let batch = pcqe_par::map(&par, &circuits, |c| c.eval_with(lookup));
        for (i, (a, b)) in sequential.iter().zip(&batch).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "circuit {i} diverged at {workers} workers"
            );
        }
    }
}
