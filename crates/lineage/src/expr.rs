//! The lineage formula representation.

use std::collections::BTreeMap;
use std::fmt;

/// A lineage variable: the id of one base tuple.
///
/// In the engine this is the base tuple's global [`TupleId`]; the lineage
/// crate stays independent of the storage layer by using its own newtype
/// over the same `u64`.
///
/// [`TupleId`]: https://docs.rs/pcqe-storage
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u64);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A boolean lineage formula over base-tuple variables.
///
/// Lineage is produced by the relational operators: selections keep lineage,
/// joins AND it, set-semantic projections and unions OR the lineage of
/// merged duplicates, and difference introduces negation. The formula is
/// kept in negation-unnormalised form; [`Lineage::simplify`] flattens
/// nested connectives and folds constants.
///
/// The total order (`Ord`) is the derived structural order; it carries no
/// semantic meaning and exists so formulas can key deterministic
/// `BTreeMap`s — in particular the compile memos of
/// [`crate::cache::CircuitCache`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lineage {
    /// Constant truth value (`Const(true)` = certain).
    Const(bool),
    /// A single base tuple.
    Var(VarId),
    /// Negation.
    Not(Box<Lineage>),
    /// Conjunction of all children.
    And(Vec<Lineage>),
    /// Disjunction of all children.
    Or(Vec<Lineage>),
}

impl Lineage {
    /// A variable leaf from a raw id.
    pub fn var(id: u64) -> Lineage {
        Lineage::Var(VarId(id))
    }

    /// Certain truth (used for data with no uncertainty).
    pub fn certain() -> Lineage {
        Lineage::Const(true)
    }

    /// Conjunction; flattens trivial cases eagerly.
    pub fn and(children: Vec<Lineage>) -> Lineage {
        Lineage::And(children).simplify()
    }

    /// Disjunction; flattens trivial cases eagerly.
    pub fn or(children: Vec<Lineage>) -> Lineage {
        Lineage::Or(children).simplify()
    }

    /// Negation; folds double negation and constants eagerly.
    #[allow(clippy::should_implement_trait)]
    pub fn not(child: Lineage) -> Lineage {
        Lineage::Not(Box::new(child)).simplify()
    }

    /// Number of occurrences of each variable.
    pub fn var_counts(&self) -> BTreeMap<VarId, usize> {
        let mut counts = BTreeMap::new();
        self.collect_counts(&mut counts);
        counts
    }

    fn collect_counts(&self, counts: &mut BTreeMap<VarId, usize>) {
        match self {
            Lineage::Const(_) => {}
            Lineage::Var(v) => *counts.entry(*v).or_insert(0) += 1,
            Lineage::Not(e) => e.collect_counts(counts),
            Lineage::And(es) | Lineage::Or(es) => {
                for e in es {
                    e.collect_counts(counts);
                }
            }
        }
    }

    /// The distinct variables in the formula, in id order.
    pub fn vars(&self) -> Vec<VarId> {
        self.var_counts().into_keys().collect()
    }

    /// True if no variable occurs more than once (evaluation is then exact
    /// under independence without any Shannon expansion).
    pub fn is_read_once(&self) -> bool {
        self.var_counts().values().all(|&c| c == 1)
    }

    /// True if the formula contains negation anywhere. Negation-free
    /// lineage is monotone in every variable — the property the strategy-
    /// finding algorithms rely on (raising a base confidence can only
    /// raise a result's confidence).
    pub fn contains_not(&self) -> bool {
        match self {
            Lineage::Const(_) | Lineage::Var(_) => false,
            Lineage::Not(_) => true,
            Lineage::And(es) | Lineage::Or(es) => es.iter().any(Lineage::contains_not),
        }
    }

    /// Number of nodes in the formula tree.
    pub fn size(&self) -> usize {
        match self {
            Lineage::Const(_) | Lineage::Var(_) => 1,
            Lineage::Not(e) => 1 + e.size(),
            Lineage::And(es) | Lineage::Or(es) => 1 + es.iter().map(Lineage::size).sum::<usize>(),
        }
    }

    /// Evaluate the formula under a boolean assignment.
    pub fn eval<F: Fn(VarId) -> bool>(&self, assign: &F) -> bool {
        match self {
            Lineage::Const(b) => *b,
            Lineage::Var(v) => assign(*v),
            Lineage::Not(e) => !e.eval(assign),
            Lineage::And(es) => es.iter().all(|e| e.eval(assign)),
            Lineage::Or(es) => es.iter().any(|e| e.eval(assign)),
        }
    }

    /// Substitute a truth value for one variable, then simplify.
    pub fn condition(&self, var: VarId, value: bool) -> Lineage {
        self.substitute(var, value).simplify()
    }

    fn substitute(&self, var: VarId, value: bool) -> Lineage {
        match self {
            Lineage::Const(b) => Lineage::Const(*b),
            Lineage::Var(v) => {
                if *v == var {
                    Lineage::Const(value)
                } else {
                    Lineage::Var(*v)
                }
            }
            Lineage::Not(e) => Lineage::Not(Box::new(e.substitute(var, value))),
            Lineage::And(es) => Lineage::And(es.iter().map(|e| e.substitute(var, value)).collect()),
            Lineage::Or(es) => Lineage::Or(es.iter().map(|e| e.substitute(var, value)).collect()),
        }
    }

    /// Simplify the formula: flatten nested connectives, fold constants,
    /// collapse double negation, deduplicate repeated children, and unwrap
    /// single-child connectives. The result is logically equivalent.
    pub fn simplify(&self) -> Lineage {
        match self {
            Lineage::Const(b) => Lineage::Const(*b),
            Lineage::Var(v) => Lineage::Var(*v),
            Lineage::Not(e) => match e.simplify() {
                Lineage::Const(b) => Lineage::Const(!b),
                Lineage::Not(inner) => *inner,
                other => Lineage::Not(Box::new(other)),
            },
            Lineage::And(es) => {
                let mut out: Vec<Lineage> = Vec::with_capacity(es.len());
                for e in es {
                    match e.simplify() {
                        Lineage::Const(true) => {}
                        Lineage::Const(false) => return Lineage::Const(false),
                        Lineage::And(inner) => {
                            for i in inner {
                                if !out.contains(&i) {
                                    out.push(i);
                                }
                            }
                        }
                        other => {
                            if !out.contains(&other) {
                                out.push(other);
                            }
                        }
                    }
                }
                // Pop-then-inspect instead of len-then-index: no `expect`
                // on the query-scoring path (PCQE-P002).
                match out.pop() {
                    None => Lineage::Const(true),
                    Some(single) if out.is_empty() => single,
                    Some(last) => {
                        out.push(last);
                        Lineage::And(out)
                    }
                }
            }
            Lineage::Or(es) => {
                let mut out: Vec<Lineage> = Vec::with_capacity(es.len());
                for e in es {
                    match e.simplify() {
                        Lineage::Const(false) => {}
                        Lineage::Const(true) => return Lineage::Const(true),
                        Lineage::Or(inner) => {
                            for i in inner {
                                if !out.contains(&i) {
                                    out.push(i);
                                }
                            }
                        }
                        other => {
                            if !out.contains(&other) {
                                out.push(other);
                            }
                        }
                    }
                }
                match out.pop() {
                    None => Lineage::Const(false),
                    Some(single) if out.is_empty() => single,
                    Some(last) => {
                        out.push(last);
                        Lineage::Or(out)
                    }
                }
            }
        }
    }
}

impl fmt::Display for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lineage::Const(b) => write!(f, "{}", if *b { "⊤" } else { "⊥" }),
            Lineage::Var(v) => write!(f, "{v}"),
            Lineage::Not(e) => write!(f, "¬{e}"),
            Lineage::And(es) => {
                f.write_str("(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∧ ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
            Lineage::Or(es) => {
                f.write_str("(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∨ ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_simplify_eagerly() {
        assert_eq!(Lineage::and(vec![]), Lineage::Const(true));
        assert_eq!(Lineage::or(vec![]), Lineage::Const(false));
        assert_eq!(
            Lineage::and(vec![Lineage::var(1), Lineage::Const(true)]),
            Lineage::var(1)
        );
        assert_eq!(
            Lineage::or(vec![Lineage::var(1), Lineage::Const(true)]),
            Lineage::Const(true)
        );
        assert_eq!(Lineage::not(Lineage::not(Lineage::var(2))), Lineage::var(2));
    }

    #[test]
    fn simplify_flattens_and_dedups() {
        let l = Lineage::And(vec![
            Lineage::And(vec![Lineage::var(1), Lineage::var(2)]),
            Lineage::var(1),
        ]);
        assert_eq!(
            l.simplify(),
            Lineage::And(vec![Lineage::var(1), Lineage::var(2)])
        );
        let o = Lineage::Or(vec![
            Lineage::Or(vec![Lineage::var(3), Lineage::var(3)]),
            Lineage::Const(false),
        ]);
        assert_eq!(o.simplify(), Lineage::var(3));
    }

    #[test]
    fn var_counts_and_read_once() {
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]);
        assert!(l.is_read_once());
        assert_eq!(l.vars(), vec![VarId(2), VarId(3), VarId(13)]);

        let shared = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(1), Lineage::var(2)]),
            Lineage::And(vec![Lineage::var(1), Lineage::var(3)]),
        ]);
        assert!(!shared.is_read_once());
        assert_eq!(shared.var_counts()[&VarId(1)], 2);
    }

    #[test]
    fn eval_matches_truth_table() {
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::not(Lineage::var(2)),
        ]);
        let f = |bits: [bool; 3]| l.eval(&|v: VarId| bits[v.0 as usize]);
        assert!(f([true, false, false]));
        assert!(f([false, true, false]));
        assert!(!f([false, false, false]));
        assert!(!f([true, true, true]));
    }

    #[test]
    fn conditioning_substitutes_and_simplifies() {
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]);
        assert_eq!(l.condition(VarId(13), false), Lineage::Const(false));
        assert_eq!(
            l.condition(VarId(2), true),
            Lineage::var(13),
            "t2 true makes the OR certain, leaving t13"
        );
    }

    #[test]
    fn contains_not_detects_negation() {
        assert!(!Lineage::and(vec![Lineage::var(1), Lineage::var(2)]).contains_not());
        let negated = Lineage::And(vec![
            Lineage::var(1),
            Lineage::Not(Box::new(Lineage::var(2))),
        ]);
        assert!(negated.contains_not());
    }

    #[test]
    fn size_counts_nodes() {
        let l = Lineage::And(vec![
            Lineage::var(1),
            Lineage::Not(Box::new(Lineage::var(2))),
        ]);
        assert_eq!(l.size(), 4);
    }

    #[test]
    fn display_is_readable() {
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]);
        assert_eq!(l.to_string(), "((v2 ∨ v3) ∧ v13)");
    }
}
