//! Heuristic factorisation of lineage formulas.
//!
//! Query evaluation tends to produce OR-of-AND ("DNF-ish") lineage with
//! repeated variables — e.g. the running example's projection yields
//! `(t02 ∧ t13) ∨ (t03 ∧ t13)`, whereas the paper writes the factored
//! `(t02 ∨ t03) ∧ t13`. Repeated variables are what force Shannon
//! expansion during confidence computation, so pulling shared conjuncts
//! out front makes exact evaluation cheaper (and, when a formula factors
//! to read-once, expansion-free).
//!
//! [`factor`] repeatedly extracts the variable occurring in the most OR
//! branches, recursing into the factored remainder. The result is always
//! logically equivalent; it is *not* guaranteed minimal (optimal
//! factorisation is hard), just never worse in total variable
//! occurrences.

use crate::expr::{Lineage, VarId};
use std::collections::BTreeMap;

/// Factor a formula to reduce repeated variable occurrences. Returns a
/// logically equivalent formula; when the input is an OR of ANDs with a
/// common conjunct, that conjunct is pulled out front.
pub fn factor(lineage: &Lineage) -> Lineage {
    let simplified = lineage.simplify();
    let out = factor_rec(&simplified, 0);
    // Only keep the rewrite when it actually shrank the occurrence count.
    let before: usize = simplified.var_counts().values().sum();
    let after: usize = out.var_counts().values().sum();
    if after < before {
        out
    } else {
        simplified
    }
}

const MAX_DEPTH: usize = 32;

fn factor_rec(l: &Lineage, depth: usize) -> Lineage {
    if depth > MAX_DEPTH {
        return l.clone();
    }
    match l {
        Lineage::Or(children) => {
            // Recurse first so nested structures are already tight.
            let children: Vec<Lineage> =
                children.iter().map(|c| factor_rec(c, depth + 1)).collect();
            factor_or(children, depth)
        }
        Lineage::And(children) => {
            Lineage::And(children.iter().map(|c| factor_rec(c, depth + 1)).collect()).simplify()
        }
        Lineage::Not(e) => Lineage::not(factor_rec(e, depth + 1)),
        other => other.clone(),
    }
}

/// Factor an OR whose children are already factored: find the variable
/// appearing as a *positive top-level conjunct* in the most children, pull
/// it out of those children, and recurse on both halves.
fn factor_or(children: Vec<Lineage>, depth: usize) -> Lineage {
    if children.len() < 2 || depth > MAX_DEPTH {
        return Lineage::Or(children).simplify();
    }
    // Count, per variable, in how many children it is a positive
    // top-level conjunct.
    // Ordered map: `max_by_key` ties are already broken by `Reverse(*v)`,
    // but deterministic iteration removes any doubt (PCQE-D001).
    let mut counts: BTreeMap<VarId, usize> = BTreeMap::new();
    for c in &children {
        for v in top_level_vars(c) {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    let Some((&pivot, &n)) = counts
        .iter()
        .max_by_key(|&(v, c)| (*c, std::cmp::Reverse(*v)))
    else {
        return Lineage::Or(children).simplify();
    };
    if n < 2 {
        return Lineage::Or(children).simplify();
    }
    // Split children into those containing the pivot conjunct and the rest.
    let mut with: Vec<Lineage> = Vec::new();
    let mut without: Vec<Lineage> = Vec::new();
    for c in children {
        match strip_conjunct(&c, pivot) {
            Some(rest) => with.push(rest),
            None => without.push(c),
        }
    }
    // pivot ∧ (r₁ ∨ r₂ ∨ …)
    let factored = Lineage::and(vec![Lineage::Var(pivot), factor_or(with, depth + 1)]);
    if without.is_empty() {
        factored
    } else {
        let mut rest = without;
        rest.push(factored);
        factor_or(rest, depth + 1)
    }
}

/// Positive variables at a child's top conjunct level: `x` itself, or the
/// direct `Var` children of an `And`.
fn top_level_vars(l: &Lineage) -> Vec<VarId> {
    match l {
        Lineage::Var(v) => vec![*v],
        Lineage::And(cs) => cs
            .iter()
            .filter_map(|c| match c {
                Lineage::Var(v) => Some(*v),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Remove `pivot` from a child's top-level conjuncts; `None` if absent.
fn strip_conjunct(l: &Lineage, pivot: VarId) -> Option<Lineage> {
    match l {
        Lineage::Var(v) if *v == pivot => Some(Lineage::Const(true)),
        Lineage::And(cs) if cs.contains(&Lineage::Var(pivot)) => {
            let rest: Vec<Lineage> = cs
                .iter()
                .filter(|c| **c != Lineage::Var(pivot))
                .cloned()
                .collect();
            Some(Lineage::and(rest))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::Evaluator;
    use std::collections::HashMap;

    fn equivalent(a: &Lineage, b: &Lineage) {
        let mut vars = a.vars();
        vars.extend(b.vars());
        vars.sort();
        vars.dedup();
        for bits in 0..(1u32 << vars.len()) {
            let assign = |v: VarId| {
                let slot = vars.iter().position(|&x| x == v).unwrap();
                bits & (1 << slot) != 0
            };
            assert_eq!(
                a.eval(&assign),
                b.eval(&assign),
                "bits {bits:b}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn running_example_refactors_to_the_papers_form() {
        // (t2 ∧ t13) ∨ (t3 ∧ t13) → t13 ∧ (t2 ∨ t3)
        let dnf = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(2), Lineage::var(13)]),
            Lineage::And(vec![Lineage::var(3), Lineage::var(13)]),
        ]);
        let f = factor(&dnf);
        equivalent(&dnf, &f);
        assert!(f.is_read_once(), "factored form is read-once: {f}");
        assert_eq!(f.var_counts()[&VarId(13)], 1);
    }

    #[test]
    fn factored_probability_matches_exactly() {
        let dnf = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::And(vec![Lineage::var(0), Lineage::var(2)]),
            Lineage::And(vec![Lineage::var(3), Lineage::var(1)]),
        ]);
        let f = factor(&dnf);
        equivalent(&dnf, &f);
        let probs: HashMap<VarId, f64> = (0..4).map(|i| (VarId(i), 0.3 + 0.1 * i as f64)).collect();
        let ev = Evaluator::exact_only(1 << 16);
        let pa = ev.probability(&dnf, &probs).unwrap();
        let pb = ev.probability(&f, &probs).unwrap();
        assert!((pa - pb).abs() < 1e-12);
        let before: usize = dnf.var_counts().values().sum();
        let after: usize = f.var_counts().values().sum();
        assert!(after < before, "{before} → {after}: {f}");
    }

    #[test]
    fn partial_overlap_keeps_unfactorable_branches() {
        // (a∧b) ∨ c: nothing shared; output equals the simplified input.
        let l = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::var(2),
        ]);
        assert_eq!(factor(&l), l.simplify());
    }

    #[test]
    fn absorbed_pivot_child_becomes_true() {
        // x ∨ (x∧y) should collapse to x by absorption through factoring.
        let l = Lineage::Or(vec![
            Lineage::var(0),
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
        ]);
        let f = factor(&l);
        equivalent(&l, &f);
        assert_eq!(f, Lineage::var(0));
    }

    #[test]
    fn read_once_inputs_are_untouched() {
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::var(2),
        ]);
        assert_eq!(factor(&l), l);
    }

    #[test]
    fn never_increases_occurrences() {
        // A shape where naive distribution could grow: verify the guard.
        let l = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::And(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::And(vec![Lineage::var(0), Lineage::var(3)]),
        ]);
        let f = factor(&l);
        equivalent(&l, &f);
        let before: usize = l.simplify().var_counts().values().sum();
        let after: usize = f.var_counts().values().sum();
        assert!(after <= before);
    }
}
