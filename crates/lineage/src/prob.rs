//! Exact (and exact-with-fallback) probability computation.

use crate::error::LineageError;
use crate::expr::{Lineage, VarId};
use crate::mc::MonteCarlo;
use crate::Result;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A source of per-variable marginal probabilities.
///
/// Implemented for closures and hash maps so callers can pass whatever they
/// have; `None` means the variable is unknown and evaluation fails with
/// [`LineageError::UnknownVar`].
pub trait ProbSource {
    /// Marginal probability of `var` being true, or `None` if unknown.
    fn prob(&self, var: VarId) -> Option<f64>;
}

impl<F: Fn(VarId) -> Option<f64>> ProbSource for F {
    fn prob(&self, var: VarId) -> Option<f64> {
        self(var)
    }
}

impl ProbSource for HashMap<VarId, f64> {
    fn prob(&self, var: VarId) -> Option<f64> {
        self.get(&var).copied()
    }
}

impl ProbSource for std::collections::BTreeMap<VarId, f64> {
    fn prob(&self, var: VarId) -> Option<f64> {
        self.get(&var).copied()
    }
}

/// Confidence evaluator: exact first, optional Monte-Carlo fallback.
///
/// Exact evaluation uses independence decomposition wherever the children of
/// a connective touch pairwise-disjoint variable sets, and Shannon expansion
/// on the most-shared variable otherwise. Each Shannon expansion consumes
/// one unit of `budget`; on exhaustion the evaluator either falls back to
/// seeded Monte-Carlo (if `mc_samples > 0`) or reports
/// [`LineageError::BudgetExceeded`].
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// Maximum number of Shannon expansions before giving up on exactness.
    pub budget: usize,
    /// Monte-Carlo samples used on budget exhaustion; `0` disables fallback.
    pub mc_samples: usize,
    /// Seed for the Monte-Carlo fallback.
    pub mc_seed: u64,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator {
            budget: 4096,
            mc_samples: 100_000,
            mc_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl Evaluator {
    /// An evaluator that never falls back to sampling.
    pub fn exact_only(budget: usize) -> Self {
        Evaluator {
            budget,
            mc_samples: 0,
            ..Evaluator::default()
        }
    }

    /// Probability that `lineage` is true under independent variables.
    pub fn probability<P: ProbSource>(&self, lineage: &Lineage, probs: &P) -> Result<f64> {
        let mut simplified = lineage.simplify();
        if !simplified.is_read_once() {
            // Factoring shared conjuncts out of OR branches removes
            // repeated variables, saving Shannon expansions (and often
            // reaching a read-once form, which needs none at all).
            simplified = crate::factor::factor(&simplified);
        }
        let mut budget = self.budget;
        match exact(&simplified, probs, &mut budget) {
            Ok(p) => Ok(p),
            Err(LineageError::BudgetExceeded { .. }) if self.mc_samples > 0 => {
                MonteCarlo::new(self.mc_samples, self.mc_seed).estimate(&simplified, probs)
            }
            Err(e) => Err(e),
        }
    }

    /// Exact probability, or an error if the budget is exceeded.
    pub fn probability_exact<P: ProbSource>(&self, lineage: &Lineage, probs: &P) -> Result<f64> {
        let mut budget = self.budget;
        exact(&lineage.simplify(), probs, &mut budget)
    }

    /// Score a batch of lineages in parallel. See [`score_batch`].
    pub fn score_batch<P: ProbSource + Sync>(
        &self,
        lineages: &[Lineage],
        probs: &P,
        par: &pcqe_par::Parallelism,
    ) -> Result<Vec<f64>> {
        score_batch(self, lineages, probs, par)
    }
}

/// Score a batch of lineages, one confidence per input, in input order.
///
/// The per-result confidence computation is the engine's exponential
/// bottleneck (each score may Shannon-expand or Monte-Carlo-sample its
/// formula) and is embarrassingly parallel across result tuples: every
/// lineage is scored independently against the same probability source.
/// Work is fanned out with [`pcqe_par::try_map`] under the given policy.
///
/// **Determinism:** the output is byte-identical for any thread count.
/// Each lineage's evaluation — including the seeded Monte-Carlo fallback,
/// which derives its stream from `evaluator.mc_seed` alone — depends only
/// on the lineage and `probs`, never on scheduling; and results are
/// reassembled in input order. On error, the first failing lineage in
/// input order is reported, matching the sequential loop.
pub fn score_batch<P: ProbSource + Sync>(
    evaluator: &Evaluator,
    lineages: &[Lineage],
    probs: &P,
    par: &pcqe_par::Parallelism,
) -> Result<Vec<f64>> {
    pcqe_par::try_map(par, lineages, |l| evaluator.probability(l, probs))
}

/// Recursive exact evaluation with independence decomposition and Shannon
/// expansion. `budget` is decremented per expansion.
fn exact<P: ProbSource>(l: &Lineage, probs: &P, budget: &mut usize) -> Result<f64> {
    match l {
        Lineage::Const(b) => Ok(if *b { 1.0 } else { 0.0 }),
        Lineage::Var(v) => probs.prob(*v).ok_or(LineageError::UnknownVar(*v)),
        Lineage::Not(e) => Ok(1.0 - exact(e, probs, budget)?),
        Lineage::And(es) => {
            if let Some(shared) = most_shared_var(es) {
                shannon(l, shared, probs, budget)
            } else {
                let mut p = 1.0;
                for e in es {
                    p *= exact(e, probs, budget)?;
                }
                Ok(p)
            }
        }
        Lineage::Or(es) => {
            if let Some(shared) = most_shared_var(es) {
                shannon(l, shared, probs, budget)
            } else {
                let mut q = 1.0;
                for e in es {
                    q *= 1.0 - exact(e, probs, budget)?;
                }
                Ok(1.0 - q)
            }
        }
    }
}

/// Crate-internal alias so the compiler module reuses the same pivot rule.
pub(crate) fn most_shared_var_pub(children: &[Lineage]) -> Option<VarId> {
    most_shared_var(children)
}

/// If the children share variables, return the variable occurring in the
/// most children (the best Shannon pivot); otherwise `None`.
fn most_shared_var(children: &[Lineage]) -> Option<VarId> {
    let mut seen: BTreeMap<VarId, usize> = BTreeMap::new();
    for child in children {
        // Count each variable once per child: sharing *within* one child is
        // handled recursively; only cross-child sharing breaks independence.
        let vars: BTreeSet<VarId> = child.var_counts().into_keys().collect();
        for v in vars {
            *seen.entry(v).or_insert(0) += 1;
        }
    }
    seen.into_iter()
        .filter(|&(_, c)| c > 1)
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
}

fn shannon<P: ProbSource>(l: &Lineage, pivot: VarId, probs: &P, budget: &mut usize) -> Result<f64> {
    if *budget == 0 {
        return Err(LineageError::BudgetExceeded { budget: 0 });
    }
    *budget -= 1;
    let p = probs.prob(pivot).ok_or(LineageError::UnknownVar(pivot))?;
    let hi = exact(&l.condition(pivot, true), probs, budget)?;
    let lo = exact(&l.condition(pivot, false), probs, budget)?;
    Ok(p * hi + (1.0 - p) * lo)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn probs(pairs: &[(u64, f64)]) -> HashMap<VarId, f64> {
        pairs.iter().map(|&(v, p)| (VarId(v), p)).collect()
    }

    #[test]
    fn paper_running_example() {
        // p38 = (p02 + p03 - p02*p03) * p13 with p02=0.3, p03=0.4, p13=0.1
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]);
        let p = Evaluator::default()
            .probability(&l, &probs(&[(2, 0.3), (3, 0.4), (13, 0.1)]))
            .unwrap();
        assert!((p - 0.058).abs() < 1e-12);
    }

    #[test]
    fn paper_example_after_increment() {
        // Raising p03 from 0.4 to 0.5 gives p25 = 0.65 and p38 = 0.065.
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]);
        let p = Evaluator::default()
            .probability(&l, &probs(&[(2, 0.3), (3, 0.5), (13, 0.1)]))
            .unwrap();
        assert!((p - 0.065).abs() < 1e-12);
    }

    #[test]
    fn negation_and_constants() {
        let e = Evaluator::default();
        let pr = probs(&[(1, 0.25)]);
        assert_eq!(e.probability(&Lineage::certain(), &pr).unwrap(), 1.0);
        assert_eq!(e.probability(&Lineage::Const(false), &pr).unwrap(), 0.0);
        let p = e.probability(&Lineage::not(Lineage::var(1)), &pr).unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_variable_needs_shannon() {
        // (x ∧ y) ∨ (x ∧ z): naive independence would give
        // 1-(1-pq)(1-pr); exact is p(1-(1-q)(1-r)).
        let l = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::And(vec![Lineage::var(0), Lineage::var(2)]),
        ]);
        let pr = probs(&[(0, 0.5), (1, 0.5), (2, 0.5)]);
        let p = Evaluator::default().probability(&l, &pr).unwrap();
        let expected = 0.5 * (1.0 - 0.5 * 0.5);
        assert!((p - expected).abs() < 1e-12, "{p} vs {expected}");
    }

    #[test]
    fn idempotent_sharing_is_exact() {
        // x ∨ x simplifies to x; x ∧ ¬x is unsatisfiable.
        let e = Evaluator::exact_only(16);
        let pr = probs(&[(0, 0.3)]);
        let same = Lineage::Or(vec![Lineage::var(0), Lineage::var(0)]);
        assert!((e.probability(&same, &pr).unwrap() - 0.3).abs() < 1e-12);
        let contra = Lineage::And(vec![
            Lineage::var(0),
            Lineage::Not(Box::new(Lineage::var(0))),
        ]);
        assert!(e.probability(&contra, &pr).unwrap().abs() < 1e-12);
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let e = Evaluator::default();
        let err = e.probability(&Lineage::var(42), &probs(&[])).unwrap_err();
        assert_eq!(err, LineageError::UnknownVar(VarId(42)));
    }

    #[test]
    fn budget_exhaustion_without_fallback_errors() {
        // A chain of shared conjunctions forces expansions.
        let mut children = Vec::new();
        for i in 0..12u64 {
            children.push(Lineage::And(vec![Lineage::var(i), Lineage::var(i + 1)]));
        }
        let l = Lineage::Or(children);
        let pr: HashMap<VarId, f64> = (0..13).map(|i| (VarId(i), 0.5)).collect();
        let e = Evaluator::exact_only(1);
        assert!(matches!(
            e.probability(&l, &pr),
            Err(LineageError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn mc_fallback_is_close_to_exact() {
        let mut children = Vec::new();
        for i in 0..6u64 {
            children.push(Lineage::And(vec![Lineage::var(i), Lineage::var(i + 1)]));
        }
        let l = Lineage::Or(children);
        let pr: HashMap<VarId, f64> = (0..7).map(|i| (VarId(i), 0.4)).collect();
        let exact = Evaluator::exact_only(1 << 20).probability(&l, &pr).unwrap();
        let approx = Evaluator {
            budget: 1,
            mc_samples: 200_000,
            mc_seed: 7,
        }
        .probability(&l, &pr)
        .unwrap();
        assert!(
            (exact - approx).abs() < 0.01,
            "exact {exact} vs approx {approx}"
        );
    }

    #[test]
    fn score_batch_matches_sequential_for_any_thread_count() {
        // A mixed batch: read-once, shared-variable, and negated formulas.
        let mut lineages = Vec::new();
        for i in 0..200u64 {
            lineages.push(Lineage::and(vec![
                Lineage::or(vec![Lineage::var(i % 7), Lineage::var((i + 1) % 7)]),
                Lineage::var((i + 2) % 7),
            ]));
            lineages.push(Lineage::Or(vec![
                Lineage::And(vec![Lineage::var(i % 7), Lineage::var((i + 3) % 7)]),
                Lineage::And(vec![Lineage::var(i % 7), Lineage::var((i + 5) % 7)]),
            ]));
        }
        let pr: HashMap<VarId, f64> = (0..7).map(|i| (VarId(i), 0.1 + 0.1 * i as f64)).collect();
        let ev = Evaluator::default();
        let sequential: Vec<f64> = lineages
            .iter()
            .map(|l| ev.probability(l, &pr).unwrap())
            .collect();
        for workers in [1usize, 2, 8] {
            let par = pcqe_par::Parallelism {
                worker_threads: Some(workers),
                parallel_threshold: 1,
            };
            let batch = ev.score_batch(&lineages, &pr, &par).unwrap();
            assert_eq!(batch, sequential, "workers={workers}");
        }
    }

    #[test]
    fn score_batch_reports_first_error_in_input_order() {
        let lineages = vec![
            Lineage::var(0),
            Lineage::var(99), // unknown
            Lineage::var(98), // also unknown, but later
        ];
        let pr = probs(&[(0, 0.5)]);
        let par = pcqe_par::Parallelism {
            worker_threads: Some(4),
            parallel_threshold: 1,
        };
        let err = Evaluator::default()
            .score_batch(&lineages, &pr, &par)
            .unwrap_err();
        assert_eq!(err, LineageError::UnknownVar(VarId(99)));
    }

    #[test]
    fn exact_matches_brute_force_enumeration() {
        // Enumerate all assignments for a non-read-once formula.
        let l = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::And(vec![
                Lineage::var(1),
                Lineage::Not(Box::new(Lineage::var(2))),
            ]),
            Lineage::var(2),
        ]);
        let ps = [0.2, 0.7, 0.4];
        let pr = probs(&[(0, ps[0]), (1, ps[1]), (2, ps[2])]);
        let mut brute = 0.0;
        for bits in 0..8u32 {
            let assign = |v: VarId| bits & (1 << v.0) != 0;
            if l.eval(&assign) {
                let mut w = 1.0;
                for (i, &p) in ps.iter().enumerate() {
                    w *= if bits & (1 << i) != 0 { p } else { 1.0 - p };
                }
                brute += w;
            }
        }
        let p = Evaluator::exact_only(1024).probability(&l, &pr).unwrap();
        assert!((p - brute).abs() < 1e-12, "{p} vs {brute}");
    }
}
