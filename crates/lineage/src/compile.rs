//! Compiled lineage: a fixed arithmetic program for fast re-evaluation.
//!
//! The strategy-finding algorithms evaluate a result's confidence function
//! `F(p₁ … p_k)` millions of times with changing probabilities. Rather than
//! re-running Shannon expansion on every call, [`CompiledLineage`] performs
//! the expansion once at compile time, producing an arithmetic expression
//! whose structure depends only on the formula — evaluation is then a plain
//! tree walk over floats.

use crate::error::LineageError;
use crate::expr::{Lineage, VarId};
use crate::Result;
use std::collections::BTreeMap;

/// The compiled arithmetic form of a lineage formula.
#[derive(Debug, Clone)]
pub struct CompiledLineage {
    vars: Vec<VarId>,
    arith: Arith,
}

/// Arithmetic expression over probability slots.
#[derive(Debug, Clone)]
enum Arith {
    /// A constant probability.
    Const(f64),
    /// The probability of the variable in slot `i`.
    Slot(usize),
    /// `1 - child` (negation).
    Complement(Box<Arith>),
    /// `Π children` (independent conjunction).
    Product(Vec<Arith>),
    /// `1 - Π (1 - child)` (independent disjunction).
    DisjProduct(Vec<Arith>),
    /// Shannon mix: `p_slot · hi + (1 - p_slot) · lo`.
    Mix {
        slot: usize,
        hi: Box<Arith>,
        lo: Box<Arith>,
    },
}

impl CompiledLineage {
    /// Compile a formula, spending at most `budget` Shannon expansions.
    /// Non-read-once formulas are factored first (see
    /// [`crate::factor::factor`]) to shrink the expansion tree.
    pub fn compile(lineage: &Lineage, budget: usize) -> Result<CompiledLineage> {
        let mut simplified = lineage.simplify();
        if !simplified.is_read_once() {
            simplified = crate::factor::factor(&simplified);
        }
        let vars = simplified.vars();
        let slots: BTreeMap<VarId, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut remaining = budget;
        let arith = compile_rec(&simplified, &slots, &mut remaining)?;
        Ok(CompiledLineage { vars, arith })
    }

    /// The formula's variables in slot order; `probs[i]` in [`Self::eval`]
    /// is the probability of `self.vars()[i]`.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Evaluate with probabilities given per slot.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != self.vars().len()`.
    pub fn eval(&self, probs: &[f64]) -> f64 {
        assert_eq!(
            probs.len(),
            self.vars.len(),
            "expected one probability per variable"
        );
        eval_rec(&self.arith, probs)
    }

    /// Evaluate with a probability lookup keyed by variable id.
    pub fn eval_with<F: Fn(VarId) -> f64>(&self, lookup: F) -> f64 {
        let probs: Vec<f64> = self.vars.iter().map(|&v| lookup(v)).collect();
        eval_rec(&self.arith, &probs)
    }
}

fn compile_rec(l: &Lineage, slots: &BTreeMap<VarId, usize>, budget: &mut usize) -> Result<Arith> {
    match l {
        Lineage::Const(b) => Ok(Arith::Const(if *b { 1.0 } else { 0.0 })),
        Lineage::Var(v) => Ok(Arith::Slot(
            slots.get(v).copied().ok_or(LineageError::UnknownVar(*v))?,
        )),
        Lineage::Not(e) => Ok(Arith::Complement(Box::new(compile_rec(e, slots, budget)?))),
        Lineage::And(es) => {
            if let Some(pivot) = crate::prob::most_shared_var_pub(es) {
                compile_shannon(l, pivot, slots, budget)
            } else {
                let children = es
                    .iter()
                    .map(|e| compile_rec(e, slots, budget))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Arith::Product(children))
            }
        }
        Lineage::Or(es) => {
            if let Some(pivot) = crate::prob::most_shared_var_pub(es) {
                compile_shannon(l, pivot, slots, budget)
            } else {
                let children = es
                    .iter()
                    .map(|e| compile_rec(e, slots, budget))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Arith::DisjProduct(children))
            }
        }
    }
}

fn compile_shannon(
    l: &Lineage,
    pivot: VarId,
    slots: &BTreeMap<VarId, usize>,
    budget: &mut usize,
) -> Result<Arith> {
    if *budget == 0 {
        return Err(LineageError::BudgetExceeded { budget: 0 });
    }
    *budget -= 1;
    let hi = compile_rec(&l.condition(pivot, true), slots, budget)?;
    let lo = compile_rec(&l.condition(pivot, false), slots, budget)?;
    Ok(Arith::Mix {
        slot: slots
            .get(&pivot)
            .copied()
            .ok_or(LineageError::UnknownVar(pivot))?,
        hi: Box::new(hi),
        lo: Box::new(lo),
    })
}

fn eval_rec(a: &Arith, probs: &[f64]) -> f64 {
    match a {
        Arith::Const(c) => *c,
        // Slots were allocated over the same `vars` that produced `probs`;
        // an out-of-range slot is impossible, and the panic-free fallback
        // is the neutral probability 0 (PCQE-P002).
        Arith::Slot(i) => probs.get(*i).copied().unwrap_or(0.0),
        Arith::Complement(c) => 1.0 - eval_rec(c, probs),
        Arith::Product(cs) => cs.iter().map(|c| eval_rec(c, probs)).product(),
        Arith::DisjProduct(cs) => {
            1.0 - cs.iter().map(|c| 1.0 - eval_rec(c, probs)).product::<f64>()
        }
        Arith::Mix { slot, hi, lo } => {
            let p = probs.get(*slot).copied().unwrap_or(0.0);
            p * eval_rec(hi, probs) + (1.0 - p) * eval_rec(lo, probs)
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::prob::Evaluator;
    use std::collections::HashMap;

    #[test]
    fn compiled_matches_interpreter_read_once() {
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]);
        let c = CompiledLineage::compile(&l, 64).unwrap();
        assert_eq!(c.vars(), &[VarId(2), VarId(3), VarId(13)]);
        let p = c.eval(&[0.3, 0.4, 0.1]);
        assert!((p - 0.058).abs() < 1e-12);
    }

    #[test]
    fn compiled_matches_interpreter_shared_vars() {
        let l = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::And(vec![Lineage::var(0), Lineage::var(2)]),
            Lineage::And(vec![Lineage::var(1), Lineage::var(2)]),
        ]);
        let c = CompiledLineage::compile(&l, 1024).unwrap();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.3), (VarId(1), 0.6), (VarId(2), 0.9)]
            .into_iter()
            .collect();
        let exact = Evaluator::exact_only(1 << 16)
            .probability(&l, &probs)
            .unwrap();
        let compiled = c.eval_with(|v| probs[&v]);
        assert!((exact - compiled).abs() < 1e-12, "{exact} vs {compiled}");
    }

    #[test]
    fn budget_exceeded_propagates() {
        let mut children = Vec::new();
        for i in 0..12u64 {
            children.push(Lineage::And(vec![Lineage::var(i), Lineage::var(i + 1)]));
        }
        let l = Lineage::Or(children);
        assert!(matches!(
            CompiledLineage::compile(&l, 1),
            Err(LineageError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn eval_with_map_and_slices_agree() {
        let l = Lineage::or(vec![Lineage::var(5), Lineage::var(9)]);
        let c = CompiledLineage::compile(&l, 8).unwrap();
        let by_slice = c.eval(&[0.2, 0.5]);
        let by_map = c.eval_with(|v| if v.0 == 5 { 0.2 } else { 0.5 });
        assert_eq!(by_slice, by_map);
    }

    #[test]
    #[should_panic(expected = "one probability per variable")]
    fn eval_checks_arity() {
        let l = Lineage::var(1);
        let c = CompiledLineage::compile(&l, 1).unwrap();
        c.eval(&[]);
    }
}
