//! Compiled lineage: a fixed arithmetic program for fast re-evaluation.
//!
//! The strategy-finding algorithms evaluate a result's confidence function
//! `F(p₁ … p_k)` millions of times with changing probabilities. Rather than
//! re-running Shannon expansion on every call, [`CompiledLineage`] performs
//! the expansion once at compile time, producing an arithmetic expression
//! whose structure depends only on the formula — evaluation is then a plain
//! tree walk over floats.
//!
//! Subtrees are held behind [`Arc`] so the query-scoped
//! [`crate::cache::CircuitCache`] can hash-cons structurally equal
//! subcircuits into one shared node pool: circuits for the results of one
//! query then point into the same compiled subtrees instead of owning
//! copies. A standalone [`CompiledLineage::compile`] still works without any
//! pool — the `Arc`s are simply unshared then.

use crate::error::LineageError;
use crate::expr::{Lineage, VarId};
use crate::Result;
use std::sync::Arc;

/// The compiled arithmetic form of a lineage formula.
#[derive(Debug, Clone)]
pub struct CompiledLineage {
    vars: Vec<VarId>,
    arith: Arc<Arith>,
}

/// Arithmetic expression over per-variable probabilities.
///
/// Leaves carry [`VarId`]s (not slot indices) so that a structurally equal
/// subtree means the same function regardless of which formula it was
/// compiled for — the property the hash-consing pool relies on. Evaluation
/// against a slice resolves ids through the circuit's sorted `vars` by
/// binary search, which lands on the same index the old slot scheme used.
#[derive(Debug)]
pub(crate) enum Arith {
    /// A constant probability.
    Const(f64),
    /// The probability of a variable.
    Var(VarId),
    /// `1 - child` (negation).
    Complement(Arc<Arith>),
    /// `Π children` (independent conjunction).
    Product(Vec<Arc<Arith>>),
    /// `1 - Π (1 - child)` (independent disjunction).
    DisjProduct(Vec<Arc<Arith>>),
    /// Shannon mix: `p_var · hi + (1 - p_var) · lo`.
    Mix {
        var: VarId,
        hi: Arc<Arith>,
        lo: Arc<Arith>,
    },
}

impl CompiledLineage {
    /// Compile a formula, spending at most `budget` Shannon expansions.
    /// Non-read-once formulas are factored first (see
    /// [`crate::factor::factor`]) to shrink the expansion tree.
    pub fn compile(lineage: &Lineage, budget: usize) -> Result<CompiledLineage> {
        let mut simplified = lineage.simplify();
        if !simplified.is_read_once() {
            simplified = crate::factor::factor(&simplified);
        }
        let vars = simplified.vars();
        let mut remaining = budget;
        let arith = compile_rec(&simplified, &mut remaining)?;
        Ok(CompiledLineage { vars, arith })
    }

    /// Assemble a circuit from an already-compiled arithmetic tree (the
    /// cache pool path). `vars` must be the sorted variable set of the
    /// source formula — exactly what [`CompiledLineage::compile`] would
    /// have recorded — so the slice-eval slot contract is preserved.
    pub(crate) fn from_parts(vars: Vec<VarId>, arith: Arc<Arith>) -> CompiledLineage {
        CompiledLineage { vars, arith }
    }

    /// The formula's variables in slot order; `probs[i]` in [`Self::eval`]
    /// is the probability of `self.vars()[i]`.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Evaluate with probabilities given per slot.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != self.vars().len()`.
    pub fn eval(&self, probs: &[f64]) -> f64 {
        assert_eq!(
            probs.len(),
            self.vars.len(),
            "expected one probability per variable"
        );
        eval_rec(&self.arith, &self.vars, probs)
    }

    /// Evaluate with a probability lookup keyed by variable id.
    pub fn eval_with<F: Fn(VarId) -> f64>(&self, lookup: F) -> f64 {
        let probs: Vec<f64> = self.vars.iter().map(|&v| lookup(v)).collect();
        eval_rec(&self.arith, &self.vars, &probs)
    }
}

pub(crate) fn compile_rec(l: &Lineage, budget: &mut usize) -> Result<Arc<Arith>> {
    match l {
        Lineage::Const(b) => Ok(Arc::new(Arith::Const(if *b { 1.0 } else { 0.0 }))),
        Lineage::Var(v) => Ok(Arc::new(Arith::Var(*v))),
        Lineage::Not(e) => Ok(Arc::new(Arith::Complement(compile_rec(e, budget)?))),
        Lineage::And(es) => {
            if let Some(pivot) = crate::prob::most_shared_var_pub(es) {
                compile_shannon(l, pivot, budget)
            } else {
                let children = es
                    .iter()
                    .map(|e| compile_rec(e, budget))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Arc::new(Arith::Product(children)))
            }
        }
        Lineage::Or(es) => {
            if let Some(pivot) = crate::prob::most_shared_var_pub(es) {
                compile_shannon(l, pivot, budget)
            } else {
                let children = es
                    .iter()
                    .map(|e| compile_rec(e, budget))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Arc::new(Arith::DisjProduct(children)))
            }
        }
    }
}

fn compile_shannon(l: &Lineage, pivot: VarId, budget: &mut usize) -> Result<Arc<Arith>> {
    if *budget == 0 {
        return Err(LineageError::BudgetExceeded { budget: 0 });
    }
    *budget -= 1;
    let hi = compile_rec(&l.condition(pivot, true), budget)?;
    let lo = compile_rec(&l.condition(pivot, false), budget)?;
    Ok(Arc::new(Arith::Mix { var: pivot, hi, lo }))
}

/// Resolve a variable to its probability through the circuit's sorted var
/// list. A miss is impossible for circuits built by this module (every leaf
/// var is in the formula's var set); the panic-free fallback is the neutral
/// probability 0 (PCQE-P002), mirroring the old out-of-range-slot fallback.
fn lookup(vars: &[VarId], probs: &[f64], v: VarId) -> f64 {
    match vars.binary_search(&v) {
        Ok(i) => probs.get(i).copied().unwrap_or(0.0),
        Err(_) => 0.0,
    }
}

fn eval_rec(a: &Arith, vars: &[VarId], probs: &[f64]) -> f64 {
    match a {
        Arith::Const(c) => *c,
        Arith::Var(v) => lookup(vars, probs, *v),
        Arith::Complement(c) => 1.0 - eval_rec(c, vars, probs),
        Arith::Product(cs) => cs.iter().map(|c| eval_rec(c, vars, probs)).product(),
        Arith::DisjProduct(cs) => {
            1.0 - cs
                .iter()
                .map(|c| 1.0 - eval_rec(c, vars, probs))
                .product::<f64>()
        }
        Arith::Mix { var, hi, lo } => {
            let p = lookup(vars, probs, *var);
            p * eval_rec(hi, vars, probs) + (1.0 - p) * eval_rec(lo, vars, probs)
        }
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::prob::Evaluator;
    use std::collections::HashMap;

    #[test]
    fn compiled_matches_interpreter_read_once() {
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]);
        let c = CompiledLineage::compile(&l, 64).unwrap();
        assert_eq!(c.vars(), &[VarId(2), VarId(3), VarId(13)]);
        let p = c.eval(&[0.3, 0.4, 0.1]);
        assert!((p - 0.058).abs() < 1e-12);
    }

    #[test]
    fn compiled_matches_interpreter_shared_vars() {
        let l = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::And(vec![Lineage::var(0), Lineage::var(2)]),
            Lineage::And(vec![Lineage::var(1), Lineage::var(2)]),
        ]);
        let c = CompiledLineage::compile(&l, 1024).unwrap();
        let probs: HashMap<VarId, f64> = [(VarId(0), 0.3), (VarId(1), 0.6), (VarId(2), 0.9)]
            .into_iter()
            .collect();
        let exact = Evaluator::exact_only(1 << 16)
            .probability(&l, &probs)
            .unwrap();
        let compiled = c.eval_with(|v| probs[&v]);
        assert!((exact - compiled).abs() < 1e-12, "{exact} vs {compiled}");
    }

    #[test]
    fn budget_exceeded_propagates() {
        let mut children = Vec::new();
        for i in 0..12u64 {
            children.push(Lineage::And(vec![Lineage::var(i), Lineage::var(i + 1)]));
        }
        let l = Lineage::Or(children);
        assert!(matches!(
            CompiledLineage::compile(&l, 1),
            Err(LineageError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn eval_with_map_and_slices_agree() {
        let l = Lineage::or(vec![Lineage::var(5), Lineage::var(9)]);
        let c = CompiledLineage::compile(&l, 8).unwrap();
        let by_slice = c.eval(&[0.2, 0.5]);
        let by_map = c.eval_with(|v| if v.0 == 5 { 0.2 } else { 0.5 });
        assert_eq!(by_slice, by_map);
    }

    #[test]
    #[should_panic(expected = "one probability per variable")]
    fn eval_checks_arity() {
        let l = Lineage::var(1);
        let c = CompiledLineage::compile(&l, 1).unwrap();
        c.eval(&[]);
    }

    #[test]
    fn compiled_eval_is_bit_identical_to_interpreter() {
        // The cache's determinism argument leans on compile/eval mirroring
        // the interpreter's float-op order exactly — assert it bitwise on a
        // formula that exercises Product, DisjProduct, Mix and Complement.
        let l = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::And(vec![
                Lineage::var(1),
                Lineage::Not(Box::new(Lineage::var(2))),
            ]),
            Lineage::var(3),
        ]);
        let pr: HashMap<VarId, f64> = [(0, 0.17), (1, 0.62), (2, 0.41), (3, 0.09)]
            .into_iter()
            .map(|(v, p)| (VarId(v), p))
            .collect();
        let interp = Evaluator::exact_only(1 << 12).probability(&l, &pr).unwrap();
        let c = CompiledLineage::compile(&l, 1 << 12).unwrap();
        let compiled = c.eval_with(|v| pr[&v]);
        assert_eq!(interp.to_bits(), compiled.to_bits());
    }
}
