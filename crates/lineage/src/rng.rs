//! Vendored seeded PRNG: SplitMix64 seeding + xoshiro256++ core.
//!
//! The workspace builds fully offline, so it cannot depend on the `rand`
//! crate. This module provides the small slice of functionality the
//! engine actually needs — a fast, high-quality, *seeded* generator that
//! is `Clone` (cheap state snapshots) and `Send + Sync`-compatible plain
//! data. The algorithms are the public-domain xoshiro256++ generator of
//! Blackman & Vigna and the SplitMix64 seeder recommended by its authors.
//!
//! Determinism contract: for a fixed seed, the stream of values produced
//! by each method is stable across platforms and releases. Seeded
//! Monte-Carlo estimates, synthetic workloads and the annealing baseline
//! all rely on this.

/// SplitMix64: used to expand a 64-bit seed into xoshiro's 256-bit state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's general-purpose seeded generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    // Four named words rather than `[u64; 4]`: the scramble below then
    // never indexes, keeping the hot path free of bound checks and panic
    // sites (PCQE-P002).
    s0: u64,
    s1: u64,
    s2: u64,
    s3: u64,
}

impl Rng64 {
    /// Seed the generator. Any seed (including 0) is valid; the state is
    /// expanded through SplitMix64 so similar seeds give unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng64 {
            s0: sm.next_u64(),
            s1: sm.next_u64(),
            s2: sm.next_u64(),
            s3: sm.next_u64(),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self
            .s0
            .wrapping_add(self.s3)
            .rotate_left(23)
            .wrapping_add(self.s0);
        let t = self.s1 << 17;
        self.s2 ^= self.s0;
        self.s3 ^= self.s1;
        self.s1 ^= self.s2;
        self.s0 ^= self.s3;
        self.s2 ^= t;
        self.s3 = self.s3.rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform `u64` in `[0, n)`.
    ///
    /// Uses Lemire-style rejection so the result is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below_u64 requires n > 0");
        // Rejection sampling on the top bits: unbiased and fast for any n.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize requires lo < hi");
        lo + self.below_usize(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + self.next_f64() * (hi - lo)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // SplitMix64 reference output for seed 0
        // (cross-checked against the published C implementation).
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_eq!(first, 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn clone_snapshots_state() {
        let mut a = Rng64::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_and_in_range() {
        let mut r = Rng64::seed_from_u64(17);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            let v = r.below_usize(3);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.range_f64(20.0, 200.0);
            assert!((20.0..200.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below_u64 requires n > 0")]
    fn below_zero_panics() {
        Rng64::seed_from_u64(0).below_u64(0);
    }
}
