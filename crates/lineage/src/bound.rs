//! Sound confidence bounds computed in one linear pass over a lineage
//! formula — no Shannon expansion, no sampling.
//!
//! The policy threshold β is known *before* evaluation, so results whose
//! confidence provably cannot exceed β never need their exact (potentially
//! exponential) probability computed. This module supplies the "provably"
//! part: an interval `[lower, upper]` that contains the exact probability
//! under *any* dependence structure between subformulas, in particular the
//! actual one induced by shared base tuples.
//!
//! The rules are the classic Fréchet/Boole inequalities, applied
//! structurally:
//!
//! * `P(A ∧ B) ≤ min(P(A), P(B))` — conjunction can only shrink upper
//!   bounds (this is why σ and ⋈ are monotone decreasing in the bound);
//! * `P(A ∨ B) ≤ min(1, P(A) + P(B))` — the union bound for OR-merges;
//! * `P(A ∧ B) ≥ max(0, P(A) + P(B) − 1)` and `P(A ∨ B) ≥ max(P(A), P(B))`
//!   for the lower side;
//! * `P(¬A) = 1 − P(A)` flips the interval.
//!
//! Because every rule holds regardless of independence, the interval is
//! sound for repeated variables too — exactly the case where exact
//! evaluation gets expensive. Constants and single variables are exact.

use crate::error::LineageError;
use crate::expr::Lineage;
use crate::prob::ProbSource;
use crate::Result;

/// A sound probability interval: `lower ≤ P(lineage) ≤ upper`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Sound lower bound in `[0, 1]`.
    pub lower: f64,
    /// Sound upper bound in `[0, 1]`.
    pub upper: f64,
}

impl Bounds {
    fn exact(p: f64) -> Bounds {
        Bounds { lower: p, upper: p }
    }
}

/// Compute sound `[lower, upper]` probability bounds for `lineage` in one
/// linear pass. Fails with [`LineageError::UnknownVar`] exactly when exact
/// evaluation would.
pub fn bounds<P: ProbSource>(lineage: &Lineage, probs: &P) -> Result<Bounds> {
    let b = walk(lineage, probs)?;
    debug_assert!(b.lower <= b.upper + 1e-12, "crossed bounds {b:?}");
    Ok(b)
}

/// The upper bound alone — what the β short-circuit consumes.
pub fn upper_bound<P: ProbSource>(lineage: &Lineage, probs: &P) -> Result<f64> {
    Ok(bounds(lineage, probs)?.upper)
}

fn walk<P: ProbSource>(l: &Lineage, probs: &P) -> Result<Bounds> {
    Ok(match l {
        Lineage::Const(b) => Bounds::exact(if *b { 1.0 } else { 0.0 }),
        Lineage::Var(v) => Bounds::exact(probs.prob(*v).ok_or(LineageError::UnknownVar(*v))?),
        Lineage::Not(e) => {
            let inner = walk(e, probs)?;
            Bounds {
                lower: (1.0 - inner.upper).max(0.0),
                upper: (1.0 - inner.lower).min(1.0),
            }
        }
        Lineage::And(es) => {
            // Upper: min of children. Lower: Fréchet, max(0, Σlo − (n−1)).
            let mut upper = 1.0f64;
            let mut lower_sum = 0.0f64;
            let mut n = 0usize;
            for e in es {
                let b = walk(e, probs)?;
                upper = upper.min(b.upper);
                lower_sum += b.lower;
                n += 1;
            }
            Bounds {
                lower: (lower_sum - (n.saturating_sub(1)) as f64)
                    .max(0.0)
                    .min(upper),
                upper,
            }
        }
        Lineage::Or(es) => {
            // Upper: union bound, min(1, Σhi). Lower: max of children.
            let mut upper_sum = 0.0f64;
            let mut lower = 0.0f64;
            for e in es {
                let b = walk(e, probs)?;
                upper_sum += b.upper;
                lower = lower.max(b.lower);
            }
            let upper = upper_sum.min(1.0);
            Bounds {
                lower: lower.min(upper),
                upper,
            }
        }
    })
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::expr::VarId;
    use crate::prob::Evaluator;
    use crate::rng::Rng64;
    use std::collections::HashMap;

    fn probs(pairs: &[(u64, f64)]) -> HashMap<VarId, f64> {
        pairs.iter().map(|&(v, p)| (VarId(v), p)).collect()
    }

    #[test]
    fn leaves_are_exact() {
        let pr = probs(&[(0, 0.3)]);
        assert_eq!(
            bounds(&Lineage::var(0), &pr).unwrap(),
            Bounds {
                lower: 0.3,
                upper: 0.3
            }
        );
        assert_eq!(bounds(&Lineage::certain(), &pr).unwrap().lower, 1.0);
        assert_eq!(bounds(&Lineage::Const(false), &pr).unwrap().upper, 0.0);
    }

    #[test]
    fn paper_running_example_is_bracketed() {
        // (t02 ∨ t03) ∧ t13 with p = 0.3, 0.4, 0.1 → exact 0.058.
        let l = Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ]);
        let pr = probs(&[(2, 0.3), (3, 0.4), (13, 0.1)]);
        let b = bounds(&l, &pr).unwrap();
        assert!(b.lower <= 0.058 && 0.058 <= b.upper, "{b:?}");
        // The AND upper bound is min(union(0.3,0.4), 0.1) = 0.1: tight
        // enough that any β ≥ 0.1 short-circuits this result.
        assert_eq!(b.upper, 0.1);
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let pr = probs(&[]);
        assert!(matches!(
            bounds(&Lineage::var(9), &pr),
            Err(LineageError::UnknownVar(VarId(9)))
        ));
    }

    #[test]
    fn bounds_bracket_exact_on_random_formulas() {
        // Randomized structural soundness check with the in-repo RNG:
        // generate formulas with heavy variable sharing (the hard case)
        // and verify lower ≤ exact ≤ upper for each.
        let mut rng = Rng64::seed_from_u64(0x000b_0cd5);
        let ev = Evaluator::exact_only(1 << 16);
        for case in 0..200 {
            let n_vars = 2 + rng.below_u64(5);
            let pr: HashMap<VarId, f64> = (0..n_vars).map(|i| (VarId(i), rng.next_f64())).collect();
            let l = random_formula(&mut rng, n_vars, 3);
            let exact = ev.probability(&l, &pr).unwrap();
            let b = bounds(&l, &pr).unwrap();
            assert!(
                b.lower - 1e-9 <= exact && exact <= b.upper + 1e-9,
                "case {case}: exact {exact} outside {b:?} for {l:?}"
            );
        }
    }

    fn random_formula(rng: &mut Rng64, n_vars: u64, depth: usize) -> Lineage {
        if depth == 0 || rng.chance(0.3) {
            return Lineage::var(rng.below_u64(n_vars));
        }
        match rng.below_u64(3) {
            0 => Lineage::not(random_formula(rng, n_vars, depth - 1)),
            1 => Lineage::and(
                (0..2 + rng.below_u64(2))
                    .map(|_| random_formula(rng, n_vars, depth - 1))
                    .collect(),
            ),
            _ => Lineage::or(
                (0..2 + rng.below_u64(2))
                    .map(|_| random_formula(rng, n_vars, depth - 1))
                    .collect(),
            ),
        }
    }
}
