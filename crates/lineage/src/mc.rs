//! Seeded Monte-Carlo estimation of lineage probabilities.

use crate::error::LineageError;
use crate::expr::{Lineage, VarId};
use crate::prob::ProbSource;
use crate::rng::Rng64;
use crate::Result;

/// A seeded Monte-Carlo estimator.
///
/// Samples every variable independently from its marginal and averages the
/// formula's truth value. The standard error is `≈ sqrt(p(1-p)/samples)`,
/// so 100 000 samples give roughly ±0.3 % absolute at `p = 0.5`.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    samples: usize,
    seed: u64,
}

impl MonteCarlo {
    /// Create an estimator with a fixed sample count and seed.
    pub fn new(samples: usize, seed: u64) -> Self {
        MonteCarlo { samples, seed }
    }

    /// Estimate `P[lineage = true]` under independent variables.
    pub fn estimate<P: ProbSource>(&self, lineage: &Lineage, probs: &P) -> Result<f64> {
        let vars = lineage.vars();
        // Resolve marginals up front so unknown variables fail fast.
        let mut marginals = Vec::with_capacity(vars.len());
        for &v in &vars {
            marginals.push(probs.prob(v).ok_or(LineageError::UnknownVar(v))?);
        }
        if self.samples == 0 {
            return Err(LineageError::BudgetExceeded { budget: 0 });
        }
        let mut rng = Rng64::seed_from_u64(self.seed);
        let mut hits = 0usize;
        let mut assignment: Vec<bool> = vec![false; vars.len()];
        for _ in 0..self.samples {
            for (slot, &p) in assignment.iter_mut().zip(&marginals) {
                *slot = rng.next_f64() < p;
            }
            // Every variable in the lineage was collected into `vars`
            // above, so the lookup cannot miss; the panic-free fallback
            // for the impossible case is `false` (PCQE-P002).
            let truth = lineage.eval(&|v: VarId| {
                vars.binary_search(&v)
                    .ok()
                    .and_then(|slot| assignment.get(slot).copied())
                    .unwrap_or(false)
            });
            if truth {
                hits += 1;
            }
        }
        Ok(hits as f64 / self.samples as f64)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn probs(pairs: &[(u64, f64)]) -> HashMap<VarId, f64> {
        pairs.iter().map(|&(v, p)| (VarId(v), p)).collect()
    }

    #[test]
    fn estimates_single_variable() {
        let mc = MonteCarlo::new(100_000, 1);
        let p = mc.estimate(&Lineage::var(0), &probs(&[(0, 0.3)])).unwrap();
        assert!((p - 0.3).abs() < 0.01, "{p}");
    }

    #[test]
    fn estimates_conjunction() {
        let mc = MonteCarlo::new(200_000, 2);
        let l = Lineage::and(vec![Lineage::var(0), Lineage::var(1)]);
        let p = mc.estimate(&l, &probs(&[(0, 0.5), (1, 0.5)])).unwrap();
        assert!((p - 0.25).abs() < 0.01, "{p}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let l = Lineage::or(vec![Lineage::var(0), Lineage::var(1)]);
        let pr = probs(&[(0, 0.2), (1, 0.6)]);
        let a = MonteCarlo::new(10_000, 99).estimate(&l, &pr).unwrap();
        let b = MonteCarlo::new(10_000, 99).estimate(&l, &pr).unwrap();
        assert_eq!(a, b);
        let c = MonteCarlo::new(10_000, 100).estimate(&l, &pr).unwrap();
        // Different seed is allowed to differ (and with high probability does).
        assert!((a - c).abs() < 0.05);
    }

    #[test]
    fn unknown_variable_fails_fast() {
        let mc = MonteCarlo::new(10, 0);
        assert_eq!(
            mc.estimate(&Lineage::var(5), &probs(&[])).unwrap_err(),
            LineageError::UnknownVar(VarId(5))
        );
    }

    #[test]
    fn zero_samples_is_an_error() {
        let mc = MonteCarlo::new(0, 0);
        assert!(mc.estimate(&Lineage::var(0), &probs(&[(0, 0.5)])).is_err());
    }
}
