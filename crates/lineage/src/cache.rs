//! Query-scoped confidence cache: a hash-consed circuit pool with
//! memoized, incrementally-invalidated subcircuit probabilities.
//!
//! The strategy-finding workloads of the paper (Fig. 11) evaluate the same
//! result confidences over and over with *one* base-tuple probability
//! nudged per probe. The plain pipeline re-runs Shannon expansion per
//! evaluation; [`CircuitCache`] instead:
//!
//! 1. **Hash-conses** compiled arithmetic nodes into a canonical pool:
//!    structurally equal subcircuits — across results of one query, and
//!    across the hi/lo cofactors of one expansion — become a single node,
//!    found via a structural [`BTreeMap`] key and addressed by a
//!    deterministic, insertion-ordered id.
//! 2. **Memoizes compilation** per (sub)formula, so the second result that
//!    contains an already-compiled subformula pays a map lookup instead of
//!    a fresh expansion.
//! 3. **Memoizes evaluation** per node under the cache's current
//!    probability assignment. [`CircuitCache::set_prob`] compares bit
//!    patterns and, only on a real change, walks reverse edges from the
//!    variable's reader nodes, dropping exactly the memos whose value
//!    depends on it — circuits whose var-set does not intersect the change
//!    keep their memoized probabilities untouched.
//!
//! # Determinism
//!
//! Cached scoring is bit-identical to the uncached
//! [`Evaluator::probability`] path:
//!
//! - compilation runs on the same simplified/factored formula with the same
//!   pivot rule, so pooled circuits have the exact structure the
//!   interpreter's recursion traces;
//! - [`CircuitCache::score`] replays the interpreter's float operations in
//!   the same order (`Π`, `1 − Π(1 − ·)`, `p·hi + (1 − p)·lo`), and a memo
//!   hit returns the very f64 the first evaluation produced;
//! - budget accounting is *parity-exact*: a fresh compile of a subformula
//!   with remaining budget `r` succeeds iff `r ≥ cost`, consuming exactly
//!   `cost` — so a compile-memo hit charges the recorded cost up front and
//!   fails with the identical [`LineageError::BudgetExceeded`] iff the
//!   stepwise recursion would have;
//! - on budget exhaustion the cache falls back to the same seeded
//!   Monte-Carlo estimate over the same factored formula.
//!
//! Every container in this module is a `BTreeMap` or a `Vec` indexed by
//! insertion order (PCQE-D001): iteration order, node ids and therefore
//! every emitted statistic are independent of hash seeds and thread count.

use crate::compile::{Arith, CompiledLineage};
use crate::error::LineageError;
use crate::expr::{Lineage, VarId};
use crate::mc::MonteCarlo;
use crate::prob::Evaluator;
use crate::Result;
use pcqe_par::TraceSink;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Handle to one root circuit in a [`CircuitCache`]. Ids are dense and
/// assigned in first-compile order, so they are deterministic for a
/// deterministic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CircuitId(pub(crate) usize);

/// Cache activity counters, drained with [`CircuitCache::take_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Root circuits compiled fresh (one per distinct input formula).
    pub compiled: u64,
    /// Compile-memo hits: a whole circuit or subformula served from the
    /// pool instead of being re-expanded.
    pub compile_hits: u64,
    /// Evaluation-memo hits: a subcircuit probability reused under the
    /// current probability assignment.
    pub eval_hits: u64,
    /// Node memos dropped by [`CircuitCache::set_prob`] invalidation.
    pub invalidated: u64,
}

impl CacheStats {
    /// Total cache hits (compile + eval), the number reported as
    /// `lineage.cache_hit`.
    pub fn hits(&self) -> u64 {
        self.compile_hits.saturating_add(self.eval_hits)
    }

    /// Merge another stats delta into this one (saturating).
    pub fn absorb(&mut self, other: CacheStats) {
        self.compiled = self.compiled.saturating_add(other.compiled);
        self.compile_hits = self.compile_hits.saturating_add(other.compile_hits);
        self.eval_hits = self.eval_hits.saturating_add(other.eval_hits);
        self.invalidated = self.invalidated.saturating_add(other.invalidated);
    }
}

type NodeId = usize;

/// Structural identity of a pool node. Children are referenced by
/// [`NodeId`], so two keys are equal exactly when the subcircuits are
/// structurally identical — the hash-consing invariant. `Const` stores the
/// f64 bit pattern to stay `Ord` without float comparison (PCQE-D004).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum NodeKey {
    Const(u64),
    Var(VarId),
    Complement(NodeId),
    Product(Vec<NodeId>),
    DisjProduct(Vec<NodeId>),
    Mix { var: VarId, hi: NodeId, lo: NodeId },
}

#[derive(Debug)]
struct Node {
    key: NodeKey,
    /// The shared compiled form of this subcircuit; roots wrap it into a
    /// [`CompiledLineage`] for the solvers, so the whole pool is one DAG of
    /// `Arc`s.
    arith: Arc<Arith>,
    /// Memoized probability under the cache's current assignment; `None`
    /// when unevaluated or invalidated. Invariant: if a node's memo is
    /// `Some`, every descendant's memo is `Some` (parents are filled after
    /// children), so invalidation can stop at already-`None` nodes.
    memo: Option<f64>,
    /// Reverse edges: nodes that use this node as a direct child.
    parents: Vec<NodeId>,
}

/// An optional, shared causal-trace sink. The newtype exists so
/// [`CircuitCache`] can keep deriving `Debug`/`Default` — trait objects
/// have neither.
#[derive(Default, Clone)]
struct TraceSlot(Option<Arc<dyn TraceSink + Send + Sync>>);

impl fmt::Debug for TraceSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TraceSlot")
            .field(&self.0.as_ref().map(|_| "attached"))
            .finish()
    }
}

#[derive(Debug)]
struct RootEntry {
    root: NodeId,
    /// Shannon expansions a fresh compile of this formula consumes; a
    /// compile-memo hit re-charges this against the caller's budget.
    cost: usize,
    compiled: Arc<CompiledLineage>,
}

/// The cache itself. See the module docs for the design; typical use:
///
/// ```
/// use pcqe_lineage::{CircuitCache, Evaluator, Lineage, VarId};
///
/// let mut cache = CircuitCache::new();
/// cache.set_prob(VarId(2), 0.3);
/// cache.set_prob(VarId(3), 0.4);
/// cache.set_prob(VarId(13), 0.1);
/// let l = Lineage::and(vec![
///     Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
///     Lineage::var(13),
/// ]);
/// let p = cache.score_lineage(&l, &Evaluator::default()).unwrap();
/// assert!((p - 0.058).abs() < 1e-12);
/// // A what-if probe: only circuits reading v3 are re-evaluated.
/// cache.set_prob(VarId(3), 0.5);
/// let p2 = cache.score_lineage(&l, &Evaluator::default()).unwrap();
/// assert!((p2 - 0.065).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct CircuitCache {
    nodes: Vec<Node>,
    /// Hash-consing index: structural key → pooled node.
    dedup: BTreeMap<NodeKey, NodeId>,
    /// Compile memo over simplified/factored (sub)formulas, with the budget
    /// cost a fresh compile would charge.
    subformulas: BTreeMap<Lineage, (NodeId, usize)>,
    /// Root memo over *original* (pre-simplify) formulas.
    circuits: BTreeMap<Lineage, CircuitId>,
    roots: Vec<RootEntry>,
    /// Current probability assignment (the "versions" of the base tuples:
    /// a bitwise change is a new version and triggers invalidation).
    probs: BTreeMap<VarId, f64>,
    /// Nodes whose value reads a variable directly (`Var` leaves and `Mix`
    /// pivots) — the invalidation frontier for that variable.
    readers: BTreeMap<VarId, Vec<NodeId>>,
    stats: CacheStats,
    /// Passive causal-trace sink: compile/hit/invalidate events flow to
    /// the engine's tracer when attached. Never consulted for results.
    trace: TraceSlot,
}

impl CircuitCache {
    /// An empty cache with no probabilities assigned.
    pub fn new() -> CircuitCache {
        CircuitCache::default()
    }

    /// Number of pooled arithmetic nodes.
    pub fn pool_size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct root circuits compiled so far.
    pub fn circuit_count(&self) -> usize {
        self.roots.len()
    }

    /// Counters accumulated since the last [`CircuitCache::take_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drain and reset the activity counters (the engine turns these into
    /// `lineage.*` metric deltas per recorded decision).
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// The current probability assignment.
    pub fn probs(&self) -> &BTreeMap<VarId, f64> {
        &self.probs
    }

    /// Attach (or detach, with `None`) a causal-trace sink. The sink is
    /// observation-only — compile/hit/invalidate events mirror what the
    /// [`CacheStats`] counters already count, with per-event detail.
    pub fn set_trace(&mut self, sink: Option<Arc<dyn TraceSink + Send + Sync>>) {
        self.trace = TraceSlot(sink);
    }

    fn emit(&self, name: &str, detail: &str) {
        if let Some(sink) = &self.trace.0 {
            sink.instant(name, detail);
        }
    }

    /// Set `var`'s probability. A bitwise-identical write is a no-op;
    /// otherwise the memos of exactly the nodes whose value depends on
    /// `var` are dropped (transitively, child → parent, stopping early at
    /// nodes that were already unevaluated).
    pub fn set_prob(&mut self, var: VarId, p: f64) {
        if self
            .probs
            .get(&var)
            .is_some_and(|old| old.to_bits() == p.to_bits())
        {
            return;
        }
        self.probs.insert(var, p);
        let dropped = self.invalidate_readers(var);
        if dropped > 0 {
            self.emit(
                "cache.invalidate",
                &format!("var={} dropped={dropped}", var.0),
            );
        }
    }

    /// Drop the memos of every node transitively reading `var`; returns
    /// how many memos were dropped (also added to `stats.invalidated`).
    fn invalidate_readers(&mut self, var: VarId) -> u64 {
        let mut dropped: u64 = 0;
        let mut frontier: Vec<NodeId> = self.readers.get(&var).cloned().unwrap_or_default();
        while let Some(id) = frontier.pop() {
            if let Some(node) = self.nodes.get_mut(id) {
                if node.memo.take().is_some() {
                    self.stats.invalidated = self.stats.invalidated.saturating_add(1);
                    dropped = dropped.saturating_add(1);
                    frontier.extend(node.parents.iter().copied());
                }
            }
        }
        dropped
    }

    /// Drop `var`'s probability entirely (subsequent scores of circuits
    /// reading it fail with [`LineageError::UnknownVar`], like the
    /// uncached evaluator).
    pub fn remove_prob(&mut self, var: VarId) {
        if self.probs.remove(&var).is_none() {
            return;
        }
        let dropped = self.invalidate_readers(var);
        if dropped > 0 {
            self.emit(
                "cache.invalidate",
                &format!("var={} dropped={dropped}", var.0),
            );
        }
    }

    /// Compile `lineage` into the pool, spending at most `budget` Shannon
    /// expansions. Repeat compiles of the same formula are memo hits that
    /// charge the recorded cost against `budget` — succeeding and failing
    /// exactly when a fresh [`CompiledLineage::compile`] would.
    pub fn compile(&mut self, lineage: &Lineage, budget: usize) -> Result<CircuitId> {
        if let Some(&id) = self.circuits.get(lineage) {
            let cost = self.roots.get(id.0).map(|r| r.cost).unwrap_or(0);
            if budget < cost {
                // Match the uncached error payload: the stepwise recursion
                // always reports exhaustion at a zero remainder.
                return Err(LineageError::BudgetExceeded { budget: 0 });
            }
            self.stats.compile_hits = self.stats.compile_hits.saturating_add(1);
            self.emit("cache.hit", &format!("circuit={} cost={cost}", id.0));
            return Ok(id);
        }
        let mut simplified = lineage.simplify();
        if !simplified.is_read_once() {
            simplified = crate::factor::factor(&simplified);
        }
        let vars = simplified.vars();
        let mut remaining = budget;
        let root = self.compile_sub(&simplified, &mut remaining)?;
        let cost = budget - remaining;
        let arith = match self.nodes.get(root) {
            Some(node) => node.arith.clone(),
            None => Arc::new(Arith::Const(0.0)), // unreachable: root was just interned
        };
        let id = CircuitId(self.roots.len());
        self.roots.push(RootEntry {
            root,
            cost,
            compiled: Arc::new(CompiledLineage::from_parts(vars, arith)),
        });
        self.circuits.insert(lineage.clone(), id);
        self.stats.compiled = self.stats.compiled.saturating_add(1);
        self.emit(
            "cache.compile",
            &format!("circuit={} cost={cost} pool={}", id.0, self.nodes.len()),
        );
        Ok(id)
    }

    /// The pooled [`CompiledLineage`] for a circuit, shareable across
    /// solvers via its `Arc`.
    pub fn compiled(&self, id: CircuitId) -> Option<&Arc<CompiledLineage>> {
        self.roots.get(id.0).map(|r| &r.compiled)
    }

    /// Memoized probability of a compiled circuit under the current
    /// assignment.
    pub fn score(&mut self, id: CircuitId) -> Result<f64> {
        let root = self
            .roots
            .get(id.0)
            .map(|r| r.root)
            .ok_or(LineageError::UnknownCircuit(id.0))?;
        self.eval_node(root)
    }

    /// Compile-and-score in one call, with the evaluator's Monte-Carlo
    /// fallback on budget exhaustion — the cached twin of
    /// [`Evaluator::probability`], bit-identical on every path.
    pub fn score_lineage(&mut self, lineage: &Lineage, evaluator: &Evaluator) -> Result<f64> {
        match self.compile(lineage, evaluator.budget) {
            Ok(id) => self.score(id),
            Err(LineageError::BudgetExceeded { .. }) if evaluator.mc_samples > 0 => {
                // Same fallback as the uncached path: seeded Monte-Carlo
                // over the same simplified/factored formula.
                let mut simplified = lineage.simplify();
                if !simplified.is_read_once() {
                    simplified = crate::factor::factor(&simplified);
                }
                MonteCarlo::new(evaluator.mc_samples, evaluator.mc_seed)
                    .estimate(&simplified, &self.probs)
            }
            Err(e) => Err(e),
        }
    }

    /// Compile memo + hash-consing recursion. Mirrors
    /// [`crate::compile::compile_rec`]'s structure and budget accounting
    /// exactly; on a memo hit the recorded cost is charged up front (see
    /// the module docs for the parity argument).
    fn compile_sub(&mut self, l: &Lineage, budget: &mut usize) -> Result<NodeId> {
        if let Some(&(id, cost)) = self.subformulas.get(l) {
            if *budget < cost {
                return Err(LineageError::BudgetExceeded { budget: 0 });
            }
            *budget -= cost;
            self.stats.compile_hits = self.stats.compile_hits.saturating_add(1);
            return Ok(id);
        }
        let before = *budget;
        let id = match l {
            Lineage::Const(b) => {
                let c: f64 = if *b { 1.0 } else { 0.0 };
                self.intern(NodeKey::Const(c.to_bits()))
            }
            Lineage::Var(v) => self.intern(NodeKey::Var(*v)),
            Lineage::Not(e) => {
                let child = self.compile_sub(e, budget)?;
                self.intern(NodeKey::Complement(child))
            }
            Lineage::And(es) => {
                if let Some(pivot) = crate::prob::most_shared_var_pub(es) {
                    self.compile_mix(l, pivot, budget)?
                } else {
                    let mut children = Vec::with_capacity(es.len());
                    for e in es {
                        children.push(self.compile_sub(e, budget)?);
                    }
                    self.intern(NodeKey::Product(children))
                }
            }
            Lineage::Or(es) => {
                if let Some(pivot) = crate::prob::most_shared_var_pub(es) {
                    self.compile_mix(l, pivot, budget)?
                } else {
                    let mut children = Vec::with_capacity(es.len());
                    for e in es {
                        children.push(self.compile_sub(e, budget)?);
                    }
                    self.intern(NodeKey::DisjProduct(children))
                }
            }
        };
        let cost = before.saturating_sub(*budget);
        self.subformulas.insert(l.clone(), (id, cost));
        Ok(id)
    }

    /// Shannon expansion on `pivot`, with the same check-then-decrement
    /// budget step as the uncached compiler.
    fn compile_mix(&mut self, l: &Lineage, pivot: VarId, budget: &mut usize) -> Result<NodeId> {
        if *budget == 0 {
            return Err(LineageError::BudgetExceeded { budget: 0 });
        }
        *budget -= 1;
        let hi = self.compile_sub(&l.condition(pivot, true), budget)?;
        let lo = self.compile_sub(&l.condition(pivot, false), budget)?;
        Ok(self.intern(NodeKey::Mix { var: pivot, hi, lo }))
    }

    /// Find-or-create the pool node for a structural key, wiring reverse
    /// edges and variable-reader lists on creation.
    fn intern(&mut self, key: NodeKey) -> NodeId {
        if let Some(&id) = self.dedup.get(&key) {
            return id;
        }
        let id = self.nodes.len();
        let arith = self.materialize(&key);
        match &key {
            NodeKey::Const(_) => {}
            NodeKey::Var(v) => self.readers.entry(*v).or_default().push(id),
            NodeKey::Complement(c) => self.add_parent(*c, id),
            NodeKey::Product(cs) | NodeKey::DisjProduct(cs) => {
                for &c in cs {
                    self.add_parent(c, id);
                }
            }
            NodeKey::Mix { var, hi, lo } => {
                self.readers.entry(*var).or_default().push(id);
                self.add_parent(*hi, id);
                self.add_parent(*lo, id);
            }
        }
        self.dedup.insert(key.clone(), id);
        self.nodes.push(Node {
            key,
            arith,
            memo: None,
            parents: Vec::new(),
        });
        id
    }

    fn add_parent(&mut self, child: NodeId, parent: NodeId) {
        if let Some(node) = self.nodes.get_mut(child) {
            if !node.parents.contains(&parent) {
                node.parents.push(parent);
            }
        }
    }

    /// Build the shared [`Arith`] for a key from its children's shared
    /// `Arc`s — this is where structural sharing becomes pointer sharing.
    fn materialize(&self, key: &NodeKey) -> Arc<Arith> {
        let child = |id: &NodeId| -> Arc<Arith> {
            match self.nodes.get(*id) {
                Some(n) => n.arith.clone(),
                None => Arc::new(Arith::Const(0.0)), // unreachable: children precede parents
            }
        };
        match key {
            NodeKey::Const(bits) => Arc::new(Arith::Const(f64::from_bits(*bits))),
            NodeKey::Var(v) => Arc::new(Arith::Var(*v)),
            NodeKey::Complement(c) => Arc::new(Arith::Complement(child(c))),
            NodeKey::Product(cs) => Arc::new(Arith::Product(cs.iter().map(child).collect())),
            NodeKey::DisjProduct(cs) => {
                Arc::new(Arith::DisjProduct(cs.iter().map(child).collect()))
            }
            NodeKey::Mix { var, hi, lo } => Arc::new(Arith::Mix {
                var: *var,
                hi: child(hi),
                lo: child(lo),
            }),
        }
    }

    fn prob_of(&self, var: VarId) -> Result<f64> {
        self.probs
            .get(&var)
            .copied()
            .ok_or(LineageError::UnknownVar(var))
    }

    /// Memoized bottom-up evaluation. The float operations and their order
    /// are exactly those of [`CompiledLineage::eval`] / the interpreter's
    /// `exact` recursion — a memo hit just short-circuits to the f64 that
    /// recursion already produced.
    fn eval_node(&mut self, id: NodeId) -> Result<f64> {
        let key = match self.nodes.get(id) {
            Some(node) => {
                if let Some(p) = node.memo {
                    self.stats.eval_hits = self.stats.eval_hits.saturating_add(1);
                    return Ok(p);
                }
                node.key.clone()
            }
            None => return Err(LineageError::UnknownCircuit(id)),
        };
        let p = match key {
            NodeKey::Const(bits) => f64::from_bits(bits),
            NodeKey::Var(v) => self.prob_of(v)?,
            NodeKey::Complement(c) => 1.0 - self.eval_node(c)?,
            NodeKey::Product(cs) => {
                let mut p = 1.0;
                for c in cs {
                    p *= self.eval_node(c)?;
                }
                p
            }
            NodeKey::DisjProduct(cs) => {
                let mut q = 1.0;
                for c in cs {
                    q *= 1.0 - self.eval_node(c)?;
                }
                1.0 - q
            }
            NodeKey::Mix { var, hi, lo } => {
                let pv = self.prob_of(var)?;
                let h = self.eval_node(hi)?;
                let l = self.eval_node(lo)?;
                pv * h + (1.0 - pv) * l
            }
        };
        if let Some(node) = self.nodes.get_mut(id) {
            node.memo = Some(p);
        }
        Ok(p)
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn example() -> Lineage {
        Lineage::and(vec![
            Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
            Lineage::var(13),
        ])
    }

    fn seed_probs(cache: &mut CircuitCache, pairs: &[(u64, f64)]) -> BTreeMap<VarId, f64> {
        let mut map = BTreeMap::new();
        for &(v, p) in pairs {
            cache.set_prob(VarId(v), p);
            map.insert(VarId(v), p);
        }
        map
    }

    #[test]
    fn cached_score_matches_interpreter_bitwise() {
        let mut cache = CircuitCache::new();
        let pr = seed_probs(&mut cache, &[(2, 0.3), (3, 0.4), (13, 0.1)]);
        let ev = Evaluator::default();
        let l = example();
        let cached = cache.score_lineage(&l, &ev).unwrap();
        let plain = ev.probability(&l, &pr).unwrap();
        assert_eq!(cached.to_bits(), plain.to_bits());
    }

    #[test]
    fn repeat_scores_hit_the_memo() {
        let mut cache = CircuitCache::new();
        seed_probs(&mut cache, &[(2, 0.3), (3, 0.4), (13, 0.1)]);
        let ev = Evaluator::default();
        let first = cache.score_lineage(&example(), &ev).unwrap();
        let stats_after_first = cache.stats();
        assert_eq!(stats_after_first.compiled, 1);
        let second = cache.score_lineage(&example(), &ev).unwrap();
        assert_eq!(first.to_bits(), second.to_bits());
        let stats = cache.stats();
        assert_eq!(stats.compiled, 1, "no recompile on the second call");
        assert!(stats.compile_hits > stats_after_first.compile_hits);
        assert!(stats.eval_hits > stats_after_first.eval_hits);
    }

    #[test]
    fn invalidation_is_scoped_to_the_touched_variable() {
        let mut cache = CircuitCache::new();
        seed_probs(&mut cache, &[(0, 0.2), (1, 0.5), (2, 0.8), (3, 0.4)]);
        let ev = Evaluator::default();
        let touches_0 = Lineage::and(vec![Lineage::var(0), Lineage::var(1)]);
        let disjoint = Lineage::or(vec![Lineage::var(2), Lineage::var(3)]);
        cache.score_lineage(&touches_0, &ev).unwrap();
        cache.score_lineage(&disjoint, &ev).unwrap();
        cache.take_stats();
        cache.set_prob(VarId(0), 0.9);
        assert!(cache.stats().invalidated > 0, "v0 readers invalidated");
        let invalidated_before = cache.stats().invalidated;
        // The disjoint circuit's memo must have survived: scoring it again
        // is pure eval hits, no fresh arithmetic.
        let eval_hits_before = cache.stats().eval_hits;
        cache.score_lineage(&disjoint, &ev).unwrap();
        assert!(cache.stats().eval_hits > eval_hits_before);
        assert_eq!(cache.stats().invalidated, invalidated_before);
    }

    #[test]
    fn bitwise_identical_rewrite_does_not_invalidate() {
        let mut cache = CircuitCache::new();
        seed_probs(&mut cache, &[(2, 0.3), (3, 0.4), (13, 0.1)]);
        cache
            .score_lineage(&example(), &Evaluator::default())
            .unwrap();
        cache.take_stats();
        cache.set_prob(VarId(3), 0.4);
        assert_eq!(cache.stats().invalidated, 0);
    }

    #[test]
    fn what_if_probe_sequence_matches_uncached_bitwise() {
        let mut cache = CircuitCache::new();
        let mut pr = seed_probs(&mut cache, &[(2, 0.3), (3, 0.4), (13, 0.1)]);
        let ev = Evaluator::default();
        let l = example();
        for step in 1..=5u64 {
            let p3 = 0.4 + 0.1 * step as f64 / 5.0;
            cache.set_prob(VarId(3), p3);
            pr.insert(VarId(3), p3);
            let cached = cache.score_lineage(&l, &ev).unwrap();
            let plain = ev.probability(&l, &pr).unwrap();
            assert_eq!(cached.to_bits(), plain.to_bits(), "step {step}");
        }
    }

    #[test]
    fn shared_subformulas_are_pooled_across_circuits() {
        let mut cache = CircuitCache::new();
        seed_probs(&mut cache, &[(0, 0.2), (1, 0.5), (2, 0.8)]);
        let shared = Lineage::or(vec![Lineage::var(0), Lineage::var(1)]);
        let a = Lineage::and(vec![shared.clone(), Lineage::var(2)]);
        let b = shared.clone();
        let ev = Evaluator::default();
        cache.score_lineage(&a, &ev).unwrap();
        let pool_after_a = cache.pool_size();
        cache.score_lineage(&b, &ev).unwrap();
        // b's whole body was already in the pool: only stats move.
        assert_eq!(cache.pool_size(), pool_after_a);
        assert!(cache.stats().compile_hits > 0);
    }

    #[test]
    fn budget_parity_with_fresh_compiles() {
        // For every budget, cache compile (fresh and memo-hit) must agree
        // with CompiledLineage::compile on success/failure and error value.
        let mut children = Vec::new();
        for i in 0..8u64 {
            children.push(Lineage::And(vec![Lineage::var(i), Lineage::var(i + 1)]));
        }
        let l = Lineage::Or(children);
        for budget in 0..64usize {
            let fresh = CompiledLineage::compile(&l, budget).map(|_| ());
            let mut warmed = CircuitCache::new();
            let _ = warmed.compile(&l, 1 << 16); // warm the memo
            let hit = warmed.compile(&l, budget).map(|_| ());
            let mut cold = CircuitCache::new();
            let miss = cold.compile(&l, budget).map(|_| ());
            assert_eq!(fresh.is_ok(), hit.is_ok(), "budget {budget} (memo hit)");
            assert_eq!(fresh, miss, "budget {budget} (cold)");
        }
    }

    #[test]
    fn mc_fallback_matches_uncached_bitwise() {
        let mut children = Vec::new();
        for i in 0..12u64 {
            children.push(Lineage::And(vec![Lineage::var(i), Lineage::var(i + 1)]));
        }
        let l = Lineage::Or(children);
        let ev = Evaluator {
            budget: 1,
            mc_samples: 20_000,
            mc_seed: 7,
        };
        let mut cache = CircuitCache::new();
        let mut pr = BTreeMap::new();
        for i in 0..13u64 {
            cache.set_prob(VarId(i), 0.5);
            pr.insert(VarId(i), 0.5);
        }
        let cached = cache.score_lineage(&l, &ev).unwrap();
        let plain = ev.probability(&l, &pr).unwrap();
        assert_eq!(cached.to_bits(), plain.to_bits());
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let mut cache = CircuitCache::new();
        let err = cache
            .score_lineage(&Lineage::var(42), &Evaluator::default())
            .unwrap_err();
        assert_eq!(err, LineageError::UnknownVar(VarId(42)));
        // ... and becomes scoreable once the probability arrives.
        cache.set_prob(VarId(42), 0.25);
        let p = cache
            .score_lineage(&Lineage::var(42), &Evaluator::default())
            .unwrap();
        assert_eq!(p.to_bits(), 0.25f64.to_bits());
    }

    #[test]
    fn pooled_compiled_lineage_matches_standalone() {
        let mut cache = CircuitCache::new();
        let l = Lineage::Or(vec![
            Lineage::And(vec![Lineage::var(0), Lineage::var(1)]),
            Lineage::And(vec![Lineage::var(0), Lineage::var(2)]),
        ]);
        let id = cache.compile(&l, 1 << 12).unwrap();
        let pooled = cache.compiled(id).unwrap().clone();
        let standalone = CompiledLineage::compile(&l, 1 << 12).unwrap();
        assert_eq!(pooled.vars(), standalone.vars());
        let lookup = |v: VarId| 0.1 + 0.2 * v.0 as f64;
        assert_eq!(
            pooled.eval_with(lookup).to_bits(),
            standalone.eval_with(lookup).to_bits()
        );
    }

    #[test]
    fn randomized_equivalence_with_interpreter() {
        let mut rng = Rng64::seed_from_u64(0x00C4_C4E1);
        for case in 0..200u32 {
            let l = random_formula(&mut rng, 6, 3);
            let mut cache = CircuitCache::new();
            let mut pr = BTreeMap::new();
            for v in 0..6u64 {
                let p = rng.range_f64(0.05, 0.95);
                cache.set_prob(VarId(v), p);
                pr.insert(VarId(v), p);
            }
            let ev = Evaluator::exact_only(1 << 12);
            match (cache.score_lineage(&l, &ev), ev.probability(&l, &pr)) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits(), "case {case}: {l:?}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "case {case}: {l:?}"),
                (a, b) => panic!("case {case}: cache {a:?} vs plain {b:?} for {l:?}"),
            }
        }
    }

    #[test]
    fn attached_trace_sink_sees_compile_hit_and_invalidate() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Probe(Mutex<Vec<(String, String)>>);
        impl TraceSink for Probe {
            fn span_begin(&self, _name: &str) -> u64 {
                0
            }
            fn span_end(&self, _id: u64) {}
            fn instant(&self, name: &str, detail: &str) {
                self.0.lock().unwrap().push((name.into(), detail.into()));
            }
            fn decision(&self, _d: &pcqe_par::Decision) {}
        }
        let probe = Arc::new(Probe::default());
        let mut cache = CircuitCache::new();
        cache.set_trace(Some(probe.clone()));
        seed_probs(&mut cache, &[(2, 0.3), (3, 0.4), (13, 0.1)]);
        let ev = Evaluator::default();
        cache.score_lineage(&example(), &ev).unwrap();
        cache.score_lineage(&example(), &ev).unwrap();
        cache.set_prob(VarId(3), 0.5);
        cache.set_prob(VarId(3), 0.5); // bitwise no-op: no event
        let events = probe.0.lock().unwrap();
        let names: Vec<&str> = events.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names.iter().filter(|n| **n == "cache.compile").count(),
            1,
            "one fresh compile"
        );
        assert_eq!(
            names.iter().filter(|n| **n == "cache.hit").count(),
            1,
            "one root memo hit"
        );
        assert_eq!(
            names.iter().filter(|n| **n == "cache.invalidate").count(),
            1,
            "one real probability change"
        );
        let invalidate = events
            .iter()
            .find(|(n, _)| n == "cache.invalidate")
            .map(|(_, d)| d.clone())
            .unwrap();
        assert!(invalidate.starts_with("var=3 dropped="), "{invalidate}");
    }

    fn random_formula(rng: &mut Rng64, n_vars: u64, depth: u32) -> Lineage {
        if depth == 0 || rng.chance(0.3) {
            return Lineage::var(rng.below_u64(n_vars));
        }
        match rng.below_u64(3) {
            0 => Lineage::Not(Box::new(random_formula(rng, n_vars, depth - 1))),
            1 => Lineage::And(
                (0..2 + rng.below_usize(2))
                    .map(|_| random_formula(rng, n_vars, depth - 1))
                    .collect(),
            ),
            _ => Lineage::Or(
                (0..2 + rng.below_usize(2))
                    .map(|_| random_formula(rng, n_vars, depth - 1))
                    .collect(),
            ),
        }
    }
}
