//! Boolean lineage and confidence computation for PCQE.
//!
//! The paper (Section 3) computes the confidence of each query result from
//! the confidence values of the base tuples it derives from, via *lineage
//! propagation* in the style of Trio and of Dalvi–Suciu probabilistic query
//! evaluation. A result's lineage is a boolean formula over base-tuple
//! variables; under tuple independence, its confidence is the probability
//! that the formula is true.
//!
//! The running example's result has lineage `(t02 ∨ t03) ∧ t13`, giving
//! `p38 = (p02 + p03 − p02·p03) · p13 = 0.058`:
//!
//! ```
//! use pcqe_lineage::{Lineage, VarId, Evaluator};
//!
//! let l = Lineage::and(vec![
//!     Lineage::or(vec![Lineage::var(2), Lineage::var(3)]),
//!     Lineage::var(13),
//! ]);
//! let probs = |v: VarId| match v.0 {
//!     2 => Some(0.3),
//!     3 => Some(0.4),
//!     13 => Some(0.1),
//!     _ => None,
//! };
//! let p = Evaluator::default().probability(&l, &probs).unwrap();
//! assert!((p - 0.058).abs() < 1e-12);
//! ```

pub mod bound;
pub mod cache;
pub mod compile;
pub mod error;
pub mod expr;
pub mod factor;
pub mod mc;
pub mod prob;
pub mod rng;

pub use bound::{bounds, upper_bound, Bounds};
pub use cache::{CacheStats, CircuitCache, CircuitId};
pub use compile::CompiledLineage;
pub use error::LineageError;
pub use expr::{Lineage, VarId};
pub use factor::factor;
pub use mc::MonteCarlo;
pub use prob::{score_batch, Evaluator, ProbSource};
pub use rng::{Rng64, SplitMix64};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LineageError>;
