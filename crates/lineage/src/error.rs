//! Error type for lineage evaluation.

use crate::expr::VarId;
use std::fmt;

/// Errors raised while computing lineage probabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineageError {
    /// A variable had no probability in the supplied [`crate::ProbSource`].
    UnknownVar(VarId),
    /// Exact evaluation exceeded the Shannon-expansion budget.
    ///
    /// Callers can retry with a larger budget or fall back to
    /// [`crate::MonteCarlo`] estimation (which
    /// [`crate::Evaluator::probability`] does automatically when configured
    /// with a sample count).
    BudgetExceeded {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// A [`crate::cache::CircuitCache`] handle did not resolve to a pooled
    /// circuit (it belongs to a different cache, or the cache was rebuilt).
    UnknownCircuit(usize),
}

impl fmt::Display for LineageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineageError::UnknownVar(v) => write!(f, "no probability for variable {v}"),
            LineageError::BudgetExceeded { budget } => {
                write!(f, "exact evaluation exceeded budget of {budget} expansions")
            }
            LineageError::UnknownCircuit(id) => {
                write!(f, "no pooled circuit with cache id {id}")
            }
        }
    }
}

impl std::error::Error for LineageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        assert!(LineageError::UnknownVar(VarId(7))
            .to_string()
            .contains("v7"));
        assert!(LineageError::BudgetExceeded { budget: 10 }
            .to_string()
            .contains("10"));
    }
}
