//! Workload parameters (the Table 4 grid).

/// Parameters of the synthetic workload generator. Defaults are the bold
/// (default) values of the paper's Table 4.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Total number of distinct base tuples ("Data size", default 10K).
    pub data_size: usize,
    /// Base tuples associated with each result (default 5).
    pub bases_per_result: usize,
    /// Explicit number of result tuples; `None` derives it from
    /// `data_size · usage_factor / bases_per_result`.
    pub num_results: Option<usize>,
    /// Average number of results each base tuple participates in.
    pub usage_factor: f64,
    /// Confidence-increment step δ (default 0.1).
    pub delta: f64,
    /// Fraction of results that must be satisfied, θ (default 50 %).
    pub theta: f64,
    /// Confidence threshold β (default 0.6).
    pub beta: f64,
    /// Centre of the initial confidence distribution ("around 0.1").
    pub confidence_center: f64,
    /// Half-width of the uniform confidence jitter.
    pub confidence_jitter: f64,
    /// Latent cluster size for the shared-base structure; `None` picks
    /// `max(3 · bases_per_result, 16)`.
    pub cluster_size: Option<usize>,
    /// Probability that a base reference escapes its cluster.
    pub cross_cluster_prob: f64,
    /// RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            data_size: 10_000,
            bases_per_result: 5,
            num_results: None,
            usage_factor: 1.5,
            delta: 0.1,
            theta: 0.5,
            beta: 0.6,
            confidence_center: 0.1,
            confidence_jitter: 0.05,
            cluster_size: None,
            cross_cluster_prob: 0.08,
            seed: 0x5eed,
        }
    }
}

impl WorkloadParams {
    /// The paper's Figure 11(a)/(d) micro-workload: 10 base tuples, 5 per
    /// result, at least 3 of 6 results required above β = 0.6.
    pub fn fig11a() -> WorkloadParams {
        WorkloadParams {
            data_size: 10,
            bases_per_result: 5,
            num_results: Some(6),
            cluster_size: Some(10),
            cross_cluster_prob: 0.0,
            ..WorkloadParams::default()
        }
    }

    /// One point of the Figure 11(c)/(f) scalability sweep: bases per
    /// result is 5 below 5K and `data_size / 1000` from 10K up (the
    /// paper's rule).
    pub fn scalability_point(data_size: usize) -> WorkloadParams {
        let bases_per_result = if data_size < 5_000 {
            5
        } else {
            (data_size / 1_000).max(5)
        };
        WorkloadParams {
            data_size,
            bases_per_result,
            ..WorkloadParams::default()
        }
    }

    /// Effective number of results.
    pub fn results(&self) -> usize {
        self.num_results.unwrap_or_else(|| {
            ((self.data_size as f64 * self.usage_factor / self.bases_per_result as f64).round()
                as usize)
                .max(1)
        })
    }

    /// Effective cluster size.
    pub fn cluster(&self) -> usize {
        self.cluster_size
            .unwrap_or_else(|| (3 * self.bases_per_result).max(16))
            .max(self.bases_per_result)
    }

    /// Quota: `⌈θ · results⌉`.
    pub fn required(&self) -> usize {
        (self.theta * self.results() as f64).ceil() as usize
    }

    /// Derive a copy with a different seed (for repetition across trials).
    pub fn with_seed(mut self, seed: u64) -> WorkloadParams {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_4() {
        let p = WorkloadParams::default();
        assert_eq!(p.data_size, 10_000);
        assert_eq!(p.bases_per_result, 5);
        assert_eq!(p.delta, 0.1);
        assert_eq!(p.theta, 0.5);
        assert_eq!(p.beta, 0.6);
    }

    #[test]
    fn scalability_rule_for_bases_per_result() {
        assert_eq!(WorkloadParams::scalability_point(10).bases_per_result, 5);
        assert_eq!(WorkloadParams::scalability_point(1_000).bases_per_result, 5);
        assert_eq!(
            WorkloadParams::scalability_point(10_000).bases_per_result,
            10
        );
        assert_eq!(
            WorkloadParams::scalability_point(100_000).bases_per_result,
            100
        );
    }

    #[test]
    fn derived_counts() {
        let p = WorkloadParams::default();
        assert_eq!(p.results(), 3000);
        assert_eq!(p.required(), 1500);
        let f = WorkloadParams::fig11a();
        assert_eq!(f.results(), 6);
        assert_eq!(f.required(), 3);
    }
}
