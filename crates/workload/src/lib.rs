//! Synthetic evaluation workloads (Section 5.1, Table 4).
//!
//! The paper "use\[s\] synthetic datasets in order to cover all general
//! scenarios": base tuples get "a randomly generated confidence value
//! around 0.1 and a cost function" drawn from "the binomial, exponential
//! and logarithm functions", each result tuple is associated with a number
//! of base tuples, and queries are randomly generated DAGs. This crate
//! reproduces that setup deterministically (seeded), with the Table 4
//! parameter grid encoded in [`WorkloadParams`]:
//!
//! | parameter | paper setting |
//! |---|---|
//! | data size | 10, 1K, 10K, …, 100K |
//! | base tuples per result | 5, 10, 25, 50, 100 |
//! | confidence increment δ | 0.1 |
//! | percentage of required results θ | 50 % |
//! | confidence level β | 0.6 |
//!
//! Results are generated with latent *clusters* of base tuples so that the
//! shared-base graph has the weakly-coupled group structure the
//! divide-and-conquer algorithm exploits, plus a configurable fraction of
//! cross-cluster references.

pub mod gen;
pub mod params;

pub use gen::{generate, generate_batch};
pub use params::WorkloadParams;
