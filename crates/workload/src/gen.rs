//! The generator itself.

use crate::params::WorkloadParams;
use pcqe_core::problem::{ProblemBuilder, ProblemInstance};
use pcqe_core::CoreError;
use pcqe_cost::CostFn;
use pcqe_lineage::rng::Rng64;
use pcqe_lineage::Lineage;

/// Generate a confidence-increment problem from workload parameters.
///
/// Deterministic in `params.seed`. Base tuples are dealt into latent
/// clusters; each result draws its bases from one cluster (with an
/// occasional cross-cluster reference), so results inside a cluster share
/// bases while clusters stay weakly coupled. A result's lineage is an OR
/// of small AND-groups — the random AND/OR DAGs of Section 5.1 — sized so
/// initial confidences land well below β but the threshold stays reachable
/// with a handful of δ increments.
pub fn generate(params: &WorkloadParams) -> Result<ProblemInstance, CoreError> {
    let mut rng = Rng64::seed_from_u64(params.seed);
    let k = params.data_size;
    let n_results = params.results();
    let cluster_size = params.cluster();

    // Base tuples: confidence around the centre, a cost function from the
    // paper's three families.
    let mut builder = ProblemBuilder::new(params.beta, params.delta);
    for id in 0..k as u64 {
        let lo = (params.confidence_center - params.confidence_jitter).max(0.0);
        let hi = (params.confidence_center + params.confidence_jitter).min(1.0);
        let confidence = if hi > lo { rng.range_f64(lo, hi) } else { lo };
        builder.base(id, confidence, random_cost(&mut rng));
    }

    // Deal cluster-local "decks" so every base tuple is used before any is
    // reused (coverage), reshuffling per pass.
    let clusters: Vec<Vec<u64>> = (0..k as u64)
        .collect::<Vec<_>>()
        .chunks(cluster_size.max(1))
        .map(<[u64]>::to_vec)
        .collect();
    let mut decks: Vec<Vec<u64>> = clusters
        .iter()
        .map(|c| {
            let mut d = c.clone();
            rng.shuffle(&mut d);
            d
        })
        .collect();

    // Assign results to clusters in shuffled round-robin cycles: cluster
    // loads differ by at most one, so every deck is consumed evenly and
    // coverage of all base tuples is guaranteed whenever there are enough
    // result slots.
    let mut assignment: Vec<usize> = Vec::with_capacity(n_results);
    while assignment.len() < n_results {
        let mut cycle: Vec<usize> = (0..clusters.len().max(1)).collect();
        rng.shuffle(&mut cycle);
        assignment.extend(cycle);
    }
    assignment.truncate(n_results);

    for &ci in assignment.iter().take(n_results) {
        let want = params.bases_per_result.min(k);
        let mut bases: Vec<u64> = Vec::with_capacity(want);
        // Ids popped from the deck that this result already holds go back
        // underneath the deck afterwards, so no usage is ever lost.
        let mut leftovers: Vec<u64> = Vec::new();
        while bases.len() < want {
            if rng.next_f64() < params.cross_cluster_prob {
                let id = rng.below_u64(k as u64);
                if !bases.contains(&id) {
                    bases.push(id);
                }
                continue;
            }
            if leftovers.len() >= clusters[ci].len() {
                // The cluster cannot supply any more distinct bases for
                // this result; fill the remainder from anywhere.
                let id = rng.below_u64(k as u64);
                if !bases.contains(&id) {
                    bases.push(id);
                }
                continue;
            }
            let deck = &mut decks[ci];
            let id = match deck.pop() {
                Some(id) => id,
                None => {
                    *deck = clusters[ci].clone();
                    rng.shuffle(deck);
                    deck.pop().expect("clusters are non-empty")
                }
            };
            if bases.contains(&id) {
                leftovers.push(id);
            } else {
                bases.push(id);
            }
        }
        if !leftovers.is_empty() {
            leftovers.extend(std::mem::take(&mut decks[ci]));
            decks[ci] = leftovers;
        }
        let lineage = random_dag(&mut rng, &bases, params.bases_per_result);
        builder.result_from_lineage(&lineage)?;
    }

    builder.require(params.required().min(n_results)).build()
}

/// Generate a batch of queries over one shared base-tuple pool (for the
/// multi-query extension): `n_queries` instances whose results draw from
/// the same `data_size` tuples, merged into a
/// [`pcqe_core::multi::MultiQueryProblem`]. Each query gets its own β
/// jittered around `params.beta` and its own quota.
pub fn generate_batch(
    params: &WorkloadParams,
    n_queries: usize,
) -> Result<pcqe_core::multi::MultiQueryProblem, CoreError> {
    let mut instances = Vec::with_capacity(n_queries);
    for q in 0..n_queries {
        let mut p = params.clone().with_seed(params.seed ^ (0x9e37 + q as u64));
        // Spread thresholds a little so queries differ (clamped sane).
        p.beta = (params.beta
            + 0.05 * (q as f64 - n_queries as f64 / 2.0) / n_queries.max(1) as f64)
            .clamp(0.05, 0.95);
        let mut inst = generate(&p)?;
        // All queries share one physical base-tuple pool: overwrite each
        // instance's base confidences/costs with query 0's, so the merge
        // (which keeps the first definition per id) is consistent.
        if let Some(first) = instances.first() {
            let reference: &pcqe_core::problem::ProblemInstance = first;
            for (b, r) in inst.bases.iter_mut().zip(&reference.bases) {
                b.initial = r.initial;
                b.max = r.max;
                b.cost = r.cost.clone();
            }
        }
        instances.push(inst);
    }
    pcqe_core::multi::MultiQueryProblem::merge(&instances)
}

/// One of the paper's three cost-function families, with random scale.
fn random_cost(rng: &mut Rng64) -> CostFn {
    match rng.below_usize(3) {
        0 => CostFn::binomial(rng.range_f64(20.0, 200.0)).expect("valid range"),
        1 => CostFn::exponential(rng.range_f64(5.0, 50.0), 3.0).expect("valid range"),
        _ => CostFn::logarithmic(rng.range_f64(50.0, 500.0), 9.0).expect("valid range"),
    }
}

/// An OR of AND-groups over the given bases. At most one singleton group
/// (and only for small fan-in) keeps the initial confidence below β; the
/// remaining bases pair into AND-groups of 2–3.
fn random_dag(rng: &mut Rng64, bases: &[u64], fan_in: usize) -> Lineage {
    let mut rest: Vec<u64> = bases.to_vec();
    rng.shuffle(&mut rest);
    let mut groups: Vec<Lineage> = Vec::new();
    if fan_in <= 10 && rest.len() >= 3 && rng.next_f64() < 0.5 {
        let v = rest.pop().expect("len checked");
        groups.push(Lineage::var(v));
    }
    while !rest.is_empty() {
        let take = match rest.len() {
            1 => 1,
            2 => 2,
            _ => {
                if rng.next_f64() < 0.6 {
                    2
                } else {
                    3
                }
            }
        };
        let group: Vec<Lineage> = rest.drain(rest.len() - take..).map(Lineage::var).collect();
        groups.push(Lineage::and(group));
    }
    Lineage::or(groups)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // tests assert bit-exact results: that IS the determinism contract
mod tests {
    use super::*;
    use pcqe_core::state::EvalState;

    #[test]
    fn deterministic_in_the_seed() {
        let p = WorkloadParams {
            data_size: 200,
            ..WorkloadParams::default()
        };
        let a = generate(&p).unwrap();
        let b = generate(&p).unwrap();
        assert_eq!(a.bases.len(), b.bases.len());
        for (x, y) in a.bases.iter().zip(&b.bases) {
            assert_eq!(x.initial, y.initial);
            assert_eq!(x.cost, y.cost);
        }
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.bases, y.bases);
        }
        let c = generate(&p.clone().with_seed(99)).unwrap();
        let same = a
            .bases
            .iter()
            .zip(&c.bases)
            .all(|(x, y)| x.initial == y.initial);
        assert!(!same, "different seeds should differ somewhere");
    }

    #[test]
    fn respects_table_4_shape() {
        let p = WorkloadParams {
            data_size: 500,
            bases_per_result: 5,
            ..WorkloadParams::default()
        };
        let inst = generate(&p).unwrap();
        assert_eq!(inst.bases.len(), 500);
        assert_eq!(inst.results.len(), p.results());
        assert_eq!(inst.required, p.required());
        assert_eq!(inst.delta, 0.1);
        assert_eq!(inst.beta, 0.6);
        for r in &inst.results {
            assert_eq!(r.bases.len(), 5);
        }
        for b in &inst.bases {
            assert!(
                (0.05..0.15).contains(&b.initial),
                "around 0.1: {}",
                b.initial
            );
        }
    }

    #[test]
    fn every_base_is_used() {
        let p = WorkloadParams {
            data_size: 300,
            cross_cluster_prob: 0.0,
            ..WorkloadParams::default()
        };
        let inst = generate(&p).unwrap();
        let unused = (0..inst.bases.len())
            .filter(|&i| inst.results_of_base(i).is_empty())
            .count();
        assert_eq!(unused, 0, "decks guarantee coverage without crossings");
    }

    #[test]
    fn initial_satisfaction_is_low_and_problem_is_feasible() {
        for (size, seed) in [(200usize, 1u64), (1000, 2), (5000, 3)] {
            let p = WorkloadParams {
                data_size: size,
                ..WorkloadParams::default()
            }
            .with_seed(seed);
            let inst = generate(&p).unwrap();
            let mut st = EvalState::new(&inst);
            let frac = st.satisfied_count() as f64 / inst.results.len() as f64;
            assert!(frac < 0.2, "size {size}: {frac} of results already pass β");
            let all: Vec<usize> = (0..inst.bases.len()).collect();
            assert!(
                st.optimistic_satisfied(&all) >= inst.required,
                "must be feasible at max confidence"
            );
        }
    }

    #[test]
    fn large_fan_in_stays_below_beta() {
        let p = WorkloadParams {
            data_size: 2000,
            bases_per_result: 50,
            ..WorkloadParams::default()
        };
        let inst = generate(&p).unwrap();
        let st = EvalState::new(&inst);
        let frac = st.satisfied_count() as f64 / inst.results.len() as f64;
        assert!(frac < 0.2, "fan-in 50: {frac} already satisfied");
    }

    #[test]
    fn fig11a_preset_is_tiny_and_solvable() {
        let p = WorkloadParams::fig11a();
        let inst = generate(&p).unwrap();
        assert_eq!(inst.bases.len(), 10);
        assert_eq!(inst.results.len(), 6);
        assert_eq!(inst.required, 3);
        let out = pcqe_core::greedy::solve(&inst, &Default::default()).unwrap();
        out.solution.validate(&inst).unwrap();
    }

    #[test]
    fn batches_share_one_base_pool() {
        let params = WorkloadParams {
            data_size: 120,
            ..WorkloadParams::default()
        };
        let multi = generate_batch(&params, 3).unwrap();
        assert_eq!(multi.queries.len(), 3);
        assert_eq!(multi.bases.len(), 120, "one shared pool, not 3 copies");
        // Thresholds differ across queries.
        let betas: std::collections::BTreeSet<String> = multi
            .queries
            .iter()
            .map(|q| format!("{:.4}", q.beta))
            .collect();
        assert!(betas.len() > 1);
        // And the merged batch is solvable.
        let out = pcqe_core::multi::solve_greedy(&multi, &Default::default()).unwrap();
        for (qi, q) in multi.queries.iter().enumerate() {
            let satisfied = out
                .solution
                .satisfied
                .iter()
                .filter(|&&ri| ri >= q.start && ri < q.start + q.len)
                .count();
            assert!(satisfied >= q.required, "query {qi} quota unmet");
        }
    }

    #[test]
    fn clusters_produce_group_structure() {
        let p = WorkloadParams {
            data_size: 400,
            cross_cluster_prob: 0.0,
            ..WorkloadParams::default()
        };
        let inst = generate(&p).unwrap();
        let groups = pcqe_core::partition::partition(
            &inst,
            &pcqe_core::partition::PartitionOptions::default(),
        );
        assert!(
            groups.len() > 1,
            "without cross links the clusters must separate"
        );
        assert!(
            groups.len() < inst.results.len(),
            "but results do share bases"
        );
    }
}
