//! Registry-integrity tests: the rule registry, the CLI, the golden
//! reports and the DESIGN.md documentation must agree on the set of
//! rule ids. A rule that can fire but is undocumented — or documented
//! but unparseable by `--rule` — is a drift bug this file exists to
//! catch.

use pcqe_lint::rules::Rule;
use std::path::Path;
use std::process::Command;

#[test]
fn rule_codes_are_unique_and_well_formed() {
    let mut seen = Vec::new();
    for rule in Rule::all() {
        let code = rule.code();
        assert!(
            !seen.contains(&code),
            "duplicate rule code {code} in the registry"
        );
        seen.push(code);
        // Codes follow the PCQE-<layer letter><3 digits> shape the
        // allowlist and flow manifests parse.
        let rest = code
            .strip_prefix("PCQE-")
            .unwrap_or_else(|| panic!("{code} missing the PCQE- prefix"));
        assert_eq!(rest.len(), 4, "{code} is not PCQE-XNNN");
        assert!(rest.starts_with(|c: char| c.is_ascii_uppercase()));
        assert!(rest[1..].chars().all(|c| c.is_ascii_digit()));
        assert!(!rule.summary().is_empty(), "{code} has no summary");
    }
    assert_eq!(seen.len(), 23, "registry size drifted: {seen:?}");
}

#[test]
fn every_code_parses_back_to_its_rule() {
    for rule in Rule::all() {
        assert_eq!(
            Rule::parse(rule.code()),
            Some(rule),
            "{} does not round-trip through Rule::parse — `--rule` and \
             `.lint`/allowlist entries cannot name it",
            rule.code()
        );
    }
    assert_eq!(Rule::parse("PCQE-Z999"), None);
    assert_eq!(Rule::parse("pcqe-d001"), None, "ids are case-sensitive");
}

#[test]
fn every_rule_is_documented_in_the_design_rule_table() {
    let design =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md"))
            .expect("DESIGN.md is readable from the workspace root");
    for rule in Rule::all() {
        let needle = format!("`{}`", rule.code());
        assert!(
            design.contains(&needle),
            "{} is in the registry but missing from DESIGN.md's rule table",
            rule.code()
        );
    }
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pcqe-lint"))
}

#[test]
fn list_rules_prints_the_whole_registry_in_order() {
    let out = cli().arg("--list-rules").output().expect("CLI runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let mut last = 0;
    for rule in Rule::all() {
        let at = stdout
            .find(rule.code())
            .unwrap_or_else(|| panic!("{} missing from --list-rules", rule.code()));
        assert!(at >= last, "{} out of registry order", rule.code());
        last = at;
    }
}

#[test]
fn unknown_rule_id_is_a_deterministic_usage_error() {
    let run = || {
        let out = cli()
            .arg("--rule")
            .arg("PCQE-Z999")
            .output()
            .expect("CLI runs");
        (
            out.status.code(),
            String::from_utf8(out.stderr).expect("utf-8"),
        )
    };
    let (code, stderr) = run();
    assert_eq!(code, Some(2), "unknown rule id must be a usage error");
    assert!(
        stderr.contains("unknown rule id `PCQE-Z999`"),
        "unexpected diagnostic: {stderr}"
    );
    assert!(stderr.contains("--list-rules"), "hint missing: {stderr}");
    // Byte-identical on a second run — the message is part of the CLI
    // contract scripts can match on.
    assert_eq!(run(), (code, stderr));
}
