//! Hardening tests for the hand-rolled lexer in `pcqe_lint::lexer`.
//!
//! Two halves. The fixture half runs the full analyzer over
//! `fixtures/lexhard/`: a gauntlet of raw strings with varying hash
//! depths, byte strings, nested block comments, escaped chars and
//! lifetime-vs-char ambiguities, every forbidden token hidden inside a
//! literal or comment — plus one file planting three *real* `Mutex`
//! sites after the decoys. Exactly those three may fire (PCQE-C002,
//! with exact line numbers), which pins both directions at once: no
//! false positive from literal bodies, no lost finding after a gnarly
//! construct.
//!
//! The property half drives the lexer directly with generated token
//! soup from a seeded linear-congruential generator: for any
//! interleaving of hidden-`Mutex` carriers and benign code, `Mutex`
//! surfaces as an identifier exactly as many times as it was planted
//! for real, line numbers stay consistent with the newline count, and
//! lexing is deterministic. No panics on any input, including
//! truncation mid-literal.

use pcqe_lint::lexer::{lex, Tok};
use pcqe_lint::rules::Rule;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn hidden_tokens_stay_hidden_and_real_ones_survive_the_gauntlet() {
    let analysis = pcqe_lint::analyze(&fixture("lexhard"), None).expect("lexhard analysis runs");
    let got: Vec<(Rule, &str, u32)> = analysis
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    // traps.rs is silent despite spelling Mutex/HashMap/RwLock/unwrap in
    // raw strings, byte strings, escaped strings, chars and nested
    // comments; real.rs fires at exactly its three genuine Mutex sites,
    // lines intact after the decoy constructs above them.
    let want = vec![
        (Rule::C002, "crates/engine/src/real.rs", 13),
        (Rule::C002, "crates/engine/src/real.rs", 16),
        (Rule::C002, "crates/engine/src/real.rs", 17),
    ];
    assert_eq!(got, want, "full findings: {:#?}", analysis.findings);
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants) — the same
/// hand-rolled generator style the benches use; no external crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick<'a>(&mut self, items: &[&'a str]) -> &'a str {
        items[(self.next() as usize) % items.len()]
    }
}

/// Snippets whose `Mutex` must NEVER surface as an identifier.
const HIDDEN: &[&str] = &[
    "// Mutex behind a line comment\n",
    "/* Mutex in a block comment */\n",
    "/* outer /* Mutex nested twice */ tail */\n",
    "let s = \"Mutex in a string\";\n",
    "let s = \"escaped \\\" then Mutex\";\n",
    "let r = r\"raw Mutex body\";\n",
    "let r = r#\"hashed \"Mutex\" body\"#;\n",
    "let r = r##\"deeper r#\"Mutex\"# body\"##;\n",
    "let b = b\"byte Mutex\";\n",
    "let b = br#\"raw byte Mutex\"#;\n",
    "let c = 'M'; let q = '\\''; let u = '\\u{1F600}';\n",
];

/// Benign filler that must lex without surfacing anything interesting.
const BENIGN: &[&str] = &[
    "fn step(x: usize) -> usize { x + 1 }\n",
    "let tick: &'static str = \"lifetime\";\n",
    "let range = 0..5; let f = 0.5f64;\n",
    "let r#type = 7;\n",
];

/// The one snippet that plants a *real* `Mutex` identifier.
const PLANTED: &str = "let m = std::sync::Mutex::new(0);\n";

fn mutex_idents(src: &str) -> usize {
    lex(src)
        .iter()
        .filter(|t| matches!(&t.tok, Tok::Ident(s) if s == "Mutex"))
        .count()
}

#[test]
fn seeded_soup_surfaces_exactly_the_planted_mutexes() {
    for seed in 0..64u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1);
        let mut src = String::new();
        let mut planted = 0;
        for _ in 0..40 {
            match rng.next() % 5 {
                0 => {
                    src.push_str(PLANTED);
                    planted += 1;
                }
                1 | 2 => src.push_str(rng.pick(HIDDEN)),
                _ => src.push_str(rng.pick(BENIGN)),
            }
        }
        assert_eq!(
            mutex_idents(&src),
            planted,
            "seed {seed}: hidden Mutex leaked or a planted one vanished in:\n{src}"
        );
        // Line numbers stay within the physical line count, and lexing
        // the same source twice gives byte-identical streams.
        let toks = lex(&src);
        let lines = src.lines().count() as u32;
        assert!(toks.iter().all(|t| t.line >= 1 && t.line <= lines));
        assert_eq!(toks, lex(&src), "seed {seed}: lexing is not deterministic");
    }
}

#[test]
fn truncated_soup_never_panics() {
    // Chop a gnarly source at every byte boundary: unterminated raw
    // strings, half-open comments and dangling quotes must all lex to
    // *something* without panicking (missed findings are acceptable on
    // malformed source; crashes and false positives are not).
    let mut src = String::new();
    for s in HIDDEN {
        src.push_str(s);
    }
    src.push_str(PLANTED);
    for end in 0..src.len() {
        if src.is_char_boundary(end) {
            let _ = lex(&src[..end]);
        }
    }
}

#[test]
fn lifetime_vs_char_ambiguity_is_resolved_per_site() {
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'a'; let q = '\\''; c.min(q) }";
    let toks = lex(src);
    let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
    let chars = toks.iter().filter(|t| t.tok == Tok::LitChar).count();
    assert_eq!(lifetimes, 2, "{toks:?}");
    assert_eq!(chars, 2, "{toks:?}");
}
