//! End-to-end analyzer tests over the fixture trees in `tests/fixtures/`.
//!
//! Each fixture is a miniature workspace: `tree/` seeds one violation per
//! token/manifest rule in legacy mode (no capability manifest, so the
//! Mutex in mutexy.rs keeps the historical C001 id), `graph/` seeds the
//! graph-layer rules (P002 panic-reachability, G001 policy-gating) and —
//! carrying its own `lint-capabilities.toml` — the manifest-mode C002
//! form of the old locky.rs C001 sites, `conc/` seeds the concurrency
//! layer (C003 cycle + clean twin, C004 held-across-boundary, C005
//! escapes, C006 relaxed release reads, A003 stale grant), `gated/` is
//! the G001 negative (the gate dominates the row constructor),
//! `noreason/` trips the A002 hygiene rule, `allow/` pairs a violation
//! with a reasoned suppression, `stale/` carries an allowlist entry that
//! excuses nothing, `flows/` seeds the confidentiality-dataflow layer
//! (F001 two-hop error leak, F002 β-to-shell, sanctioned F003 Decision
//! flow, F004 unused sanction, F005 stale citation), and `clean/` has no
//! findings at all. The golden files `tree.expected.json`/
//! `graph.expected.json`/`conc.expected.json`/`flows.expected.json` pin
//! the machine-readable report byte-for-byte — the JSON output is a CI
//! contract.

use pcqe_lint::rules::Rule;
use pcqe_lint::{analyze, report, Analysis};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> Analysis {
    analyze(&fixture(name), None).expect("fixture analysis must not fail")
}

#[test]
fn tree_fixture_seeds_every_token_and_manifest_rule() {
    let analysis = run("tree");
    let got: Vec<(Rule, &str, u32)> = analysis
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    let want = vec![
        (Rule::D001, "crates/algebra/src/bad_map.rs", 3),
        (Rule::D001, "crates/algebra/src/bad_map.rs", 5),
        (Rule::D001, "crates/algebra/src/bad_map.rs", 6),
        (Rule::C001, "crates/algebra/src/mutexy.rs", 5),
        (Rule::C001, "crates/algebra/src/mutexy.rs", 7),
        (Rule::C001, "crates/algebra/src/mutexy.rs", 8),
        (Rule::H001, "crates/badcrate/Cargo.toml", 7),
        (Rule::P001, "crates/engine/src/panicky.rs", 4),
        (Rule::P001, "crates/engine/src/panicky.rs", 5),
        (Rule::P001, "crates/engine/src/panicky.rs", 7),
        (Rule::D002, "crates/lineage/src/entropy.rs", 4),
        (Rule::T001, "crates/obs/src/raw_clock.rs", 5),
        (Rule::T001, "crates/sql/src/timing.rs", 4),
        (Rule::T001, "crates/sql/src/timing.rs", 5),
        (Rule::D003, "crates/storage/src/spawny.rs", 4),
    ];
    assert_eq!(got, want, "full findings: {:#?}", analysis.findings);
    assert!(!analysis.is_clean());
    assert_eq!(analysis.error_count(), 15);
    // The exempt cases stayed silent: `crates/par` may thread, and the
    // `#[cfg(test)]` module in covered.rs may use HashMap and unwrap.
    assert!(!got.iter().any(|(_, p, _)| p.contains("par/")));
    assert!(!got.iter().any(|(_, p, _)| p.contains("covered.rs")));
}

#[test]
fn graph_fixture_seeds_the_graph_layer_and_new_token_rules() {
    let analysis = run("graph");
    let got: Vec<(Rule, &str, u32)> = analysis
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    // The graph fixture carries a lint-capabilities.toml, so the old
    // C001 sites in locky.rs migrated to the manifest-mode C002 id.
    let want = vec![
        (Rule::C002, "crates/algebra/src/locky.rs", 3),
        (Rule::C002, "crates/algebra/src/locky.rs", 5),
        (Rule::C002, "crates/algebra/src/locky.rs", 6),
        (Rule::D004, "crates/core/src/floaty.rs", 4), // x == 0.0
        (Rule::D004, "crates/core/src/floaty.rs", 4), // x != 1.0
        (Rule::D004, "crates/core/src/floaty.rs", 8), // as f32
        (Rule::D004, "crates/core/src/floaty.rs", 12), // .partial_cmp(
        (Rule::P002, "crates/core/src/pick.rs", 5),
        (Rule::G001, "crates/engine/src/database.rs", 24), // release_all
        (Rule::G001, "crates/engine/src/database.rs", 35), // release_physical
    ];
    assert_eq!(got, want, "full findings: {:#?}", analysis.findings);
    // The exempt cases stayed silent: `core/src/ord.rs` is the sanctioned
    // home for raw float ordering, and `crates/par` may hold atomics.
    assert!(!got.iter().any(|(_, p, _)| p.ends_with("ord.rs")));
    assert!(!got.iter().any(|(_, p, _)| p.contains("par/")));
}

#[test]
fn p002_witness_names_the_full_call_path() {
    let analysis = run("graph");
    let p002 = analysis
        .findings
        .iter()
        .find(|f| f.rule == Rule::P002)
        .expect("P002 fires in the graph fixture");
    // The panic is reported at the site (in pcqe-core, which is not
    // P001-guarded) with the two-hop chain from the engine's public API.
    assert_eq!(p002.path, "crates/core/src/pick.rs");
    assert!(
        p002.message
            .contains("pcqe_engine::run → pcqe_engine::step → pcqe_core::pick"),
        "witness missing in: {}",
        p002.message
    );
    // The never-called `panic!` in the same file stays unreported: P002
    // is reachability, not presence.
    assert!(
        !analysis
            .findings
            .iter()
            .any(|f| f.rule == Rule::P002 && f.line > 5),
        "{:#?}",
        analysis.findings
    );
}

#[test]
fn g001_names_the_ungated_constructor_and_entry_point() {
    let analysis = run("graph");
    let g001: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::G001)
        .collect();
    assert_eq!(g001.len(), 2, "{:#?}", analysis.findings);
    assert!(
        g001[0]
            .message
            .contains("pcqe_engine::Database::query → pcqe_engine::release_all"),
        "witness missing in: {}",
        g001[0].message
    );
    assert!(g001[0].message.contains("evaluate_results"));
    // The physical-execution pipeline is held to the same gate: the
    // extra `execute_physical` hop appears in the witness chain.
    assert!(
        g001[1].message.contains(
            "pcqe_engine::Database::query_physical → pcqe_engine::execute_physical \
             → pcqe_engine::release_physical"
        ),
        "witness missing in: {}",
        g001[1].message
    );
}

#[test]
fn gated_fixture_is_clean_because_the_gate_dominates() {
    // Same shape as the graph fixture's database.rs, but every path from
    // a `Database` entry point — logical or physical — reaches the
    // `ReleasedTuple` constructor through a function that calls
    // `evaluate_results`; the BFS stops at the gate on both pipelines.
    let analysis = run("gated");
    assert!(analysis.is_clean(), "{:#?}", analysis.findings);
    assert!(analysis.findings.is_empty());
}

#[test]
fn unreasoned_allowlist_entry_is_an_error_but_still_suppresses() {
    let analysis = run("noreason");
    assert_eq!(analysis.findings.len(), 1, "{:#?}", analysis.findings);
    let f = &analysis.findings[0];
    assert_eq!(f.rule, Rule::A002);
    assert_eq!(f.path, "lint-allow.toml");
    assert_eq!(f.line, 3);
    assert!(f.message.contains("has no `reason`"));
    // The entry is not stale — it really suppresses the P001 — so A001
    // must not double-report it.
    assert!(!analysis.findings.iter().any(|f| f.rule == Rule::A001));
    assert_eq!(analysis.suppressed.len(), 1);
    assert_eq!(analysis.suppressed[0].0.rule, Rule::P001);
}

#[test]
fn every_rule_id_fires_somewhere_in_the_fixture_suite() {
    let mut seen: Vec<Rule> = run("tree").findings.iter().map(|f| f.rule).collect();
    seen.extend(run("graph").findings.iter().map(|f| f.rule));
    seen.extend(run("conc").findings.iter().map(|f| f.rule));
    seen.extend(run("stale").findings.iter().map(|f| f.rule));
    seen.extend(run("noreason").findings.iter().map(|f| f.rule));
    let flows = run("flows");
    seen.extend(flows.findings.iter().map(|f| f.rule));
    // F003 appears only in the suppressed list: the fixture's Decision
    // flow is sanctioned, which is the rule's designed negative.
    seen.extend(flows.suppressed.iter().map(|(f, _)| f.rule));
    for rule in Rule::all() {
        assert!(seen.contains(&rule), "{} never fired", rule.code());
    }
}

#[test]
fn conc_fixture_seeds_the_concurrency_layer() {
    let analysis = run("conc");
    let got: Vec<(Rule, &str, u32)> = analysis
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    let want = vec![
        (Rule::C005, "crates/engine/src/database.rs", 24), // pcqe_par::flag()
        (Rule::C006, "crates/engine/src/database.rs", 25), // Relaxed load
        (Rule::C005, "crates/engine/src/database.rs", 30), // SHARED static
        (Rule::C002, "crates/engine/src/nocap.rs", 4),
        (Rule::C002, "crates/engine/src/nocap.rs", 6),
        (Rule::C002, "crates/engine/src/nocap.rs", 7),
        (Rule::C003, "crates/par/src/cycle.rs", 15), // left → right edge
        (Rule::C003, "crates/par/src/cycle.rs", 20), // right → left edge
        (Rule::C004, "crates/par/src/held.rs", 9),
        (Rule::A003, "lint-capabilities.toml", 12), // stale channels grant
    ];
    assert_eq!(got, want, "full findings: {:#?}", analysis.findings);
    // The hierarchical-locking twin stayed silent, and `held::fine`
    // (call completed before the lock) raised no second C004.
    assert!(!got.iter().any(|(_, p, _)| p.ends_with("hier.rs")));
    assert_eq!(got.iter().filter(|(r, _, _)| *r == Rule::C004).count(), 1);
    // The gated query path raised no G001: C006 fires *despite* the gate.
    assert!(!got.iter().any(|(r, _, _)| *r == Rule::G001));
}

#[test]
fn c003_witness_is_deterministic_and_names_both_lock_sites() {
    let analysis = run("conc");
    let c003: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::C003)
        .collect();
    assert_eq!(c003.len(), 2, "{:#?}", analysis.findings);
    // The interprocedural edge: held in `grab_both`, closed inside
    // `take_right` one call away — the witness names the call path and
    // both acquisition sites.
    assert!(
        c003[0]
            .message
            .contains("pcqe_par::grab_both → pcqe_par::take_right"),
        "witness missing in: {}",
        c003[0].message
    );
    assert!(c003[0]
        .message
        .contains("`left` at crates/par/src/cycle.rs:10"));
    assert!(c003[0]
        .message
        .contains("`right` at crates/par/src/cycle.rs:15"));
    // The reverse edge is intra-procedural, witnessed in `reversed`.
    assert!(c003[1].message.contains("pcqe_par::reversed"));
    // Same analysis, same witnesses, byte for byte.
    let again = run("conc");
    assert_eq!(analysis.findings, again.findings);
}

#[test]
fn conc_json_report_matches_golden_and_round_trips() {
    let golden = include_str!("fixtures/conc.expected.json");
    let actual = report::json(&run("conc"));
    assert_eq!(
        actual, golden,
        "JSON report drifted from tests/fixtures/conc.expected.json; \
         if the change is intentional, regenerate with \
         `cargo run -p pcqe-lint -- --root crates/lint/tests/fixtures/conc \
         --format json > crates/lint/tests/fixtures/conc.expected.json`"
    );
}

#[test]
fn flows_fixture_seeds_the_dataflow_layer() {
    let analysis = run("flows");
    let got: Vec<(Rule, &str, u32)> = analysis
        .findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line))
        .collect();
    let want = vec![
        (Rule::F002, "crates/engine/src/shellout.rs", 6), // β to println!
        (Rule::F001, "crates/engine/src/suppress.rs", 23), // two-hop leak
        (Rule::F005, "lint-flows.toml", 32),              // stale citation
        (Rule::F004, "lint-flows.toml", 44),              // unused sanction
    ];
    assert_eq!(got, want, "full findings: {:#?}", analysis.findings);
    // The Decision-record flow is the sanctioned negative: F003 lands in
    // the suppressed list with the manifest's reason, not in findings.
    assert_eq!(analysis.suppressed.len(), 1);
    let (finding, reason) = &analysis.suppressed[0];
    assert_eq!(finding.rule, Rule::F003);
    assert_eq!(finding.path, "crates/engine/src/traced.rs");
    assert_eq!(
        reason,
        "fixture: Decision records are the designed outlet for confidence"
    );
}

#[test]
fn f001_witness_names_source_sink_and_the_call_edge() {
    let analysis = run("flows");
    let f001 = analysis
        .findings
        .iter()
        .find(|f| f.rule == Rule::F001)
        .expect("F001 fires in the flows fixture");
    // The leak is reported at the sink (inside `render`) with the
    // tainted binding, the error constructor, and the interprocedural
    // chain from the function that bound the suppressed rows.
    assert_eq!(f001.path, "crates/engine/src/suppress.rs");
    assert!(f001.message.contains("`dropped`"), "{}", f001.message);
    assert!(
        f001.message.contains("GateError::Withheld"),
        "{}",
        f001.message
    );
    assert!(
        f001.message
            .contains("pcqe_engine::gate → pcqe_engine::render"),
        "witness missing in: {}",
        f001.message
    );
    // Same analysis, same witness, byte for byte.
    let again = run("flows");
    assert_eq!(analysis.findings, again.findings);
}

#[test]
fn flows_json_report_matches_golden_file() {
    let golden = include_str!("fixtures/flows.expected.json");
    let actual = report::json(&run("flows"));
    assert_eq!(
        actual, golden,
        "JSON report drifted from tests/fixtures/flows.expected.json; \
         if the change is intentional, regenerate with \
         `cargo run -p pcqe-lint -- --root crates/lint/tests/fixtures/flows \
         --format json > crates/lint/tests/fixtures/flows.expected.json`"
    );
}

#[test]
fn clean_fixture_is_clean() {
    let analysis = run("clean");
    assert!(analysis.is_clean(), "{:#?}", analysis.findings);
    assert!(analysis.findings.is_empty());
    assert!(analysis.suppressed.is_empty());
    assert_eq!(analysis.files_scanned, 1);
}

#[test]
fn allowlist_suppresses_with_reason() {
    let analysis = run("allow");
    assert!(analysis.is_clean(), "{:#?}", analysis.findings);
    assert!(
        analysis.findings.is_empty(),
        "nothing may leak past the allowlist"
    );
    assert_eq!(analysis.suppressed.len(), 1);
    let (finding, reason) = &analysis.suppressed[0];
    assert_eq!(finding.rule, Rule::P001);
    assert_eq!(finding.path, "crates/engine/src/risky.rs");
    assert_eq!(finding.line, 4);
    assert_eq!(reason, "fixture: demonstrates a justified suppression");
}

#[test]
fn stale_allowlist_entry_is_an_error() {
    let analysis = run("stale");
    assert!(!analysis.is_clean());
    assert_eq!(analysis.findings.len(), 1, "{:#?}", analysis.findings);
    let f = &analysis.findings[0];
    assert_eq!(f.rule, Rule::A001);
    // The finding points into the allowlist file itself, at the entry.
    assert_eq!(f.path, "lint-allow.toml");
    assert_eq!(f.line, 3);
    assert!(f.message.contains("stale allowlist entry"));
    assert!(f.message.contains("crates/engine/src/fine.rs"));
}

#[test]
fn analysis_is_deterministic_across_runs() {
    for name in ["tree", "graph", "flows"] {
        let a = run(name);
        let b = run(name);
        assert_eq!(a.findings, b.findings);
        assert_eq!(report::json(&a), report::json(&b));
    }
}

#[test]
fn json_report_matches_golden_file() {
    let golden = include_str!("fixtures/tree.expected.json");
    let actual = report::json(&run("tree"));
    assert_eq!(
        actual, golden,
        "JSON report drifted from tests/fixtures/tree.expected.json; \
         if the change is intentional, regenerate with \
         `cargo run -p pcqe-lint -- --root crates/lint/tests/fixtures/tree \
         --format json > crates/lint/tests/fixtures/tree.expected.json`"
    );
}

// --- CLI behaviour ------------------------------------------------------

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pcqe-lint"))
}

#[test]
fn cli_exits_one_on_findings_and_names_them() {
    let out = cli()
        .args(["--root"])
        .arg(fixture("tree"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    // Every rule code surfaces with a file:line span.
    for code in [
        "PCQE-C001",
        "PCQE-D001",
        "PCQE-D002",
        "PCQE-D003",
        "PCQE-H001",
        "PCQE-P001",
        "PCQE-T001",
    ] {
        assert!(stdout.contains(code), "missing {code} in:\n{stdout}");
    }
    assert!(stdout.contains("crates/engine/src/panicky.rs:4:"));
    assert!(stdout.contains("crates/obs/src/raw_clock.rs:5:"));
    assert!(stdout.contains("15 error(s)"));
}

#[test]
fn cli_exits_zero_on_clean_tree() {
    for name in ["clean", "gated"] {
        let out = cli()
            .args(["--root"])
            .arg(fixture(name))
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(0), "{name} must be clean");
    }
}

#[test]
fn cli_graph_json_output_matches_golden_file() {
    let out = cli()
        .args(["--root"])
        .arg(fixture("graph"))
        .args(["--format", "json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(
        stdout,
        include_str!("fixtures/graph.expected.json"),
        "JSON report drifted from tests/fixtures/graph.expected.json; \
         if the change is intentional, regenerate with \
         `cargo run -p pcqe-lint -- --root crates/lint/tests/fixtures/graph \
         --format json > crates/lint/tests/fixtures/graph.expected.json`"
    );
}

#[test]
fn cli_json_output_matches_golden_file() {
    let out = cli()
        .args(["--root"])
        .arg(fixture("tree"))
        .args(["--format", "json"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert_eq!(stdout, include_str!("fixtures/tree.expected.json"));
}

#[test]
fn cli_rule_flag_filters_display_but_not_exit_code() {
    // Filtered to C003: only the two cycle findings print, but the exit
    // code still reflects the full (failing) analysis.
    let out = cli()
        .args(["--root"])
        .arg(fixture("conc"))
        .args(["--rule", "PCQE-C003"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("PCQE-C003"), "{stdout}");
    for absent in [
        "PCQE-C002",
        "PCQE-C004",
        "PCQE-C005",
        "PCQE-C006",
        "PCQE-A003",
    ] {
        assert!(
            !stdout.contains(&format!("{absent} [")),
            "{absent} leaked into the filtered report:\n{stdout}"
        );
    }
    assert!(stdout.contains("2 error(s)"), "{stdout}");

    // The short id form works; a rule with no findings prints an empty
    // report but still exits 1 — the filter can never hide a failure.
    let out = cli()
        .args(["--root"])
        .arg(fixture("conc"))
        .args(["--rule", "D001"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("0 error(s)"), "{stdout}");

    // An unknown id is a usage error.
    let out = cli()
        .args(["--rule", "PCQE-Z999"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_exits_two_on_usage_and_io_errors() {
    let out = cli().args(["--bogus-flag"]).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let out = cli()
        .args(["--root"])
        .arg(fixture("clean"))
        .args(["--allowlist", "/nonexistent/allow.toml"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn explicit_allowlist_flag_overrides_default_lookup() {
    // Point the stale fixture's code at the allow fixture's list: the
    // entry matches nothing there either, so A001 still fires, but under
    // the explicit path name.
    let allow_path = fixture("stale").join("lint-allow.toml");
    let analysis = analyze(&fixture("clean"), Some(&allow_path)).expect("analysis runs");
    assert_eq!(analysis.findings.len(), 1);
    assert_eq!(analysis.findings[0].rule, Rule::A001);
    assert!(analysis.findings[0].path.ends_with("lint-allow.toml"));
}
