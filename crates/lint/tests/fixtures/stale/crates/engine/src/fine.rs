//! Fixture: clean code beneath a stale allowlist.

pub fn fine() -> u32 {
    7
}
