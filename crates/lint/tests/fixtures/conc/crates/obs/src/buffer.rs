//! Fixture: exercises the `locks` grant of `pcqe-obs` (so only the
//! crate's unused `channels` grant is stale → A003 at the manifest).

use std::sync::Mutex;

pub struct Buffer {
    inner: Mutex<Vec<u64>>,
}

pub fn append(buffer: &Buffer, v: u64) {
    if let Ok(mut rows) = buffer.inner.lock() {
        rows.push(v);
    }
}
