//! Fixture: C004 — a lock held across a path call into a
//! result-affecting crate. `bad` still holds `guarded` when it calls
//! into `pcqe_engine`; `fine` finishes the call before locking.

use std::sync::Mutex;

pub fn bad(guarded: &Mutex<u32>) {
    let _g = guarded.lock();
    pcqe_engine::step();
}

pub fn fine(guarded: &Mutex<u32>) {
    pcqe_engine::step();
    let _g = guarded.lock();
}
