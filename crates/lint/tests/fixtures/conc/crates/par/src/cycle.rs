//! Fixture: C003 — a two-lock cycle, closed through a call edge.
//! `grab_both` takes `left` then (via `take_right`) `right`; `reversed`
//! takes them in the opposite order in one body. The lock-order graph
//! gets `left → right` and `right → left`, a cycle: both edges must be
//! reported with a deterministic witness.

use std::sync::Mutex;

pub fn grab_both(left: &Mutex<u32>, right: &Mutex<u32>) {
    let _held = left.lock();
    take_right(right);
}

fn take_right(right: &Mutex<u32>) {
    let _inner = right.lock();
}

pub fn reversed(left: &Mutex<u32>, right: &Mutex<u32>) {
    let _first = right.lock();
    let _second = left.lock();
}
