//! Fixture: the clean twin of cycle.rs — hierarchical locking. Every
//! function takes `outer` strictly before `inner`, so the lock-order
//! graph has the single edge `outer → inner` and stays acyclic: no
//! C003 may fire for these names.

use std::sync::Mutex;

pub fn first(outer: &Mutex<u32>, inner: &Mutex<u32>) {
    let _o = outer.lock();
    let _i = inner.lock();
}

pub fn second(outer: &Mutex<u32>, inner: &Mutex<u32>) {
    let _o = outer.lock();
    let _i = inner.lock();
}
