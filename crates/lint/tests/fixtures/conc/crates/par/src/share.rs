//! Fixture: C005 providers — shared interior-mutable state this crate
//! is granted, offered for escape. `shared()` and `flag()` hand out
//! `Arc`-wrapped interior mutability; `SHARED` is an interior-mutable
//! static. None of these is a finding *here* — the violation is the
//! result-affecting consumer in crates/engine.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

pub static SHARED: Mutex<u64> = Mutex::new(0);

pub fn shared() -> Arc<Mutex<Vec<u64>>> {
    Arc::new(Mutex::new(Vec::new()))
}

pub fn flag() -> Arc<AtomicU64> {
    Arc::new(AtomicU64::new(0))
}
