//! Fixture: C002 — concurrency tokens in a crate with no covering
//! grant in the tree's lint-capabilities.toml (manifest mode).

use std::sync::Mutex;

pub fn make() -> Mutex<u32> {
    Mutex::new(0)
}
