//! Fixture: C005/C006 — result-affecting consumers of shared state.
//! The query path is G001-clean (the gate is called first), but `emit`
//! imports `Arc`-shared atomics from `pcqe-par` (C005) and feeds a
//! `Relaxed` load into the released row (C006); `snapshot` touches the
//! escaping `SHARED` static (C005). Gating filters rows — it does not
//! serialize memory — so these must fire even on the gated path.

use std::sync::atomic::Ordering;

pub struct ReleasedTuple {
    pub id: u64,
}

pub struct Database;

impl Database {
    pub fn query(&self) -> u64 {
        let keep = pcqe_policy::evaluate_results();
        emit(keep)
    }
}

fn emit(keep: u64) -> u64 {
    let f = pcqe_par::flag();
    let seq = f.load(Ordering::Relaxed);
    let t = ReleasedTuple { id: keep + seq };
    t.id
}

fn snapshot() -> u64 {
    let _handle = &pcqe_par::SHARED;
    0
}

/// The result-affecting hop `held::bad` in `pcqe-par` calls while
/// still holding its lock — the C004 target.
pub fn step() {}
