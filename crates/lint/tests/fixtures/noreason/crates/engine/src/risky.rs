//! Fixture: a real P001 violation, suppressed by an allowlist entry
//! that gives no reason — A002 fires at the entry, A001 stays quiet.

pub fn read(x: Option<u32>) -> u32 {
    x.unwrap()
}
