//! Fixture: suppressed tuples reach a typed-error constructor two hops
//! from the gate — PCQE-F001's interprocedural witness.

/// Typed error carrying whatever the caller formats into it.
pub enum GateError {
    /// The message composed at the failure site.
    Withheld(String),
}

/// Declared source function: the failing side of the gate.
pub fn withheld_tuples(rows: &[usize]) -> Vec<usize> {
    rows.iter().copied().filter(|r| *r % 2 == 0).collect()
}

/// Hop 1: binds the suppressed rows and hands them across a call edge.
pub fn gate(rows: &[usize]) -> Result<(), GateError> {
    let dropped = withheld_tuples(rows);
    render(&dropped)
}

/// Hop 2: the suppressed values land in the error payload.
fn render(dropped: &[usize]) -> Result<(), GateError> {
    Err(GateError::Withheld(format!("withheld rows {dropped:?}")))
}
