//! Fixture: a Decision record carries the pre-gate confidence through a
//! declared trace sink. The flow is sanctioned in lint-flows.toml, so
//! the finding lands in the suppressed list — PCQE-F003's negative
//! case, and the entry that keeps the F004 check honest.

/// Stand-in for the obs tracer's Decision constructor.
pub mod tracer {
    /// Record one decision payload.
    pub fn decision(_payload: usize) {}
}

/// Emits the decision record the sanction covers.
pub fn emit(confidence: usize) {
    tracer::decision(confidence);
}
