//! Fixture: the policy threshold reaches a shell sink — the leak
//! PCQE-F002 exists to catch.

/// Prints the gate's β to stdout.
pub fn banner(beta: usize) {
    println!("gate runs at beta={beta}");
}
