//! Fixture: a fully clean tree.

use std::collections::BTreeMap;

pub fn index() -> BTreeMap<u64, u64> {
    BTreeMap::new()
}
