//! Fixture: rows are built only below the policy gate — G001-clean.
//! `gate_and_release` calls `evaluate_results`, so the gate dominates
//! `build`; its `ReleasedTuple` construction is policy-filtered by
//! construction and must not be flagged.

use pcqe_policy::evaluate_results;

pub struct ReleasedTuple {
    pub id: u64,
}

pub struct Database;

impl Database {
    pub fn query(&self) -> u64 {
        gate_and_release()
    }
}

fn gate_and_release() -> u64 {
    let keep = evaluate_results();
    build(keep)
}

fn build(keep: u64) -> u64 {
    let t = ReleasedTuple { id: keep };
    t.id
}
