//! Fixture: rows are built only below the policy gate — G001-clean.
//! Both execution pipelines out of `Database` — the logical walker and
//! the lowered physical plan — hand their rows to `gate_and_release`,
//! which calls `evaluate_results`; the gate dominates `build`, so the
//! `ReleasedTuple` construction is policy-filtered by construction and
//! must not be flagged on either path.

use pcqe_policy::evaluate_results;

pub struct ReleasedTuple {
    pub id: u64,
}

pub struct Database;

impl Database {
    pub fn query(&self) -> u64 {
        gate_and_release(run_logical())
    }

    pub fn query_physical(&self) -> u64 {
        gate_and_release(execute_physical())
    }
}

/// Models the logical executor: produces rows, never releases them.
fn run_logical() -> u64 {
    1
}

/// Models `algebra::physical::execute_physical`: a second execution
/// pipeline that also produces rows without constructing
/// `ReleasedTuple` — release still happens only below the gate.
fn execute_physical() -> u64 {
    2
}

fn gate_and_release(rows: u64) -> u64 {
    let keep = evaluate_results() + rows;
    build(keep)
}

fn build(keep: u64) -> u64 {
    let t = ReleasedTuple { id: keep };
    t.id
}
