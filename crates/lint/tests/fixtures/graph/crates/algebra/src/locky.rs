//! Fixture: C001 — a lock outside `pcqe-par`/`pcqe-obs`.

use std::sync::Mutex;

pub fn make() -> Mutex<u32> {
    Mutex::new(0)
}
