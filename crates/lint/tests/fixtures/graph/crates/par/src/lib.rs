//! Fixture: `crates/par` owns work distribution — atomics here are
//! C001-exempt and must stay silent.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed) + 1
}
