//! Fixture: the reachable panic site — P002 reports it here, with the
//! witness call path from the guarded public API.

pub fn pick(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn unreached() -> u32 {
    panic!("never called from a guarded root")
}
