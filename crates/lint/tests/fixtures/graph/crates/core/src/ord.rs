//! Fixture: the one sanctioned home for raw float ordering — this file
//! is D004-exempt and must stay silent.

pub fn total(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}
