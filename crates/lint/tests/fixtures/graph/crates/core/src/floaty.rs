//! Fixture: D004 — raw float comparison, narrowing, and ordering.

pub fn exact(x: f64) -> bool {
    x == 0.0 || x != 1.0
}

pub fn narrowed(x: f64) -> f64 {
    f64::from(x as f32)
}

pub fn ordered(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}
