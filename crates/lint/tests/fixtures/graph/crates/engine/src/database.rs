//! Fixture: G001 — a query entry point that reaches a row constructor
//! without passing the policy gate.

pub struct ReleasedTuple {
    pub id: u64,
}

pub struct Database;

impl Database {
    pub fn query(&self) -> u64 {
        release_all()
    }
}

fn release_all() -> u64 {
    let t = ReleasedTuple { id: 1 };
    t.id
}
