//! Fixture: G001 — query entry points that reach a row constructor
//! without passing the policy gate. Both the logical path
//! (`query → release_all`) and the physical-execution path
//! (`query_physical → execute_physical → release_physical`) must be
//! flagged: lowering to physical operators is not a licence to skip
//! `evaluate_results`.

pub struct ReleasedTuple {
    pub id: u64,
}

pub struct Database;

impl Database {
    pub fn query(&self) -> u64 {
        release_all()
    }

    pub fn query_physical(&self) -> u64 {
        execute_physical()
    }
}

fn release_all() -> u64 {
    let t = ReleasedTuple { id: 1 };
    t.id
}

/// Models the physical executor: an extra hop between the entry point
/// and the ungated constructor — the BFS must still reach it.
fn execute_physical() -> u64 {
    release_physical()
}

fn release_physical() -> u64 {
    let t = ReleasedTuple { id: 2 };
    t.id
}
