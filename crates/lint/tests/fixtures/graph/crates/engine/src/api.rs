//! Fixture: P002 — the guarded public surface. `run` never panics
//! itself; the violation lives two calls away in `pcqe_core::pick`.

pub fn run(x: Option<u32>) -> u32 {
    step(x)
}

fn step(x: Option<u32>) -> u32 {
    pcqe_core::pick(x)
}
