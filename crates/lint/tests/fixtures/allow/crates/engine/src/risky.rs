//! Fixture: a violation silenced by a reasoned allowlist entry.

pub fn checked(x: Option<u32>) -> u32 {
    x.unwrap()
}
