//! Fixture: every forbidden token in this file hides inside a literal
//! or a comment — the lexer must keep all of them invisible, so the
//! whole file lints clean. A `Mutex` in a doc string is advice, not a
//! lock: HashMap, unwrap(), thread::spawn.

/* outer /* nested Mutex HashMap thread::spawn */ still commented unwrap() */

/// Returns the strings the scanner must treat as opaque.
pub fn opaque() -> Vec<String> {
    let plain = "Mutex::new(0) and HashMap::new()";
    let escaped = "a \" quote then Mutex and RwLock";
    let raw = r#"let m = Mutex::new(HashMap::new());"#;
    let rawhash = r##"outer r#"Mutex"# body with RwLock"##;
    let bytes = b"Mutex in a byte string";
    let rawbytes = br#"RwLock::new and thread::spawn"#;
    let ch = 'M';
    let quote = '\'';
    let emoji = '\u{1F600}';
    let tick: &'static str = "a lifetime, not a char literal";
    vec![
        plain.to_owned(),
        escaped.to_owned(),
        raw.to_owned(),
        rawhash.to_owned(),
        String::from_utf8_lossy(bytes).into_owned(),
        String::from_utf8_lossy(rawbytes).into_owned(),
        format!("{ch}{quote}{emoji}{tick}"),
    ]
}
