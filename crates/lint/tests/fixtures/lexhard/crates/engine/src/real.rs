//! Fixture: one *real* concurrency token after the gauntlet. The lexer
//! must survive the nested comment, the hash-delimited raw string and
//! the lifetime above it, then still see the genuine `Mutex` sites —
//! with the right line numbers.

/* level one /* level two "Mutex" */ closing */
pub fn decoys() -> usize {
    let decoy = r##"Mutex::new(#"quoted"#)"##;
    let tick: &'static str = "not a char";
    decoy.len() + tick.len()
}

use std::sync::Mutex;

/// The genuine lock the fixture plants.
pub fn real() -> Mutex<u32> {
    Mutex::new(7)
}
