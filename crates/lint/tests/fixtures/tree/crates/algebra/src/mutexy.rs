//! Fixture: C001 — concurrency tokens outside the built-in legacy
//! crate list. This tree has no `lint-capabilities.toml`, so the
//! analyzer runs in legacy mode and keeps the historical rule id.

use std::sync::Mutex;

pub fn make() -> Mutex<u32> {
    Mutex::new(0)
}
