//! Fixture: D001 — unordered maps in a result-affecting crate.

use std::collections::HashMap;

pub fn index() -> HashMap<u64, u64> {
    HashMap::new()
}
