//! Fixture: P001 — panicking constructs in guarded library code.

pub fn read(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a != b {
        panic!("mismatch");
    }
    a
}
