//! Fixture: `#[cfg(test)]` regions are exempt from the token rules.

pub fn live() -> u32 {
    41
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_only_code_may_use_hash_maps_and_unwrap() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, super::live());
        assert_eq!(m.get(&1).copied().unwrap(), 41);
    }
}
