//! Fixture: T001 — wall-clock reads outside the sanctioned modules.

pub fn stamp() -> u64 {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    t.elapsed().as_nanos() as u64
}
