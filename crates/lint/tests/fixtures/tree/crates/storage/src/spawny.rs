//! Fixture: D003 — raw threads outside the deterministic scheduler.

pub fn race() -> u32 {
    let h = std::thread::spawn(|| 3);
    h.join().unwrap_or(0)
}
