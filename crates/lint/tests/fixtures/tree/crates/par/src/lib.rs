//! Fixture: `crates/par` is the sanctioned home for threads (D003-exempt).

use std::thread;

pub fn fan_out() -> u32 {
    let h = thread::spawn(|| 7);
    h.join().unwrap_or(0)
}
