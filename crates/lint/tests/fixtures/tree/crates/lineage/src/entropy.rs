//! Fixture: D002 — ad-hoc entropy outside the sanctioned rng module.

pub fn seed() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
