//! Fixture: T001 — `crates/obs` has no wall-clock exemption; the
//! observability crate must time spans through `pcqe_core::clock`.

pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
