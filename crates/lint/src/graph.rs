//! Layer 2 of the analyzer: the workspace call graph and the rules that
//! are *reachability* properties rather than token windows. (Layer 3 —
//! the concurrency-soundness rules in [`crate::concurrency`] — runs over
//! the same graph, consuming the per-call positions and lock/load sites
//! recorded here.)
//!
//! [`CallGraph::build`] links the per-file items from [`crate::item`]
//! into one workspace graph using conservative, name-based resolution:
//!
//! * **bare and path calls** resolve through the file's `use` aliases,
//!   then by `(crate, name)` for free functions and `(Type, name)` for
//!   associated functions (`crate`/`self`/`super` collapse to the
//!   current crate; `std`/`core`/`alloc` paths are external and dropped);
//! * **method calls** (`x.f(…)`) resolve to *every* workspace method
//!   named `f` — the receiver type is unknown at token level, so the
//!   graph over-approximates. Extra edges can only widen reachability,
//!   which is the safe direction for the rules below.
//!
//! The method-call over-approximation is what makes **trait objects**
//! sound here: a call through `&dyn SolverSink` (or any trait) cannot be
//! devirtualized without types, so `sink.emit(…)` gets an edge to *every*
//! workspace method named `emit` — each `impl SolverSink for _` included.
//! Whatever the dynamic dispatch would actually reach is a subset of the
//! edges drawn, so P002/G001 (and the layer-3 lock propagation) never
//! miss a path through dynamic dispatch; the cost is spurious edges
//! between same-named methods of unrelated types, which only ever *add*
//! findings for a human to allowlist, never hide one. This behavior is
//! load-bearing and pinned by the
//! `trait_object_calls_over_approximate_to_every_impl` test below.
//!
//! Two rules run over the graph:
//!
//! * **PCQE-P002** — multi-source BFS from every `pub` function of the
//!   panic-guarded crates; each panic site in a reached function is a
//!   finding, reported *at the site* with the (shortest, deterministic)
//!   witness call path from a public root. In files already under the
//!   token rule P001 only *slice-index* panics are reported — P001
//!   covers the direct constructs there.
//! * **PCQE-G001** — BFS from the `Database` query entry points that
//!   stops at any function calling the policy gate
//!   (`evaluate_results`): a function that constructs [`ReleasedTuple`]s
//!   on a still-ungated path is a finding. The gate dominates everything
//!   below it, so rows built under it are policy-filtered by
//!   construction.
//!
//! [`ReleasedTuple`]: https://en.wikipedia.org/wiki/Access_control

use crate::capability::Cap;
use crate::item::{Bind, CallKind, FileItems, FmtSite, LoadSite, LockSite, PanicKind};
use crate::rules::{FileClass, Finding, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Crates whose `pub` functions seed the P002 reachability scan — the
/// query-facing API surface of the engine stack.
const PANIC_ROOT_CRATES: [&str; 4] = ["pcqe_engine", "pcqe_policy", "pcqe_sql", "pcqe_storage"];

/// The policy-filter helper: a function that calls it is a *gate* for
/// rule G001 (the audit/metrics helpers from the observability layer are
/// bumped inside the same function, so this one name anchors all three
/// ledgers).
const POLICY_GATE: &str = "evaluate_results";

/// The row type whose construction means disclosure (rules G001, C006).
pub(crate) const RELEASED_TYPE: &str = "ReleasedTuple";

/// Query entry points: `pub` methods on this type whose names match
/// [`is_entry_name`].
const ENTRY_OWNER: &str = "Database";

/// One function node in the workspace graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// File the function lives in (`/`-separated, relative).
    pub path: String,
    /// Crate (underscore form).
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// `impl`/`trait` owner type, if any.
    pub owner: Option<String>,
    /// Unrestricted `pub`.
    pub is_public: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Panic sites in the body.
    pub panics: Vec<crate::item::PanicSite>,
    /// Last segments of every call in the body (gate detection).
    pub calls_names: BTreeSet<String>,
    /// Identifiers mentioned in the body (emitter detection).
    pub mentions: BTreeSet<String>,
    /// Lock-acquisition sites in the body, in source order (layer 3).
    pub locks: Vec<LockSite>,
    /// Weakly-ordered atomic loads in the body (layer 3, rule C006).
    pub loads: Vec<LoadSite>,
    /// Interior-mutable capability carried by the return type, if the
    /// function hands out `Arc`-shared state (layer 3, rule C005).
    pub ret_carries: Option<Cap>,
    /// Parameter names in declaration order (layer 4: interprocedural
    /// taint hand-off by argument position).
    pub params: Vec<String>,
    /// `let` bindings in source order (layer 4: intraprocedural def-use).
    pub binds: Vec<Bind>,
    /// Formatting-macro sites in source order (layer 4: sink detection).
    pub fmts: Vec<FmtSite>,
    /// Identifiers feeding `return` expressions and the trailing
    /// expression (layer 4: return-value taint).
    pub ret_idents: BTreeSet<String>,
}

impl FnNode {
    /// Render `crate::Owner::name` / `crate::name` for witness paths.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}::{}", self.crate_name, o, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// One call site of a function with its resolved targets, kept in body
/// order so layer 3 can interleave it with the lock-acquisition sites.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// Token position of the call's name within the file — comparable
    /// with [`LockSite::pos`] of the same function.
    pub pos: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// Bare/path call vs. method call.
    pub kind: CallKind,
    /// Path segments as written (`Type::f` → `["Type", "f"]`), for the
    /// layer-4 structural sink classes (error constructors).
    pub segs: Vec<String>,
    /// Identifiers per top-level argument, format-string captures
    /// included (layer 4: arg-position taint hand-off).
    pub args: Vec<BTreeSet<String>>,
    /// Call-position identifiers per argument ([`CallSite::arg_calls`]).
    pub arg_calls: Vec<BTreeSet<String>>,
    /// Sorted, deduplicated node indexes this call may reach.
    pub targets: Vec<usize>,
}

/// An interior-mutable `static` item, lifted to the workspace level for
/// the escape analysis (rule C005).
#[derive(Debug, Clone)]
pub struct StaticNode {
    /// File the static lives in.
    pub path: String,
    /// Crate (underscore form).
    pub crate_name: String,
    /// Item name.
    pub name: String,
    /// 1-based line of the `static` keyword.
    pub line: u32,
    /// The capability its type carries (`Locks` or `Atomics`).
    pub carries: Cap,
}

/// The resolved workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Nodes in deterministic order: files in walk order, functions in
    /// source order.
    pub fns: Vec<FnNode>,
    /// `edges[i]` = sorted, deduplicated callee indexes of `fns[i]`.
    pub edges: Vec<Vec<usize>>,
    /// `calls[i]` = resolved call sites of `fns[i]` in body order, with
    /// token positions (layer 3: lock-order and escape analyses).
    pub calls: Vec<Vec<ResolvedCall>>,
    /// Interior-mutable statics across the workspace, in walk order.
    pub statics: Vec<StaticNode>,
}

impl CallGraph {
    /// Link per-file items into one workspace graph.
    pub fn build(files: &[FileItems]) -> CallGraph {
        // --- Nodes -----------------------------------------------------
        let mut fns: Vec<FnNode> = Vec::new();
        for file in files {
            for f in &file.fns {
                fns.push(FnNode {
                    path: file.path.clone(),
                    crate_name: file.crate_name.clone(),
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    is_public: f.is_public,
                    line: f.line,
                    panics: f.panics.clone(),
                    calls_names: f
                        .calls
                        .iter()
                        .filter_map(|c| c.segs.last().cloned())
                        .collect(),
                    mentions: f.mentions.clone(),
                    locks: f.locks.clone(),
                    loads: f.loads.clone(),
                    ret_carries: f.ret_carries,
                    params: f.params.clone(),
                    binds: f.binds.clone(),
                    fmts: f.fmts.clone(),
                    ret_idents: f.ret_idents.clone(),
                });
            }
        }
        let mut statics: Vec<StaticNode> = Vec::new();
        for file in files {
            for s in &file.statics {
                statics.push(StaticNode {
                    path: file.path.clone(),
                    crate_name: file.crate_name.clone(),
                    name: s.name.clone(),
                    line: s.line,
                    carries: s.carries,
                });
            }
        }

        // --- Resolution indexes ---------------------------------------
        // Free functions by (crate, name); associated functions/methods
        // by (owner type, name) workspace-wide; methods by bare name.
        let mut free: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, n) in fns.iter().enumerate() {
            match &n.owner {
                Some(o) => {
                    assoc
                        .entry((o.clone(), n.name.clone()))
                        .or_default()
                        .push(i);
                    methods.entry(n.name.clone()).or_default().push(i);
                }
                None => free
                    .entry((n.crate_name.clone(), n.name.clone()))
                    .or_default()
                    .push(i),
            }
        }

        // --- Edges -----------------------------------------------------
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut calls: Vec<Vec<ResolvedCall>> = vec![Vec::new(); fns.len()];
        let mut idx = 0usize;
        for file in files {
            let aliases: BTreeMap<&str, &[String]> = file
                .imports
                .iter()
                .map(|u| (u.alias.as_str(), u.segs.as_slice()))
                .collect();
            for f in &file.fns {
                let mut targets: BTreeSet<usize> = BTreeSet::new();
                for call in &f.calls {
                    let mut site: BTreeSet<usize> = BTreeSet::new();
                    match call.kind {
                        CallKind::Method => {
                            if let Some(hits) = methods.get(&call.segs[0]) {
                                site.extend(hits.iter().copied());
                            }
                        }
                        CallKind::Path => resolve_path(
                            &call.segs,
                            &file.crate_name,
                            f.owner.as_deref(),
                            &aliases,
                            &free,
                            &assoc,
                            &mut site,
                        ),
                    }
                    targets.extend(site.iter().copied());
                    calls[idx].push(ResolvedCall {
                        pos: call.pos,
                        line: call.line,
                        kind: call.kind,
                        segs: call.segs.clone(),
                        args: call.args.clone(),
                        arg_calls: call.arg_calls.clone(),
                        targets: site.into_iter().collect(),
                    });
                }
                edges[idx] = targets.into_iter().collect();
                idx += 1;
            }
        }
        CallGraph {
            fns,
            edges,
            calls,
            statics,
        }
    }
}

/// Resolve one path call (`f(…)`, `module::f(…)`, `Type::f(…)`) into
/// node indexes, conservatively.
fn resolve_path(
    segs: &[String],
    current_crate: &str,
    enclosing_owner: Option<&str>,
    aliases: &BTreeMap<&str, &[String]>,
    free: &BTreeMap<(String, String), Vec<usize>>,
    assoc: &BTreeMap<(String, String), Vec<usize>>,
    targets: &mut BTreeSet<usize>,
) {
    // Expand the leading segment through the file's `use` aliases:
    // `use pcqe_policy::evaluate_results;` makes the bare call
    // `evaluate_results(…)` a cross-crate call.
    let mut full: Vec<String> = Vec::with_capacity(segs.len() + 2);
    match aliases.get(segs[0].as_str()) {
        Some(expansion) => full.extend(expansion.iter().cloned()),
        None => full.push(segs[0].clone()),
    }
    full.extend(segs[1..].iter().cloned());

    // Strip path anchors; `super` is approximated as "same crate".
    let mut start = 0usize;
    while start < full.len() && matches!(full[start].as_str(), "crate" | "self" | "super") {
        start += 1;
    }
    let full = &full[start..];
    let Some(name) = full.last() else { return };

    // External standard-library paths carry no workspace edge.
    if matches!(
        full.first().map(String::as_str),
        Some("std") | Some("core") | Some("alloc")
    ) {
        return;
    }

    let target_crate = match full.first().map(String::as_str) {
        Some(first) if first.starts_with("pcqe_") => first.to_owned(),
        _ => current_crate.to_owned(),
    };

    if full.len() == 1 {
        // Bare call: a free function of the current crate.
        if let Some(hits) = free.get(&(target_crate, name.clone())) {
            targets.extend(hits.iter().copied());
        }
        return;
    }

    let qualifier = &full[full.len() - 2];
    let is_type = qualifier.chars().next().is_some_and(char::is_uppercase);
    if is_type {
        // `Type::f(…)` / `Self::f(…)`: associated function, resolved
        // workspace-wide by type name (module-blind, conservative).
        let type_name = if qualifier == "Self" {
            match enclosing_owner {
                Some(o) => o.to_owned(),
                None => return,
            }
        } else {
            qualifier.clone()
        };
        if let Some(hits) = assoc.get(&(type_name, name.clone())) {
            targets.extend(hits.iter().copied());
        }
    } else {
        // `module::f(…)`: a free function, module-blind within the
        // target crate.
        if let Some(hits) = free.get(&(target_crate, name.clone())) {
            targets.extend(hits.iter().copied());
        }
    }
}

/// Is a `pub fn` on [`ENTRY_OWNER`] with this name a query entry point?
fn is_entry_name(name: &str) -> bool {
    name == "what_if" || name.starts_with("query")
}

/// Node indexes of the query entry points (`pub` `Database::query*` /
/// `Database::what_if` in the engine crate) — the BFS roots shared by
/// G001 and the layer-3 C006 scan.
pub fn query_entry_roots(graph: &CallGraph) -> Vec<usize> {
    graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, node)| {
            node.crate_name == "pcqe_engine"
                && node.owner.as_deref() == Some(ENTRY_OWNER)
                && node.is_public
                && is_entry_name(&node.name)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Rule P002: panic constructs reachable from guarded public API, with a
/// deterministic shortest witness path per panic site.
pub fn panic_reachability(graph: &CallGraph, out: &mut Vec<Finding>) {
    // Multi-source BFS with predecessor tracking. Roots are seeded in
    // node order and adjacency lists are sorted, so discovery order —
    // and therefore every witness path — is deterministic.
    let n = graph.fns.len();
    let mut pred: Vec<usize> = vec![usize::MAX; n];
    let mut reached = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, node) in graph.fns.iter().enumerate() {
        if node.is_public && PANIC_ROOT_CRATES.contains(&node.crate_name.as_str()) {
            reached[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &graph.edges[u] {
            if !reached[v] {
                reached[v] = true;
                pred[v] = u;
                queue.push_back(v);
            }
        }
    }

    let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
    for (i, node) in graph.fns.iter().enumerate() {
        if !reached[i] || node.panics.is_empty() {
            continue;
        }
        // In P001-guarded files the direct constructs are already flagged
        // at the token layer; P002 adds only the index panics there.
        let p001_here = FileClass::classify(&node.path).p001;
        let witness = witness_path(graph, &pred, i);
        for site in &node.panics {
            if p001_here && site.kind != PanicKind::Index {
                continue;
            }
            if !seen.insert((node.path.clone(), site.line)) {
                continue; // one finding per site line
            }
            out.push(Finding {
                rule: Rule::P002,
                path: node.path.clone(),
                line: site.line,
                message: format!(
                    "{} reachable from guarded public API via {witness}: return a \
                     typed error on this path (or allowlist a provably in-bounds site)",
                    site.kind.describe()
                ),
            });
        }
    }
}

/// Render the BFS witness chain `root → … → node`.
pub(crate) fn witness_path(graph: &CallGraph, pred: &[usize], mut i: usize) -> String {
    let mut chain = vec![graph.fns[i].qualified()];
    while pred[i] != usize::MAX {
        i = pred[i];
        chain.push(graph.fns[i].qualified());
    }
    chain.reverse();
    chain.join(" → ")
}

/// Rule G001: every call path from a query entry point to a function
/// that constructs `ReleasedTuple`s must pass through the policy gate.
pub fn policy_gating(graph: &CallGraph, out: &mut Vec<Finding>) {
    let gated: Vec<bool> = graph
        .fns
        .iter()
        .map(|f| f.calls_names.contains(POLICY_GATE))
        .collect();
    let n = graph.fns.len();
    let mut pred: Vec<usize> = vec![usize::MAX; n];
    let mut reached = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for i in query_entry_roots(graph) {
        reached[i] = true;
        queue.push_back(i);
    }
    while let Some(u) = queue.pop_front() {
        if gated[u] {
            continue; // the gate dominates everything below it
        }
        for &v in &graph.edges[u] {
            if !reached[v] {
                reached[v] = true;
                pred[v] = u;
                queue.push_back(v);
            }
        }
    }

    for (i, node) in graph.fns.iter().enumerate() {
        if reached[i] && !gated[i] && node.mentions.contains(RELEASED_TYPE) {
            let witness = witness_path(graph, &pred, i);
            out.push(Finding {
                rule: Rule::G001,
                path: node.path.clone(),
                line: node.line,
                message: format!(
                    "fn `{}` constructs `{RELEASED_TYPE}` on an ungated path from a \
                     query entry point ({witness}); rows may only be released below \
                     `{POLICY_GATE}`",
                    node.qualified()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::collect;
    use crate::lexer::lex;
    use crate::rules::test_region_mask;

    fn file(path: &str, src: &str) -> FileItems {
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        collect(path, &toks, &mask)
    }

    fn find(graph: &CallGraph, name: &str) -> usize {
        graph.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn resolves_bare_path_alias_and_method_calls() {
        let files = vec![
            file(
                "crates/engine/src/api.rs",
                "use pcqe_core::pick;\n\
                 pub fn run() { step(); pick(); pcqe_core::other(); Planner::new(); }\n\
                 fn step() {}\n\
                 pub struct Planner;\n\
                 impl Planner { pub fn new() {} pub fn go(&self) {} }\n\
                 fn uses_method(p: &Planner) { p.go(); }\n",
            ),
            file(
                "crates/core/src/solve.rs",
                "pub fn pick() {}\npub fn other() {}\n",
            ),
        ];
        let g = CallGraph::build(&files);
        let run = find(&g, "run");
        let callees: Vec<&str> = g.edges[run]
            .iter()
            .map(|&i| g.fns[i].name.as_str())
            .collect();
        assert_eq!(callees, vec!["step", "new", "pick", "other"]);
        let um = find(&g, "uses_method");
        let callees: Vec<&str> = g.edges[um]
            .iter()
            .map(|&i| g.fns[i].name.as_str())
            .collect();
        assert_eq!(callees, vec!["go"]);
    }

    #[test]
    fn p002_reports_two_hop_panic_with_witness() {
        let files = vec![
            file(
                "crates/engine/src/api.rs",
                "pub fn run(x: Option<u32>) -> u32 { step(x) }\n\
                 fn step(x: Option<u32>) -> u32 { pcqe_core::pick(x) }\n",
            ),
            file(
                "crates/core/src/solve.rs",
                "pub fn pick(x: Option<u32>) -> u32 { x.unwrap() }\n\
                 pub fn unreachable_panic() { panic!(\"not called\"); }\n",
            ),
        ];
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        panic_reachability(&g, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        let f = &out[0];
        assert_eq!(f.rule, Rule::P002);
        assert_eq!(f.path, "crates/core/src/solve.rs");
        assert_eq!(f.line, 1);
        assert!(
            f.message
                .contains("pcqe_engine::run → pcqe_engine::step → pcqe_core::pick"),
            "witness missing in: {}",
            f.message
        );
    }

    #[test]
    fn p002_reports_only_index_panics_in_p001_guarded_files() {
        let files = vec![file(
            "crates/engine/src/api.rs",
            "pub fn run(v: &[u32], x: Option<u32>) -> u32 { x.unwrap() + v[0] }\n",
        )];
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        panic_reachability(&g, &mut out);
        // The unwrap is P001's job there; the index is P002's.
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("slice/array index"));
    }

    #[test]
    fn g001_flags_ungated_release_and_passes_gated() {
        let bad = vec![file(
            "crates/engine/src/database.rs",
            "pub struct Database;\n\
             impl Database {\n\
               pub fn query(&self) -> usize { release_all() }\n\
             }\n\
             fn release_all() -> usize { let t = ReleasedTuple { id: 1 }; t.id }\n",
        )];
        let g = CallGraph::build(&bad);
        let mut out = Vec::new();
        policy_gating(&g, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::G001);
        assert_eq!(out[0].line, 5);
        assert!(out[0]
            .message
            .contains("Database::query → pcqe_engine::release_all"));

        let good = vec![file(
            "crates/engine/src/database.rs",
            "use pcqe_policy::evaluate_results;\n\
             pub struct Database;\n\
             impl Database {\n\
               pub fn query(&self) -> usize {\n\
                 let keep = evaluate_results();\n\
                 let t = ReleasedTuple { id: keep };\n\
                 t.id\n\
               }\n\
             }\n",
        )];
        let g = CallGraph::build(&good);
        let mut out = Vec::new();
        policy_gating(&g, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn trait_object_calls_over_approximate_to_every_impl() {
        // A call through `&dyn SolverSink` cannot be devirtualized at
        // token level: `sink.emit(…)` must edge to EVERY workspace
        // method named `emit`, so dynamic dispatch can never hide a
        // panic or an ungated release from the reachability rules.
        let files = vec![
            file(
                "crates/core/src/sink.rs",
                "pub trait SolverSink { fn emit(&mut self, v: u64); }\n\
                 pub fn drive(sink: &mut dyn SolverSink) { sink.emit(1); }\n",
            ),
            file(
                "crates/engine/src/collect.rs",
                "pub struct VecSink { rows: Vec<u64> }\n\
                 impl SolverSink for VecSink { fn emit(&mut self, v: u64) { self.rows.push(v); } }\n",
            ),
            file(
                "crates/obs/src/count.rs",
                "pub struct CountSink { n: u64 }\n\
                 impl SolverSink for CountSink { fn emit(&mut self, _v: u64) { self.n += 1; } }\n",
            ),
        ];
        let g = CallGraph::build(&files);
        let drive = find(&g, "drive");
        let callees: Vec<String> = g.edges[drive]
            .iter()
            .map(|&i| g.fns[i].qualified())
            .collect();
        // Every impl's `emit`, across crates, in deterministic node
        // order (the bodyless trait declaration itself is not a node).
        assert_eq!(
            callees,
            vec!["pcqe_engine::VecSink::emit", "pcqe_obs::CountSink::emit"],
            "trait-object dispatch must over-approximate to every impl"
        );
        // The per-call resolution carries the same target set with a
        // position, so layer 3 sees the call as potentially reaching
        // every impl too.
        assert_eq!(g.calls[drive].len(), 1);
        assert_eq!(g.calls[drive][0].kind, CallKind::Method);
        assert_eq!(g.calls[drive][0].targets, g.edges[drive]);
    }

    #[test]
    fn determinism_identical_graphs_across_builds() {
        let files = vec![
            file(
                "crates/engine/src/a.rs",
                "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
            ),
            file("crates/engine/src/b.rs", "pub fn d() { b(); }\n"),
        ];
        let g1 = CallGraph::build(&files);
        let g2 = CallGraph::build(&files);
        assert_eq!(g1.edges, g2.edges);
        let mut o1 = Vec::new();
        let mut o2 = Vec::new();
        panic_reachability(&g1, &mut o1);
        panic_reachability(&g2, &mut o2);
        assert_eq!(o1, o2);
    }
}
