//! `lint-allow.toml`: the explicit, reasoned exception list.
//!
//! Format — a sequence of `[[allow]]` tables, each with exactly three
//! string keys:
//!
//! ```toml
//! [[allow]]
//! rule = "PCQE-P001"          # or the short form "P001"
//! path = "crates/engine/src/config.rs"
//! line = 56                   # optional: pin to one line
//! reason = "constant-argument constructor, infallible by inspection"
//! ```
//!
//! The parser is a hand-rolled subset of TOML (the workspace is
//! registry-free), strict about what it accepts: unknown keys, missing
//! `rule`/`path`, bad rule codes and malformed lines are hard errors. A
//! missing or blank `reason` parses (as the empty string) so the rest of
//! the analysis still runs, but is reported as a `PCQE-A002` error.
//! Entries that suppress nothing are *stale* and reported as `PCQE-A001`
//! errors — an allowlist must never outlive the code it excuses.

use crate::rules::Rule;

/// One parsed `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    /// The rule being suppressed.
    pub rule: Rule,
    /// Relative `/`-separated path the suppression applies to.
    pub path: String,
    /// Restrict to one line; `None` covers the whole file.
    pub line: Option<u32>,
    /// Why the exception is sound. Required and non-empty.
    pub reason: String,
    /// Line of the `[[allow]]` header in the allowlist file itself.
    pub declared_at: u32,
}

/// Parse the allowlist. `source_name` labels error messages.
pub fn parse(text: &str, source_name: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<PartialEntry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(p.finish(source_name)?);
            }
            current = Some(PartialEntry::new(lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "{source_name}:{lineno}: unexpected table `{line}`; only `[[allow]]` is supported"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{source_name}:{lineno}: expected `key = value`, got `{line}`"
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "{source_name}:{lineno}: `{}` outside an `[[allow]]` table",
                key.trim()
            ));
        };
        match key.trim() {
            "rule" => {
                let code = parse_string(value, source_name, lineno)?;
                entry.rule = Some(
                    Rule::parse(&code)
                        .ok_or_else(|| format!("{source_name}:{lineno}: unknown rule `{code}`"))?,
                );
            }
            "path" => {
                let p = parse_string(value, source_name, lineno)?;
                entry.path = Some(p.replace('\\', "/"));
            }
            "line" => {
                let v = value.trim();
                entry.line = Some(v.parse::<u32>().map_err(|_| {
                    format!("{source_name}:{lineno}: `line` must be an integer, got `{v}`")
                })?);
            }
            "reason" => {
                // Emptiness is *not* a parse error: rule PCQE-A002 turns
                // a missing/blank reason into a reported finding, so the
                // rest of the analysis still runs and the whole hygiene
                // state is visible in one report.
                entry.reason = Some(parse_string(value, source_name, lineno)?);
            }
            other => {
                return Err(format!(
                    "{source_name}:{lineno}: unknown key `{other}` (expected rule/path/line/reason)"
                ));
            }
        }
    }
    if let Some(p) = current.take() {
        entries.push(p.finish(source_name)?);
    }
    Ok(entries)
}

struct PartialEntry {
    declared_at: u32,
    rule: Option<Rule>,
    path: Option<String>,
    line: Option<u32>,
    reason: Option<String>,
}

impl PartialEntry {
    fn new(declared_at: u32) -> PartialEntry {
        PartialEntry {
            declared_at,
            rule: None,
            path: None,
            line: None,
            reason: None,
        }
    }

    fn finish(self, source_name: &str) -> Result<AllowEntry, String> {
        let at = self.declared_at;
        let missing = |k: &str| format!("{source_name}:{at}: `[[allow]]` entry is missing `{k}`");
        Ok(AllowEntry {
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            path: self.path.ok_or_else(|| missing("path"))?,
            line: self.line,
            // A missing reason parses as empty and is reported as a
            // PCQE-A002 finding by the analyzer.
            reason: self.reason.unwrap_or_default(),
            declared_at: at,
        })
    }
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a double-quoted TOML string value.
fn parse_string(value: &str, source_name: &str, lineno: u32) -> Result<String, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| {
            format!("{source_name}:{lineno}: expected a double-quoted string, got `{v}`")
        })?;
    if inner.contains('"') {
        return Err(format!(
            "{source_name}:{lineno}: embedded quotes are not supported"
        ));
    }
    Ok(inner.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_and_without_lines() {
        let text = "\n# header comment\n[[allow]]\nrule = \"PCQE-P001\"\npath = \"crates/engine/src/config.rs\"\nline = 56\nreason = \"infallible constant\"\n\n[[allow]]\nrule = \"D001\" # short form\npath = \"crates/lineage/src/prob.rs\"\nreason = \"lookup-only impl\"\n";
        let entries = parse(text, "lint-allow.toml").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, Rule::P001);
        assert_eq!(entries[0].line, Some(56));
        assert_eq!(entries[1].rule, Rule::D001);
        assert_eq!(entries[1].line, None);
        assert_eq!(entries[1].declared_at, 9);
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(parse("[[allow]]\nrule = \"P001\"\n", "f").is_err()); // missing path
        assert!(parse(
            "[[allow]]\nrule = \"NOPE\"\npath = \"x\"\nreason = \"r\"\n",
            "f"
        )
        .is_err());
        assert!(parse("rule = \"P001\"\n", "f").is_err()); // key outside table
        assert!(parse("[allow]\n", "f").is_err()); // wrong table syntax
        assert!(parse("[[allow]]\nbogus = \"x\"\n", "f").is_err());
    }

    #[test]
    fn missing_or_empty_reason_parses_for_a002_to_report() {
        // A missing or blank reason is not a parse error — the analyzer
        // reports it as PCQE-A002 so the rest of the run still happens.
        let e = parse("[[allow]]\nrule = \"P001\"\npath = \"x\"\n", "f").unwrap();
        assert_eq!(e[0].reason, "");
        let e = parse(
            "[[allow]]\nrule = \"P001\"\npath = \"x\"\nreason = \"\"\n",
            "f",
        )
        .unwrap();
        assert_eq!(e[0].reason, "");
    }
}
