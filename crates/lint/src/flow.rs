//! Layer 4 of the analyzer: confidentiality dataflow. Taint from the
//! declared sources in `lint-flows.toml` ([`crate::flowspec`]) is
//! propagated through per-function def-use chains (`let` bindings,
//! format captures, return values — recorded by [`crate::item`]) and
//! across the workspace call graph ([`crate::graph`]) by argument
//! position, then checked against the disclosure sinks.
//!
//! Like the rest of the analyzer the tracking is **name-based and
//! conservative**: an identifier declared as a source name is tainted
//! wherever it appears, a binding whose initializer mentions a tainted
//! name taints the bound names, and a free function whose return
//! expression names a *declared* source taints every binding of its
//! call results (the callee *name* joins the tainted set; method names
//! stay out of it, and neither hot-name mentions nor tainted parameters
//! re-promote — the first closes a transitive loop that ends with `map`
//! and `run` hot for every kind, and the second is context-insensitive:
//! one tainted caller would mark the callee hot for every caller.
//! Parameter taint still reaches sinks *inside* the callee through the
//! interprocedural hand-off below). Over-approximation can only add
//! findings for a human to sanction, never hide a flow — the same
//! safety direction as the trait-object edges in layer 2.
//!
//! Interprocedural hand-off follows **path calls only** (free and
//! associated functions): a tainted argument at position `k` taints the
//! callee's `k`-th parameter, with the first-discovered caller recorded
//! as the witness predecessor. Method calls are excluded from hand-off —
//! they over-approximate to every same-named method, which would smear
//! taint across unrelated types. The same over-approximation rules
//! method-resolution out of sink *detection* too: a `.get(…)` that
//! happens to share its name with an obs accessor is not a trace sink.
//! Trace entry points are instead **declared** (`[[sink]] kind =
//! "trace"` names the obs methods a crate actually calls), with one
//! structural case kept: a path call spelled `pcqe_obs::…` is
//! unambiguous and always counts.
//!
//! Built-in structural sink classes (extra callees join via `[[sink]]`):
//!
//! * **error** — path calls whose leading segment ends in `Error`
//!   (typed-error constructors), panic-family payloads, and formatting
//!   inside `fmt` methods (`Display`/`Debug` impls);
//! * **trace** — path calls whose first segment is literally
//!   `pcqe_obs`; everything else joins by declaration;
//! * **shell** — print-family macro sites.
//!
//! | rule | taint kind | sinks checked |
//! |------|-----------|----------------|
//! | `PCQE-F001` | `suppressed` | error |
//! | `PCQE-F002` | `policy` | error + trace + shell |
//! | `PCQE-F003` | `confidence` | trace |
//!
//! A `[[sanction]]` entry covering (rule, file, sink callee) moves the
//! finding to the suppressed list with its reason — the audit log and
//! the `Decision`-record constructor are the canonical channels — and a
//! sanction nothing exercises is **PCQE-F004**. Manifest reason hygiene
//! (**PCQE-F005**) lives in [`crate::flowspec::FlowSpec::hygiene`].

use crate::flowspec::{FlowSpec, SinkKind, TaintKind, DEFAULT_FLOWS};
use crate::graph::CallGraph;
use crate::item::CallKind;
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// One hop of a taint-flow witness: the function carrying the taint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowHop {
    /// Qualified function name (`crate::Owner::fn`).
    pub name: String,
    /// File the hop lives in.
    pub path: String,
    /// 1-based line: the call site handing taint onward, or the sink
    /// site itself for the final hop.
    pub line: u32,
}

/// Witness flow paths keyed by the finding they belong to — a side
/// table so [`Finding`] keeps its shape; the SARIF export turns these
/// into code flows.
pub type Witnesses = BTreeMap<(String, u32, String), Vec<FlowHop>>;

/// Panic-family macros: their payload is an error-class sink.
const PANIC_FAMILY: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// Print-family macros: the shell sink class.
const PRINT_FAMILY: [&str; 4] = ["print", "println", "eprint", "eprintln"];

/// Write-family macros: an error-class sink *inside `fmt` methods* (the
/// formatted representation of the type escapes with the value).
const WRITE_FAMILY: [&str; 2] = ["write", "writeln"];

/// Explicit `pcqe_obs::…` path calls are always trace sinks; other obs
/// entry points (method calls on a tracer/observer) must be declared.
const OBS_CRATE: &str = "pcqe_obs";

/// Which rule guards a taint kind.
fn rule_of(kind: TaintKind) -> Rule {
    match kind {
        TaintKind::Suppressed => Rule::F001,
        TaintKind::Policy => Rule::F002,
        TaintKind::Confidence => Rule::F003,
    }
}

/// Which sink classes a taint kind is checked against.
fn sinks_of(kind: TaintKind) -> &'static [SinkKind] {
    match kind {
        TaintKind::Suppressed => &[SinkKind::Error],
        TaintKind::Policy => &[SinkKind::Error, SinkKind::Trace, SinkKind::Shell],
        TaintKind::Confidence => &[SinkKind::Trace],
    }
}

/// What a taint kind's data is called in messages.
fn describe(kind: TaintKind) -> &'static str {
    match kind {
        TaintKind::Suppressed => "suppressed-tuple data",
        TaintKind::Policy => "β/θ policy threshold",
        TaintKind::Confidence => "pre-gate confidence value",
    }
}

/// One detected sink site within a function body.
struct SinkSite {
    class: SinkKind,
    line: u32,
    /// Callee/macro name, matched against `[[sanction]].sink`.
    name: String,
    /// Human description for messages.
    desc: String,
    /// Identifiers visible in the sink's argument window.
    window: BTreeSet<String>,
    /// The call-position subset of the window — the only idents a
    /// hot-function name may match (a `.map(…)` mention is not a call
    /// of the free fn `map`).
    calls: BTreeSet<String>,
}

/// Run the dataflow rules F001–F005 over the graph.
pub fn dataflow(
    graph: &CallGraph,
    spec: &FlowSpec,
    out: &mut Vec<Finding>,
    suppressed: &mut Vec<(Finding, String)>,
    witnesses: &mut Witnesses,
) {
    if !spec.from_manifest {
        return; // no manifest: nothing is declared secret
    }
    spec.hygiene(DEFAULT_FLOWS, out);

    let sinks = collect_sinks(graph, spec);
    let mut exercised = vec![false; spec.sanctions.len()];
    for kind in TaintKind::all() {
        check_kind(
            graph,
            spec,
            kind,
            &sinks,
            &mut exercised,
            out,
            suppressed,
            witnesses,
        );
    }

    // F004: a sanction nothing exercises is a stale architecture
    // statement, exactly like an A003 capability grant.
    for (idx, s) in spec.sanctions.iter().enumerate() {
        if !exercised[idx] {
            out.push(Finding {
                rule: Rule::F004,
                path: DEFAULT_FLOWS.to_owned(),
                line: s.declared_at,
                message: format!(
                    "stale sanction: no {} flow reaches {}`{}` — delete the entry \
                     (reason was: {})",
                    s.rule,
                    s.sink
                        .as_deref()
                        .map(|k| format!("sink `{k}` in "))
                        .unwrap_or_default(),
                    s.path,
                    s.reason
                ),
            });
        }
    }
}

/// Enumerate every sink site of every function, in node order.
fn collect_sinks(graph: &CallGraph, spec: &FlowSpec) -> Vec<Vec<SinkSite>> {
    let extra_error = spec.sink_functions_of(SinkKind::Error);
    let extra_trace = spec.sink_functions_of(SinkKind::Trace);
    let extra_shell = spec.sink_functions_of(SinkKind::Shell);
    let mut out: Vec<Vec<SinkSite>> = Vec::with_capacity(graph.fns.len());
    for (i, node) in graph.fns.iter().enumerate() {
        let mut sites: Vec<SinkSite> = Vec::new();
        let in_fmt_method = node.name == "fmt" && node.owner.is_some();
        for f in &node.fmts {
            let (class, desc) = if PANIC_FAMILY.contains(&f.name.as_str()) {
                (SinkKind::Error, format!("panic payload `{}!`", f.name))
            } else if PRINT_FAMILY.contains(&f.name.as_str()) {
                (SinkKind::Shell, format!("shell output `{}!`", f.name))
            } else if in_fmt_method && WRITE_FAMILY.contains(&f.name.as_str()) {
                (
                    SinkKind::Error,
                    format!(
                        "`{}::fmt` output `{}!`",
                        node.owner.as_deref().unwrap_or(""),
                        f.name
                    ),
                )
            } else {
                continue;
            };
            sites.push(SinkSite {
                class,
                line: f.line,
                name: f.name.clone(),
                desc,
                window: f.args.clone(),
                calls: f.calls.clone(),
            });
        }
        for call in &graph.calls[i] {
            let callee = call.segs.last().cloned().unwrap_or_default();
            let qualified = call.segs.join("::");
            let window = || call.args.iter().flatten().cloned().collect::<BTreeSet<_>>();
            let calls = || {
                call.arg_calls
                    .iter()
                    .flatten()
                    .cloned()
                    .collect::<BTreeSet<_>>()
            };
            if call.kind == CallKind::Path
                && call.segs.len() >= 2
                && call.segs[call.segs.len() - 2].ends_with("Error")
            {
                sites.push(SinkSite {
                    class: SinkKind::Error,
                    line: call.line,
                    name: callee.clone(),
                    desc: format!("error constructor `{qualified}`"),
                    window: window(),
                    calls: calls(),
                });
            }
            if node.crate_name != OBS_CRATE
                && call.kind == CallKind::Path
                && call.segs.first().map(String::as_str) == Some(OBS_CRATE)
            {
                sites.push(SinkSite {
                    class: SinkKind::Trace,
                    line: call.line,
                    name: callee.clone(),
                    desc: format!("pcqe-obs entry point `{qualified}`"),
                    window: window(),
                    calls: calls(),
                });
            }
            for (class, set, label) in [
                (SinkKind::Error, &extra_error, "error"),
                (SinkKind::Trace, &extra_trace, "trace"),
                (SinkKind::Shell, &extra_shell, "shell"),
            ] {
                if set.contains(callee.as_str()) {
                    sites.push(SinkSite {
                        class,
                        line: call.line,
                        name: callee.clone(),
                        desc: format!("declared {label} sink `{qualified}`"),
                        window: window(),
                        calls: calls(),
                    });
                }
            }
        }
        sites.sort_by_key(|s| s.line);
        out.push(sites);
    }
    out
}

/// Propagate one taint kind to fixpoint and report its sink hits.
#[allow(clippy::too_many_arguments)]
fn check_kind(
    graph: &CallGraph,
    spec: &FlowSpec,
    kind: TaintKind,
    sinks: &[Vec<SinkSite>],
    exercised: &mut [bool],
    out: &mut Vec<Finding>,
    suppressed: &mut Vec<(Finding, String)>,
    witnesses: &mut Witnesses,
) {
    let rule = rule_of(kind);
    let classes = sinks_of(kind);
    let declared_names = spec.names_of(kind);
    let declared_fns = spec.functions_of(kind);
    if declared_names.is_empty() && declared_fns.is_empty() {
        return;
    }
    let n = graph.fns.len();

    // `hot_fn[i]`: fn i's return value carries the taint, so its *name*
    // taints any binding that mentions it. `param_taint[i]`: parameters
    // of fn i that received taint interprocedurally. `derived[i]`:
    // locally bound names tainted through `let` chains. `pred[i]`: the
    // first caller observed handing taint in, for witness chains.
    let mut hot_fn: Vec<bool> = graph
        .fns
        .iter()
        .map(|f| declared_fns.contains(f.name.as_str()))
        .collect();
    let mut param_taint: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut derived: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut pred: Vec<Option<(usize, u32)>> = vec![None; n];

    loop {
        let mut changed = false;
        // A hot *method* name is not tainted-by-mention: `x.eval(…)`
        // could be any type's `eval`, the same smear that rules method
        // calls out of hand-off. Free functions are unambiguous, and a
        // name the manifest declared is tainted by fiat.
        let hot_names: BTreeSet<&str> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|&(i, f)| {
                hot_fn[i] && (f.owner.is_none() || declared_fns.contains(f.name.as_str()))
            })
            .map(|(_, f)| f.name.as_str())
            .collect();
        for i in 0..n {
            let node = &graph.fns[i];
            let params_i = param_taint[i].clone();
            // Data taint: declared names and declared source functions
            // match any mention; inferred-hot names match only in call
            // position (`calls` windows), or `v.iter().map(…)` would
            // light up the moment any free fn named `map` runs hot.
            let tainted = |name: &str, local: &BTreeSet<String>| {
                declared_names.contains(name)
                    || declared_fns.contains(name)
                    || params_i.contains(name)
                    || local.contains(name)
            };
            let hot_call =
                |calls: &BTreeSet<String>| calls.iter().any(|c| hot_names.contains(c.as_str()));
            // Local fixpoint over the `let` chains of this body.
            let mut local = derived[i].clone();
            loop {
                let mut grew = false;
                for b in &node.binds {
                    if (b.rhs.iter().any(|r| tainted(r, &local)) || hot_call(&b.calls))
                        && b.names.iter().any(|m| !local.contains(m))
                    {
                        local.extend(b.names.iter().cloned());
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            if local != derived[i] {
                derived[i] = local;
                changed = true;
            }
            // Return-value taint promotes the function itself — but only
            // on *declared* evidence: the return window names a declared
            // source (name or function). That covers taint internal to
            // the callee (`fn current_beta(p) -> f64 { p.beta }`), the
            // one case callers cannot see; taint that arrives *through*
            // the call site is already visible in the caller's own rhs
            // window. Promoting on tainted params or hot/local mentions
            // instead makes the property global — one caller passing
            // tainted data marks the fn hot for every other caller — and
            // the closure ends with `solve`/`map`/`or_merge` hot for
            // every kind.
            if !hot_fn[i]
                && node.ret_idents.iter().any(|r| {
                    declared_names.contains(r.as_str()) || declared_fns.contains(r.as_str())
                })
            {
                hot_fn[i] = true;
                changed = true;
            }
            // Interprocedural hand-off by argument position, path calls
            // only (method edges over-approximate too wildly to carry
            // taint — see the module docs).
            for call in &graph.calls[i] {
                if call.kind != CallKind::Path {
                    continue;
                }
                for (k, argset) in call.args.iter().enumerate() {
                    let arg_hot = call.arg_calls.get(k).is_some_and(&hot_call);
                    if !arg_hot && !argset.iter().any(|a| tainted(a, &derived[i])) {
                        continue;
                    }
                    for &t in &call.targets {
                        let Some(pname) = graph.fns[t].params.get(k) else {
                            continue;
                        };
                        if param_taint[t].insert(pname.clone()) {
                            changed = true;
                            if pred[t].is_none() && t != i {
                                pred[t] = Some((i, call.line));
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // The final hot set, for matching sink-window call positions below.
    let hot_names: BTreeSet<&str> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|&(i, f)| {
            hot_fn[i] && (f.owner.is_none() || declared_fns.contains(f.name.as_str()))
        })
        .map(|(_, f)| f.name.as_str())
        .collect();

    // --- Sink hits -----------------------------------------------------
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for (i, node) in graph.fns.iter().enumerate() {
        for site in &sinks[i] {
            if !classes.contains(&site.class) {
                continue;
            }
            let hits: Vec<&str> = site
                .window
                .iter()
                .map(String::as_str)
                .filter(|w| {
                    declared_names.contains(w)
                        || declared_fns.contains(w)
                        || derived[i].contains(*w)
                        || param_taint[i].contains(*w)
                        || (site.calls.contains(*w) && hot_names.contains(w))
                })
                .collect();
            if hits.is_empty() {
                continue;
            }
            let key = (node.path.clone(), site.line, site.name.clone());
            if !seen.insert(key) {
                continue;
            }
            let chain = witness_chain(graph, &pred, i, site.line);
            let via = chain
                .iter()
                .map(|h| h.name.as_str())
                .collect::<Vec<_>>()
                .join(" → ");
            let finding = Finding {
                rule,
                path: node.path.clone(),
                line: site.line,
                message: format!(
                    "{} (`{}`) reaches {} via {via}: redact the value or declare the \
                     channel in {DEFAULT_FLOWS}",
                    describe(kind),
                    hits.join("`, `"),
                    site.desc,
                ),
            };
            match spec
                .sanctions
                .iter()
                .position(|s| s.covers(rule, &node.path, &site.name))
            {
                Some(idx) => {
                    exercised[idx] = true;
                    suppressed.push((finding, spec.sanctions[idx].reason.clone()));
                }
                None => {
                    witnesses.insert(
                        (node.path.clone(), site.line, rule.code().to_owned()),
                        chain,
                    );
                    out.push(finding);
                }
            }
        }
    }
}

/// Walk the predecessor links from the sink function back to the taint
/// origin, rendering the hop list origin-first (the sink hop carries
/// the sink line).
fn witness_chain(
    graph: &CallGraph,
    pred: &[Option<(usize, u32)>],
    sink_fn: usize,
    sink_line: u32,
) -> Vec<FlowHop> {
    let mut hops = vec![FlowHop {
        name: graph.fns[sink_fn].qualified(),
        path: graph.fns[sink_fn].path.clone(),
        line: sink_line,
    }];
    let mut visited = BTreeSet::from([sink_fn]);
    let mut j = sink_fn;
    while let Some((p, line)) = pred[j] {
        if !visited.insert(p) {
            break; // defensive: first-wins links should be acyclic
        }
        hops.push(FlowHop {
            name: graph.fns[p].qualified(),
            path: graph.fns[p].path.clone(),
            line,
        });
        j = p;
    }
    hops.reverse();
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowspec;
    use crate::item::collect;
    use crate::lexer::lex;
    use crate::rules::test_region_mask;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let items: Vec<_> = files
            .iter()
            .map(|(path, src)| {
                let toks = lex(src);
                let mask = test_region_mask(&toks);
                collect(path, &toks, &mask)
            })
            .collect();
        CallGraph::build(&items)
    }

    fn run(
        files: &[(&str, &str)],
        manifest: &str,
    ) -> (Vec<Finding>, Vec<(Finding, String)>, Witnesses) {
        let graph = graph_of(files);
        let spec = flowspec::parse(manifest, "lint-flows.toml").unwrap();
        let mut out = Vec::new();
        let mut suppressed = Vec::new();
        let mut witnesses = Witnesses::new();
        dataflow(&graph, &spec, &mut out, &mut suppressed, &mut witnesses);
        (out, suppressed, witnesses)
    }

    const POLICY_SRC: &str = "[[source]]\nkind = \"policy\"\nnames = [\"beta\", \"threshold\"]\n\
                              reason = \"policy internals\"\n";

    #[test]
    fn f002_catches_beta_reaching_shell_and_error_ctor() {
        let (out, _, w) = run(
            &[(
                "crates/policy/src/policy.rs",
                "pub fn check(beta: f64) -> Result<(), PolicyError> {\n\
                   if beta > 1.0 {\n\
                     println!(\"gate at {beta}\");\n\
                     return Err(PolicyError::InvalidThreshold(beta));\n\
                   }\n\
                   Ok(())\n\
                 }\n",
            )],
            POLICY_SRC,
        );
        assert_eq!(out.len(), 2, "{out:#?}");
        assert!(out.iter().all(|f| f.rule == Rule::F002));
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("shell output `println!`"));
        assert_eq!(out[1].line, 4);
        assert!(out[1]
            .message
            .contains("error constructor `PolicyError::InvalidThreshold`"));
        assert!(w.contains_key(&(
            "crates/policy/src/policy.rs".to_owned(),
            3,
            "PCQE-F002".to_owned()
        )));
    }

    #[test]
    fn f001_follows_let_chains_and_source_functions() {
        let manifest = "[[source]]\nkind = \"suppressed\"\nfunctions = [\"withheld_tuples\"]\n\
                        reason = \"the failing side of the gate\"\n";
        let (out, _, _) = run(
            &[(
                "crates/engine/src/database.rs",
                "pub fn report() -> Result<(), EngineError> {\n\
                   let dropped = withheld_tuples();\n\
                   let label = format!(\"lost {dropped:?}\");\n\
                   Err(EngineError::Leak(label))\n\
                 }\n\
                 fn withheld_tuples() -> Vec<u64> { Vec::new() }\n",
            )],
            manifest,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::F001);
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("suppressed-tuple data"));
        assert!(out[0].message.contains("`label`"));
    }

    #[test]
    fn interprocedural_two_hop_witness_names_every_function() {
        let (out, _, w) = run(
            &[
                (
                    "crates/policy/src/a.rs",
                    "pub fn top(beta: f64) { mid(beta * 2.0); }\n",
                ),
                (
                    "crates/policy/src/b.rs",
                    "pub fn mid(scaled: f64) { leaf(scaled); }\n\
                     fn leaf(v: f64) { panic!(\"bad {v}\"); }\n",
                ),
            ],
            POLICY_SRC,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::F002);
        assert!(
            out[0]
                .message
                .contains("pcqe_policy::top → pcqe_policy::mid → pcqe_policy::leaf"),
            "witness missing in: {}",
            out[0].message
        );
        let hops = &w[&(
            "crates/policy/src/b.rs".to_owned(),
            2,
            "PCQE-F002".to_owned(),
        )];
        assert_eq!(hops.len(), 3);
        assert_eq!(hops[0].path, "crates/policy/src/a.rs");
        assert_eq!(hops[2].line, 2);
    }

    #[test]
    fn f003_fires_only_on_trace_sinks_and_sanctions_suppress() {
        let manifest = "[[source]]\nkind = \"confidence\"\nnames = [\"confidence\"]\n\
                        reason = \"pre-gate scores\"\n\
                        [[sink]]\nkind = \"trace\"\nfunctions = [\"decision\"]\n\
                        reason = \"tracer method the engine calls\"\n\
                        [[sanction]]\nrule = \"PCQE-F003\"\n\
                        path = \"crates/engine/src/database.rs\"\nsink = \"decision\"\n\
                        reason = \"Decision records are the designed channel (PCQE-F003)\"\n";
        let files = [
            (
                "crates/engine/src/database.rs",
                "pub fn score(t: &Tracer, confidence: f64) {\n\
                   println!(\"c = {confidence}\");\n\
                   t.decision(confidence);\n\
                 }\n",
            ),
            (
                "crates/obs/src/trace.rs",
                "pub struct Tracer;\n\
                 impl Tracer { pub fn decision(&self, c: f64) { let _ = c; } }\n",
            ),
        ];
        let (out, suppressed, _) = run(&files, manifest);
        // The println is not a trace sink, so confidence may pass it;
        // the obs call is sanctioned as the Decision-record channel.
        assert!(out.is_empty(), "{out:#?}");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].0.rule, Rule::F003);
        assert!(suppressed[0].1.contains("Decision records"));

        // Without the sanction the same flow is a finding — and the
        // now-unexercised sanction pattern is what F004 guards.
        let bare = "[[source]]\nkind = \"confidence\"\nnames = [\"confidence\"]\n\
                    reason = \"pre-gate scores\"\n\
                    [[sink]]\nkind = \"trace\"\nfunctions = [\"decision\"]\n\
                    reason = \"tracer method the engine calls\"\n";
        let (out, suppressed, _) = run(&files, bare);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::F003);
        assert!(out[0].message.contains("declared trace sink"));
        assert!(suppressed.is_empty());

        // Undeclared, the method call is not a sink at all: method
        // resolution is too coarse to classify sinks structurally.
        let undeclared = "[[source]]\nkind = \"confidence\"\nnames = [\"confidence\"]\n\
                          reason = \"pre-gate scores\"\n";
        let (out, suppressed, _) = run(&files, undeclared);
        assert!(out.is_empty(), "{out:#?}");
        assert!(suppressed.is_empty());
    }

    #[test]
    fn return_promotion_needs_direct_evidence() {
        // `current_beta` returns a window naming `beta` → hot, so the
        // binding of its result is tainted two files away. `relay`
        // returns a *call to* the hot fn without naming a source — that
        // indirect evidence must NOT promote it, or every `map`/`run`
        // in the workspace ends up hot.
        let (out, _, _) = run(
            &[
                (
                    "crates/policy/src/a.rs",
                    "pub fn current_beta(p: &Policy) -> f64 { p.beta }\n\
                     pub fn relay(p: &Policy) -> f64 { current_beta(p) }\n",
                ),
                (
                    "crates/shell/src/main.rs",
                    "pub fn show(p: &Policy) {\n\
                       let gate = current_beta(p);\n\
                       println!(\"gate {gate}\");\n\
                       let indirect = relay(p);\n\
                       println!(\"indirect {indirect}\");\n\
                     }\n",
                ),
            ],
            POLICY_SRC,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::F002);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("`gate`"));
    }

    #[test]
    fn f004_reports_unexercised_sanctions() {
        let manifest = "[[source]]\nkind = \"policy\"\nnames = [\"beta\"]\nreason = \"r\"\n\
                        [[sanction]]\nrule = \"PCQE-F002\"\npath = \"crates/policy/src/x.rs\"\n\
                        reason = \"nothing flows here anymore\"\n";
        let (out, _, _) = run(
            &[("crates/policy/src/y.rs", "pub fn quiet() {}\n")],
            manifest,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::F004);
        assert_eq!(out[0].path, DEFAULT_FLOWS);
        assert!(out[0].message.contains("stale sanction"));
    }

    #[test]
    fn display_impl_writes_are_error_sinks() {
        let (out, _, _) = run(
            &[(
                "crates/engine/src/audit.rs",
                "impl std::fmt::Display for AuditEntry {\n\
                   fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n\
                     write!(f, \"β={threshold}\", threshold = self.threshold)\n\
                   }\n\
                 }\n",
            )],
            POLICY_SRC,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::F002);
        assert!(out[0].message.contains("`AuditEntry::fmt` output `write!`"));
    }

    #[test]
    fn no_manifest_means_the_layer_is_inert() {
        let graph = graph_of(&[(
            "crates/policy/src/policy.rs",
            "pub fn check(beta: f64) { println!(\"{beta}\"); }\n",
        )]);
        let spec = FlowSpec::default();
        let mut out = Vec::new();
        let mut suppressed = Vec::new();
        let mut witnesses = Witnesses::new();
        dataflow(&graph, &spec, &mut out, &mut suppressed, &mut witnesses);
        assert!(out.is_empty() && suppressed.is_empty() && witnesses.is_empty());
    }
}
