//! Layer 1 of the two-layer analyzer: a lightweight *item* parser.
//!
//! PR 2's rules matched token windows — good enough for "this construct
//! may not appear in this file", useless for *reachability* properties
//! ("no path from the public API may hit a panic"). This module sits
//! between the lexer and the call graph: it walks the token stream of one
//! file and recovers just enough item structure to build a workspace call
//! graph —
//!
//! * `use` trees (aliases → full paths, for call resolution);
//! * `fn` items, free or inside `impl`/`trait` blocks, with visibility,
//!   owner type, and the line they start on;
//! * per-function **call sites** (bare calls, `path::to::calls`, and
//!   `.method(` calls, each with its token position for ordering
//!   analyses), **panic sites** (`.unwrap()`, `.expect("…")`,
//!   `panic!`-family macros, and slice/array indexing), and the set of
//!   identifiers the body **mentions** (anchors for the policy-gating
//!   rule);
//! * per-function **lock-acquisition sites** (`x.lock()` / empty-paren
//!   `x.read()` / `x.write()`, named by the receiver identifier) and
//!   **relaxed atomic loads** (`x.load(Ordering::Relaxed|Acquire)`) —
//!   the inputs to the layer-3 concurrency rules ([`crate::concurrency`]);
//! * module-level `static` items whose type carries interior mutability,
//!   and `pub fn` return types that share it behind an `Arc` — the
//!   escape-analysis providers (rule C005).
//!
//! The parser is deliberately shallow and fail-soft, in the same spirit
//! as the lexer: a construct it cannot interpret is skipped, which at
//! worst *misses an edge* (a false negative on one path), never invents
//! a finding on valid code it did understand. Known blind spots, chosen
//! over a real parse for std-only simplicity: turbofish calls
//! (`collect::<Vec<_>>()`), calls inside `const`/`static` initializers,
//! and `macro_rules!` bodies (skipped wholesale).

use crate::capability::Cap;
use crate::lexer::{Tok, Token};
use std::collections::BTreeSet;

/// A panicking construct inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`
    Unwrap,
    /// `.expect("…")` with a string-literal argument.
    Expect,
    /// `panic!` / `todo!` / `unimplemented!` / `unreachable!`.
    Macro(String),
    /// Slice/array indexing `x[i]` or `x[a..b]` (panics out of bounds).
    Index,
}

impl PanicKind {
    /// Human name of the construct, used in findings.
    pub fn describe(&self) -> String {
        match self {
            PanicKind::Unwrap => "`.unwrap()`".to_owned(),
            PanicKind::Expect => "`.expect(\"…\")`".to_owned(),
            PanicKind::Macro(m) => format!("`{m}!`"),
            PanicKind::Index => "slice/array index".to_owned(),
        }
    }
}

/// One panic site: what and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// The construct.
    pub kind: PanicKind,
    /// 1-based line in the containing file.
    pub line: u32,
}

/// How a call is written at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `f(…)`, `module::f(…)`, `Type::f(…)` — a path call.
    Path,
    /// `.f(…)` — a method call (receiver type unknown).
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments as written; a bare or method call has one segment.
    pub segs: Vec<String>,
    /// Path vs. method syntax.
    pub kind: CallKind,
    /// 1-based line.
    pub line: u32,
    /// Token index of the call's name in the file — a total order over
    /// every site in the same body, so "after the lock was taken" is a
    /// plain comparison.
    pub pos: usize,
    /// Identifiers in each top-level comma-separated argument, in
    /// argument order (format-string captures included) — the def-use
    /// hand-off the dataflow layer matches against callee parameters.
    pub args: Vec<BTreeSet<String>>,
    /// The subset of each argument's identifiers that sit in *call
    /// position* (`name(…)`, not `.name(…)`): what hot-function names
    /// may be matched against without colliding with method idioms.
    pub arg_calls: Vec<BTreeSet<String>>,
}

/// One `let` statement (or `if let`/`while let` binding): the names the
/// pattern introduces and every identifier the initializer expression
/// mentions. Together with [`CallSite::args`] and [`FmtSite::args`]
/// these are the per-function def-use chains of the dataflow layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bind {
    /// Names bound by the pattern (type-annotation idents included — an
    /// over-approximation in the safe direction for taint tracking).
    pub names: BTreeSet<String>,
    /// Identifiers mentioned by the right-hand side, including called
    /// function names, field names and format-string captures.
    pub rhs: BTreeSet<String>,
    /// Right-hand-side identifiers in call position (`name(…)`, not
    /// `.name(…)`) — see [`CallSite::arg_calls`].
    pub calls: BTreeSet<String>,
    /// 1-based line of the `let` keyword.
    pub line: u32,
}

/// One `format!`-family macro site (`format!`, `write!`, `println!`,
/// `panic!`, …): the rendered-output conduits and sinks of the dataflow
/// layer, with every identifier their arguments mention — explicit
/// arguments and implicit `"{name}"` captures alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FmtSite {
    /// The macro name without the `!` (`format`, `write`, `println`, …).
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Identifiers mentioned anywhere in the macro's arguments,
    /// including `{capture}` names inside the format string.
    pub args: BTreeSet<String>,
    /// Argument identifiers in call position (`name(…)`, not
    /// `.name(…)`) — see [`CallSite::arg_calls`].
    pub calls: BTreeSet<String>,
}

/// One lock acquisition inside a function body: `x.lock()` or an
/// empty-paren `x.read()` / `x.write()` (`RwLock` guards). Locks are
/// identified by the receiver identifier — `self.inner.lock()` is lock
/// `inner`, and a bare `self.lock()` is named after the enclosing owner
/// type. Name-based identity is conservative and global: two fields
/// sharing a name alias to one lock node, which can only *add* lock-order
/// edges (the safe direction for deadlock detection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// The lock's name (receiver identifier or owner type).
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Token index of the method name (comparable with [`CallSite::pos`]).
    pub pos: usize,
}

/// One relaxed atomic read: `x.load(Ordering::Relaxed)` or `…::Acquire`.
/// `SeqCst` loads are not recorded — they take the one total
/// modification order and cannot reorder against other `SeqCst` ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSite {
    /// The ordering argument as written (`Relaxed` or `Acquire`).
    pub ordering: String,
    /// 1-based line.
    pub line: u32,
}

/// One module-level `static` whose type carries interior mutability —
/// a shared-state escape hatch the C005 analysis tracks by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticItem {
    /// The static's name.
    pub name: String,
    /// 1-based line of the `static` keyword.
    pub line: u32,
    /// Which capability class the type needs (locks or atomics).
    pub carries: Cap,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// `impl` type or `trait` name when the fn is a method / default
    /// method; `None` for free functions.
    pub owner: Option<String>,
    /// Unrestricted `pub` (`pub(crate)` and friends are *not* public API).
    pub is_public: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Every call site in the body.
    pub calls: Vec<CallSite>,
    /// Every panic site in the body.
    pub panics: Vec<PanicSite>,
    /// Every lock-acquisition site in the body, in source order.
    pub locks: Vec<LockSite>,
    /// Every relaxed/acquire atomic load in the body.
    pub loads: Vec<LoadSite>,
    /// `Some(cap)` when the return type shares interior-mutable state
    /// behind an `Arc` (e.g. `-> Arc<Mutex<…>>`) — a C005 provider if
    /// the fn is public in a capability-granted crate.
    pub ret_carries: Option<Cap>,
    /// Every identifier mentioned in the body (types included) — the
    /// anchor set for content rules like policy gating.
    pub mentions: BTreeSet<String>,
    /// Parameter names in declaration order (`self` excluded) — the
    /// receiving end of interprocedural argument-taint hand-off.
    pub params: Vec<String>,
    /// `let` bindings in source order (def-use chains).
    pub binds: Vec<Bind>,
    /// `format!`-family macro sites in source order.
    pub fmts: Vec<FmtSite>,
    /// Identifiers mentioned in `return` expressions and the trailing
    /// expression — what the function's return value is built from.
    pub ret_idents: BTreeSet<String>,
}

/// One resolved `use` leaf: `alias` is the name in scope, `segs` the full
/// path as written (`use a::b as c` → alias `c`, segs `[a, b]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseItem {
    /// The in-scope name.
    pub alias: String,
    /// The full path segments.
    pub segs: Vec<String>,
}

/// All items recovered from one file.
#[derive(Debug, Clone)]
pub struct FileItems {
    /// `/`-separated path relative to the scan root.
    pub path: String,
    /// The crate the file belongs to (underscore form, e.g.
    /// `pcqe_engine`), derived from the path.
    pub crate_name: String,
    /// `use` leaves, in source order.
    pub imports: Vec<UseItem>,
    /// `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// Interior-mutable module-level `static`s, in source order.
    pub statics: Vec<StaticItem>,
}

/// Derive the crate name (underscore form) from a workspace-relative
/// path: `crates/engine/src/x.rs` → `pcqe_engine`, the root `src/` tree →
/// `pcqe`. Fixture trees follow the same shape.
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(dir)) => format!("pcqe_{}", dir.replace('-', "_")),
        (Some("src"), _) => "pcqe".to_owned(),
        _ => "pcqe".to_owned(),
    }
}

/// The macros that abort instead of returning.
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// The macros that render values into text. The panic family is
/// included: a panic payload is an output channel too (rule F001).
const FMT_MACROS: [&str; 12] = [
    "format",
    "format_args",
    "write",
    "writeln",
    "print",
    "println",
    "eprint",
    "eprintln",
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
];

/// Implicit format captures in a literal body: `"β={threshold}"` →
/// `threshold`. `{{` escapes are skipped; positional (`{0}`) and bare
/// (`{}`/`{:?}`) specs name nothing; a `:` ends the name part.
fn fmt_captures(body: &str, out: &mut BTreeSet<String>) {
    let bytes = body.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // escaped `{{`
            continue;
        }
        let mut j = i + 1;
        while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
            j += 1;
        }
        let name = &body[i + 1..j.min(body.len())];
        let is_ident = !name.is_empty()
            && name.as_bytes()[0].is_ascii_alphabetic()
            && name.bytes().all(|b| b == b'_' || b.is_ascii_alphanumeric());
        if is_ident {
            out.insert(name.to_owned());
        }
        i = j + 1;
    }
}

/// Which capability class an interior-mutable *shared* type identifier
/// carries, for escape tracking: lock types and atomics. `mpsc`
/// endpoints are excluded (a cloned `Sender` is the channel working as
/// designed, not state escaping it), and `Cell`/`RefCell` are not `Sync`
/// so they cannot cross threads behind an `Arc` in compiling code.
fn shared_state_cap(name: &str) -> Option<Cap> {
    match Cap::of_token(name) {
        Some(cap @ (Cap::Locks | Cap::Atomics)) => Some(cap),
        _ => None,
    }
}

/// Parse one file's tokens into items. `mask[i]` marks tokens inside
/// `#[cfg(test)]` items (from [`crate::rules`]'s region mask); masked
/// items are skipped entirely — test code may panic.
pub fn collect(path: &str, toks: &[Token], mask: &[bool]) -> FileItems {
    let mut out = FileItems {
        path: path.to_owned(),
        crate_name: crate_of(path),
        imports: Vec::new(),
        fns: Vec::new(),
        statics: Vec::new(),
    };
    let mut p = ItemParser {
        toks,
        mask,
        out: &mut out,
    };
    p.items(0, toks.len(), None);
    out
}

struct ItemParser<'a> {
    toks: &'a [Token],
    mask: &'a [bool],
    out: &'a mut FileItems,
}

impl<'a> ItemParser<'a> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// Skip a balanced group starting at the opener `open` at index `i`;
    /// returns the index just past the matching closer.
    fn skip_group(&self, mut i: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        while i < self.toks.len() {
            if self.punct_at(i, open) {
                depth += 1;
            } else if self.punct_at(i, close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }

    /// Item-level scan of `[start, end)`; `owner` is the enclosing
    /// `impl`/`trait` type name, if any.
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        let mut pending_pub = false;
        while i < end {
            if self.mask.get(i).copied().unwrap_or(false) {
                i += 1;
                pending_pub = false;
                continue;
            }
            // Attributes: skip `#[ … ]` wholesale.
            if self.punct_at(i, '#') && self.punct_at(i + 1, '[') {
                i = self.skip_group(i + 1, '[', ']');
                continue;
            }
            let Some(word) = self.ident_at(i) else {
                i += 1;
                pending_pub = false;
                continue;
            };
            match word {
                "pub" => {
                    if self.punct_at(i + 1, '(') {
                        // `pub(crate)` / `pub(in …)`: restricted, not API.
                        i = self.skip_group(i + 1, '(', ')');
                        pending_pub = false;
                    } else {
                        pending_pub = true;
                        i += 1;
                    }
                }
                // Modifiers between `pub` and `fn` keep the visibility.
                "const" | "unsafe" | "async" | "extern" => i += 1,
                "use" => {
                    i = self.use_item(i + 1);
                    pending_pub = false;
                }
                "mod" => {
                    // `mod name { … }` recurses; `mod name;` is inert.
                    let mut j = i + 1;
                    while j < end && !self.punct_at(j, '{') && !self.punct_at(j, ';') {
                        j += 1;
                    }
                    if self.punct_at(j, '{') {
                        let close = self.skip_group(j, '{', '}');
                        self.items(j + 1, close.saturating_sub(1), None);
                        i = close;
                    } else {
                        i = j + 1;
                    }
                    pending_pub = false;
                }
                "impl" => {
                    i = self.impl_or_trait(i + 1, false);
                    pending_pub = false;
                }
                "trait" => {
                    i = self.impl_or_trait(i + 1, true);
                    pending_pub = false;
                }
                "fn" => {
                    i = self.fn_item(i + 1, owner, pending_pub);
                    pending_pub = false;
                }
                "macro_rules" => {
                    // `macro_rules! name { … }`: arbitrary tokens, skip.
                    let mut j = i + 1;
                    while j < end
                        && !self.punct_at(j, '{')
                        && !self.punct_at(j, '(')
                        && !self.punct_at(j, '[')
                    {
                        j += 1;
                    }
                    i = match self.toks.get(j).map(|t| &t.tok) {
                        Some(Tok::Punct('{')) => self.skip_group(j, '{', '}'),
                        Some(Tok::Punct('(')) => self.skip_group(j, '(', ')'),
                        Some(Tok::Punct('[')) => self.skip_group(j, '[', ']'),
                        _ => j,
                    };
                    pending_pub = false;
                }
                "static" => {
                    i = self.static_item(i, end);
                    pending_pub = false;
                }
                "struct" | "enum" | "union" => {
                    // Skip to `;` or through the body: field lists contain
                    // no calls.
                    let mut j = i + 1;
                    while j < end && !self.punct_at(j, '{') && !self.punct_at(j, ';') {
                        j += 1;
                    }
                    i = if self.punct_at(j, '{') {
                        self.skip_group(j, '{', '}')
                    } else {
                        j + 1
                    };
                    pending_pub = false;
                }
                _ => {
                    i += 1;
                    pending_pub = false;
                }
            }
        }
    }

    /// Parse a `use` tree starting just past the `use` keyword; returns
    /// the index past the terminating `;`.
    fn use_item(&mut self, start: usize) -> usize {
        let mut end = start;
        while end < self.toks.len() && !self.punct_at(end, ';') {
            end += 1;
        }
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(start, end, &mut prefix);
        end + 1
    }

    /// Recursive `use`-tree walk over `[start, end)` with the running
    /// path `prefix`; emits one [`UseItem`] per leaf.
    fn use_tree(&mut self, start: usize, end: usize, prefix: &mut Vec<String>) {
        let depth_in = prefix.len();
        let mut i = start;
        while i < end {
            if let Some(w) = self.ident_at(i) {
                if w == "as" {
                    // `path as alias`: the alias names the full prefix.
                    if let Some(alias) = self.ident_at(i + 1) {
                        self.out.imports.push(UseItem {
                            alias: alias.to_owned(),
                            segs: prefix.clone(),
                        });
                    }
                    prefix.truncate(depth_in);
                    i += 2;
                    continue;
                }
                prefix.push(w.to_owned());
                i += 1;
                continue;
            }
            if self.punct_at(i, ':') {
                i += 1; // path separator (`::` comes as two `:`s)
                continue;
            }
            if self.punct_at(i, '{') {
                // Group: recurse over each comma-separated subtree.
                let close = self.skip_group(i, '{', '}');
                let mut seg_start = i + 1;
                let mut depth = 0usize;
                let mut j = i + 1;
                while j < close.saturating_sub(1) {
                    if self.punct_at(j, '{') {
                        depth += 1;
                    } else if self.punct_at(j, '}') {
                        depth = depth.saturating_sub(1);
                    } else if self.punct_at(j, ',') && depth == 0 {
                        let mut sub = prefix.clone();
                        self.use_tree(seg_start, j, &mut sub);
                        seg_start = j + 1;
                    }
                    j += 1;
                }
                let mut sub = prefix.clone();
                self.use_tree(seg_start, close.saturating_sub(1), &mut sub);
                prefix.truncate(depth_in);
                return; // a group ends the tree at this level
            }
            if self.punct_at(i, ',') || self.punct_at(i, '*') {
                // `*` globs are not resolvable name-by-name: ignored.
                prefix.truncate(depth_in);
                i += 1;
                continue;
            }
            i += 1;
        }
        // A plain path leaf: alias = last segment.
        if prefix.len() > depth_in {
            if let Some(last) = prefix.last().cloned() {
                // `use x::y::self;` (via groups `{self, …}`) names the
                // parent module.
                if last == "self" && prefix.len() >= 2 {
                    let segs: Vec<String> = prefix[..prefix.len() - 1].to_vec();
                    if let Some(alias) = segs.last().cloned() {
                        self.out.imports.push(UseItem { alias, segs });
                    }
                } else {
                    self.out.imports.push(UseItem {
                        alias: last,
                        segs: prefix.clone(),
                    });
                }
            }
        }
        prefix.truncate(depth_in);
    }

    /// Handle a `static` keyword at item level (index `i`). Records a
    /// [`StaticItem`] when the declared type carries interior mutability;
    /// returns the index to resume scanning from. `&'static` lifetimes
    /// reach this arm too and are rejected by shape: a declaration is
    /// `static [mut] NAME :` and is never preceded by a `'`.
    fn static_item(&mut self, i: usize, end: usize) -> usize {
        if i > 0 && self.punct_at(i - 1, '\'') {
            return i + 1; // `&'static …` lifetime, not an item
        }
        let mut j = i + 1;
        if self.ident_at(j) == Some("mut") {
            j += 1;
        }
        let (Some(name), true) = (self.ident_at(j), self.punct_at(j + 1, ':')) else {
            return i + 1;
        };
        let name = name.to_owned();
        // Scan the type region (`:` to `=` or `;` at group depth 0) for
        // shared interior-mutable type identifiers.
        let mut carries: Option<Cap> = None;
        let mut k = j + 2;
        let mut depth = 0usize;
        while k < end {
            match &self.toks[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                Tok::Punct('=') | Tok::Punct(';') if depth == 0 => break,
                Tok::Ident(w) if carries.is_none() => carries = shared_state_cap(w),
                _ => {}
            }
            k += 1;
        }
        if let Some(carries) = carries {
            self.out.statics.push(StaticItem {
                name,
                line: self.toks[i].line,
                carries,
            });
        }
        // Skip the initializer to the terminating `;` at brace depth 0.
        let mut depth = 0usize;
        while k < end {
            match &self.toks[k].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth = depth.saturating_sub(1),
                Tok::Punct(';') if depth == 0 => return k + 1,
                _ => {}
            }
            k += 1;
        }
        k
    }

    /// Parse an `impl`/`trait` header starting just past the keyword and
    /// recurse into its body with the owner type set. Returns the index
    /// past the closing brace.
    fn impl_or_trait(&mut self, start: usize, is_trait: bool) -> usize {
        let mut i = start;
        let mut angle = 0usize;
        let mut owner: Option<String> = None;
        while i < self.toks.len() {
            match &self.toks[i].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle = angle.saturating_sub(1),
                Tok::Punct('{') if angle == 0 => break,
                Tok::Punct(';') if angle == 0 => return i + 1, // `impl Foo;`? bail
                Tok::Ident(w) if angle == 0 => {
                    if w == "where" {
                        // Idents in a where-clause are bounds, not the type.
                        let mut j = i + 1;
                        while j < self.toks.len() && !self.punct_at(j, '{') {
                            j += 1;
                        }
                        i = j;
                        continue;
                    }
                    if w != "for" && w != "dyn" {
                        owner = Some(w.clone());
                        if is_trait && owner.is_some() {
                            // A trait's name is its first ident; bounds
                            // after `:` must not overwrite it.
                            let name = owner.clone();
                            let mut j = i + 1;
                            while j < self.toks.len() && !self.punct_at(j, '{') {
                                j += 1;
                            }
                            let close = self.skip_group(j, '{', '}');
                            self.items(j + 1, close.saturating_sub(1), name.as_deref());
                            return close;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        if !self.punct_at(i, '{') {
            return i;
        }
        let close = self.skip_group(i, '{', '}');
        self.items(i + 1, close.saturating_sub(1), owner.as_deref());
        close
    }

    /// Parse a `fn` item starting just past the `fn` keyword; scans the
    /// body for calls, panic sites and mentions. Returns the index past
    /// the body (or past `;` for a bodyless trait method).
    fn fn_item(&mut self, start: usize, owner: Option<&str>, is_public: bool) -> usize {
        let Some(name) = self.ident_at(start) else {
            return start + 1;
        };
        let name = name.to_owned();
        let line = self.toks[start].line;
        // Signature: find the parameter list, skip it, then scan to the
        // body `{` (or `;`). Return types and where-clauses contain no
        // braces, so the first `{` at paren-depth 0 opens the body.
        let mut i = start + 1;
        while i < self.toks.len() && !self.punct_at(i, '(') && !self.punct_at(i, ';') {
            i += 1;
        }
        if !self.punct_at(i, '(') {
            return i + 1;
        }
        let params_open = i;
        i = self.skip_group(i, '(', ')');
        // Parameter names: idents directly followed by `:` at depth 1 of
        // the parameter group (`self` has no annotation and is skipped;
        // destructuring patterns are missed — a conservative gap that
        // only drops taint hand-off on constructs the tree avoids).
        let mut params: Vec<String> = Vec::new();
        {
            let mut depth = 0usize;
            for k in params_open..i.min(self.toks.len()) {
                match &self.toks[k].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => {
                        depth += 1
                    }
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') | Tok::Punct('>') => {
                        depth = depth.saturating_sub(1)
                    }
                    // `::`-paths in default-type positions don't occur
                    // in parameter lists; a lone `:` marks the name.
                    Tok::Ident(w)
                        if depth == 1
                            && self.punct_at(k + 1, ':')
                            && !self.punct_at(k + 2, ':') =>
                    {
                        params.push(w.clone());
                    }
                    _ => {}
                }
            }
        }
        let ret_start = i;
        while i < self.toks.len() && !self.punct_at(i, '{') && !self.punct_at(i, ';') {
            i += 1;
        }
        if !self.punct_at(i, '{') {
            return i + 1; // declaration only (trait method without body)
        }
        // Return-type region: an `Arc` wrapping an interior-mutable type
        // means the fn hands out shared mutable state (a C005 provider).
        let mut saw_arc = false;
        let mut ret_carries: Option<Cap> = None;
        for t in &self.toks[ret_start..i] {
            if let Tok::Ident(w) = &t.tok {
                if w == "Arc" {
                    saw_arc = true;
                }
                if ret_carries.is_none() {
                    ret_carries = shared_state_cap(w);
                }
            }
        }
        let close = self.skip_group(i, '{', '}');
        let mut item = FnItem {
            name,
            owner: owner.map(str::to_owned),
            is_public,
            line,
            calls: Vec::new(),
            panics: Vec::new(),
            locks: Vec::new(),
            loads: Vec::new(),
            ret_carries: if saw_arc { ret_carries } else { None },
            mentions: BTreeSet::new(),
            params,
            binds: Vec::new(),
            fmts: Vec::new(),
            ret_idents: BTreeSet::new(),
        };
        self.body(i + 1, close.saturating_sub(1), &mut item);
        self.ret_idents(i + 1, close.saturating_sub(1), &mut item.ret_idents);
        self.out.fns.push(item);
        close
    }

    /// Identifiers the function's return value is built from: everything
    /// mentioned after each `return` keyword (to the next `;`) plus the
    /// trailing expression (tokens after the last depth-0 `;` of the
    /// body). Both regions over-approximate — a `match` used as the
    /// trailing expression contributes every arm — which is the safe
    /// direction for return-value taint.
    fn ret_idents(&self, start: usize, end: usize, out: &mut BTreeSet<String>) {
        let mut depth = 0usize;
        let mut tail_start = start;
        for k in start..end.min(self.toks.len()) {
            match &self.toks[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                Tok::Punct(';') if depth == 0 => tail_start = k + 1,
                Tok::Ident(w) if w == "return" => {
                    let mut j = k + 1;
                    while j < end.min(self.toks.len()) && !self.punct_at(j, ';') {
                        self.window_ident(j, out);
                        j += 1;
                    }
                }
                _ => {}
            }
        }
        for k in tail_start..end.min(self.toks.len()) {
            self.window_ident(k, out);
        }
    }

    /// Add the identifier at token `k` — or the format captures of a
    /// string literal at `k` — to `out`.
    fn window_ident(&self, k: usize, out: &mut BTreeSet<String>) {
        match &self.toks[k].tok {
            Tok::Ident(w) => {
                out.insert(w.clone());
            }
            Tok::LitStr(body) => fmt_captures(body, out),
            _ => {}
        }
    }

    /// The identifier set of the token window `[start, end)`: idents plus
    /// format captures of string literals.
    fn window_idents(&self, start: usize, end: usize) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for k in start..end.min(self.toks.len()) {
            self.window_ident(k, &mut out);
        }
        out
    }

    /// The call-position identifier set of `[start, end)`: idents
    /// immediately followed by `(` that are not method calls (no
    /// preceding `.`). Macro names (`name!(…)`) are excluded by the
    /// intervening `!`.
    fn window_calls(&self, start: usize, end: usize) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for k in start..end.min(self.toks.len()) {
            if let Tok::Ident(w) = &self.toks[k].tok {
                if self.punct_at(k + 1, '(') && (k == 0 || !self.punct_at(k - 1, '.')) {
                    out.insert(w.clone());
                }
            }
        }
        out
    }

    /// Per-argument identifier sets of a call group opening at `open`:
    /// one (full-window, call-position) pair of sets per top-level
    /// comma-separated argument.
    fn call_args(&self, open: usize) -> (Vec<BTreeSet<String>>, Vec<BTreeSet<String>>) {
        if !self.punct_at(open, '(') {
            return (Vec::new(), Vec::new());
        }
        let close = self.skip_group(open, '(', ')');
        let inner_end = close.saturating_sub(1).min(self.toks.len());
        if open + 1 >= inner_end {
            return (Vec::new(), Vec::new());
        }
        let mut args = Vec::new();
        let mut arg_calls = Vec::new();
        let mut depth = 0usize;
        let mut seg_start = open + 1;
        for k in open + 1..inner_end {
            match &self.toks[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                Tok::Punct(',') if depth == 0 => {
                    args.push(self.window_idents(seg_start, k));
                    arg_calls.push(self.window_calls(seg_start, k));
                    seg_start = k + 1;
                }
                _ => {}
            }
        }
        args.push(self.window_idents(seg_start, inner_end));
        arg_calls.push(self.window_calls(seg_start, inner_end));
        (args, arg_calls)
    }

    /// The lock name for a method call at token `i` (whose `.` sits at
    /// `i - 1`): the receiver identifier, with a bare `self` receiver
    /// named after the enclosing owner type. A non-identifier receiver
    /// (`make().lock()`, tuple fields) falls back to the owner type when
    /// inside an `impl`, else the site is skipped — a conservative miss
    /// that only drops lock-order edges for constructs the tree avoids.
    fn receiver_name(&self, i: usize, start: usize, item: &FnItem) -> Option<String> {
        if i < start + 2 {
            return item.owner.clone();
        }
        match self.ident_at(i - 2) {
            Some("self") => item.owner.clone().or_else(|| Some("self".to_owned())),
            Some(r) => Some(r.to_owned()),
            None => item.owner.clone(),
        }
    }

    /// If the argument group opening at token `open` mentions the
    /// ordering `Relaxed` or `Acquire`, return it. An ordering passed
    /// through a variable is missed — conservative, and the repo style
    /// names orderings literally at the load site.
    fn weak_ordering_arg(&self, open: usize) -> Option<String> {
        if !self.punct_at(open, '(') {
            return None;
        }
        let close = self.skip_group(open, '(', ')');
        for t in &self.toks[open..close.min(self.toks.len())] {
            if let Tok::Ident(w) = &t.tok {
                if w == "Relaxed" || w == "Acquire" {
                    return Some(w.clone());
                }
            }
        }
        None
    }

    /// Record the binding introduced by a `let` keyword at token `i`
    /// (plain `let`, `if let`, `while let`, `let … else`): pattern names
    /// from the region up to the `=`, initializer identifiers from the
    /// region up to the statement end. A lookahead only — the caller
    /// keeps scanning the same tokens for calls and sites.
    fn bind(&self, i: usize, end: usize, item: &mut FnItem) {
        // Pattern region: `let` to the first standalone `=` at depth 0
        // (`==`, `>=`, `<=`, `!=`, `=>` never appear before the binding
        // `=` of a well-formed let).
        let mut j = i + 1;
        let mut depth = 0usize;
        let limit = end.min(self.toks.len());
        while j < limit {
            match &self.toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') | Tok::Punct('>') => {
                    depth = depth.saturating_sub(1)
                }
                Tok::Punct('=') if depth == 0 && !self.punct_at(j + 1, '=') => break,
                Tok::Punct(';') if depth == 0 => return, // `let x;` — no initializer
                _ => {}
            }
            j += 1;
        }
        if j >= limit {
            return;
        }
        let mut names = self.window_idents(i + 1, j);
        names.remove("mut");
        names.remove("ref");
        if names.is_empty() {
            return;
        }
        // Initializer region: `=` to the `;` at depth 0 (an `else` block
        // of `let … else` is included — over-approximation, safe).
        let mut k = j + 1;
        let mut depth = 0usize;
        while k < limit {
            match &self.toks[k].tok {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        item.binds.push(Bind {
            names,
            rhs: self.window_idents(j + 1, k),
            calls: self.window_calls(j + 1, k),
            line: self.toks[i].line,
        });
    }

    /// Scan a fn body `[start, end)` for calls, panic sites and mentions.
    fn body(&self, start: usize, end: usize, item: &mut FnItem) {
        let mut i = start;
        while i < end {
            // Attributes inside bodies (`#[allow]` on statements).
            if self.punct_at(i, '#') && self.punct_at(i + 1, '[') {
                i = self.skip_group(i + 1, '[', ']');
                continue;
            }
            let t = &self.toks[i];
            match &t.tok {
                Tok::Ident(w) => {
                    item.mentions.insert(w.clone());
                    let called = self.punct_at(i + 1, '(');
                    let banged = self.punct_at(i + 1, '!');
                    let dotted = i > start && self.punct_at(i - 1, '.');
                    if w == "let" {
                        self.bind(i, end, item);
                        i += 1;
                        continue;
                    }
                    if banged && self.punct_at(i + 2, '(') && FMT_MACROS.contains(&w.as_str()) {
                        let close = self.skip_group(i + 2, '(', ')');
                        item.fmts.push(FmtSite {
                            name: w.clone(),
                            line: t.line,
                            args: self.window_idents(i + 3, close.saturating_sub(1)),
                            calls: self.window_calls(i + 3, close.saturating_sub(1)),
                        });
                    }
                    if banged && PANIC_MACROS.contains(&w.as_str()) {
                        item.panics.push(PanicSite {
                            kind: PanicKind::Macro(w.clone()),
                            line: t.line,
                        });
                    } else if called && dotted {
                        match w.as_str() {
                            "unwrap" => item.panics.push(PanicSite {
                                kind: PanicKind::Unwrap,
                                line: t.line,
                            }),
                            "expect"
                                if self
                                    .toks
                                    .get(i + 2)
                                    .is_some_and(|n| matches!(n.tok, Tok::LitStr(_))) =>
                            {
                                item.panics.push(PanicSite {
                                    kind: PanicKind::Expect,
                                    line: t.line,
                                })
                            }
                            _ => {
                                // `x.lock()` / empty-paren `x.read()` /
                                // `x.write()`: a lock acquisition, named
                                // by the receiver. (The empty-argument
                                // requirement keeps `io::Read::read(buf)`
                                // and friends out of scope.)
                                if matches!(w.as_str(), "lock" | "read" | "write")
                                    && self.punct_at(i + 2, ')')
                                {
                                    if let Some(name) = self.receiver_name(i, start, item) {
                                        item.locks.push(LockSite {
                                            name,
                                            line: t.line,
                                            pos: i,
                                        });
                                    }
                                }
                                // `x.load(Ordering::Relaxed|Acquire)`:
                                // a weakly-ordered atomic read.
                                if w == "load" {
                                    if let Some(ordering) = self.weak_ordering_arg(i + 1) {
                                        item.loads.push(LoadSite {
                                            ordering,
                                            line: t.line,
                                        });
                                    }
                                }
                                let (args, arg_calls) = self.call_args(i + 1);
                                item.calls.push(CallSite {
                                    segs: vec![w.clone()],
                                    kind: CallKind::Method,
                                    line: t.line,
                                    pos: i,
                                    args,
                                    arg_calls,
                                });
                            }
                        }
                    } else if called {
                        // Walk back through `::`-joined segments.
                        let mut segs = vec![w.clone()];
                        let mut j = i;
                        while j >= 2
                            && self.punct_at(j - 1, ':')
                            && self.punct_at(j - 2, ':')
                            && j >= 3
                        {
                            if let Some(prev) = self.ident_at(j - 3) {
                                segs.insert(0, prev.to_owned());
                                j -= 3;
                            } else {
                                break;
                            }
                        }
                        let (args, arg_calls) = self.call_args(i + 1);
                        item.calls.push(CallSite {
                            segs,
                            kind: CallKind::Path,
                            line: t.line,
                            pos: i,
                            args,
                            arg_calls,
                        });
                    }
                    i += 1;
                }
                Tok::Punct('[') => {
                    // Index expression: `x[i]`, `f()[i]`, `a[0][1]` — the
                    // opener follows a value. Attribute openers follow `#`
                    // (handled above); array types/literals follow
                    // punctuation.
                    let indexes_value = i > 0
                        && matches!(
                            &self.toks[i - 1].tok,
                            Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']')
                        );
                    if indexes_value {
                        item.panics.push(PanicSite {
                            kind: PanicKind::Index,
                            line: t.line,
                        });
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_region_mask;

    fn items(src: &str) -> FileItems {
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        collect("crates/engine/src/x.rs", &toks, &mask)
    }

    #[test]
    fn crate_names_from_paths() {
        assert_eq!(crate_of("crates/engine/src/database.rs"), "pcqe_engine");
        assert_eq!(crate_of("crates/core/src/greedy.rs"), "pcqe_core");
        assert_eq!(crate_of("src/lib.rs"), "pcqe");
    }

    #[test]
    fn collects_free_and_method_fns_with_visibility() {
        let f = items(
            "pub fn api() { helper(); }\n\
             fn helper() {}\n\
             pub(crate) fn internal() {}\n\
             struct S;\n\
             impl S { pub fn m(&self) { self.n(); } fn n(&self) {} }\n",
        );
        let names: Vec<(&str, Option<&str>, bool)> = f
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref(), f.is_public))
            .collect();
        assert_eq!(
            names,
            vec![
                ("api", None, true),
                ("helper", None, false),
                ("internal", None, false), // pub(crate) is not public API
                ("m", Some("S"), true),
                ("n", Some("S"), false),
            ]
        );
        assert_eq!(f.fns[0].calls.len(), 1);
        assert_eq!(f.fns[0].calls[0].segs, vec!["helper"]);
        assert_eq!(f.fns[3].calls[0].kind, CallKind::Method);
        assert_eq!(f.fns[3].calls[0].segs, vec!["n"]);
    }

    #[test]
    fn impl_trait_for_type_attributes_methods_to_the_type() {
        let f = items(
            "impl std::fmt::Display for Wide {\n\
               fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write(f) }\n\
             }\n\
             impl<T: Clone> Holder<T> where T: Default { fn take(&self) {} }\n",
        );
        assert_eq!(f.fns[0].owner.as_deref(), Some("Wide"));
        assert_eq!(f.fns[1].owner.as_deref(), Some("Holder"));
    }

    #[test]
    fn records_path_calls_with_segments() {
        let f = items(
            "fn go() {\n\
               pcqe_algebra::execute_with(1);\n\
               crate::improve::propose();\n\
               Plan::scan(\"t\");\n\
             }\n",
        );
        let segs: Vec<Vec<String>> = f.fns[0].calls.iter().map(|c| c.segs.clone()).collect();
        assert_eq!(
            segs,
            vec![
                vec!["pcqe_algebra".to_owned(), "execute_with".to_owned()],
                vec![
                    "crate".to_owned(),
                    "improve".to_owned(),
                    "propose".to_owned()
                ],
                vec!["Plan".to_owned(), "scan".to_owned()],
            ]
        );
    }

    #[test]
    fn records_panic_sites() {
        let f = items(
            "fn risky(v: Vec<u32>, o: Option<u32>) -> u32 {\n\
               let a = o.unwrap();\n\
               let b = o.expect(\"present\");\n\
               if a > b { panic!(\"boom\"); }\n\
               v[0] + v[a as usize]\n\
             }\n",
        );
        let kinds: Vec<(PanicKind, u32)> = f.fns[0]
            .panics
            .iter()
            .map(|p| (p.kind.clone(), p.line))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (PanicKind::Unwrap, 2),
                (PanicKind::Expect, 3),
                (PanicKind::Macro("panic".into()), 4),
                (PanicKind::Index, 5),
                (PanicKind::Index, 5),
            ]
        );
    }

    #[test]
    fn index_detection_skips_types_literals_and_attributes() {
        let f = items(
            "fn ok(x: [u8; 4], s: &[u8]) -> Vec<u8> {\n\
               #[allow(unused)]\n\
               let a: [u8; 2] = [1, 2];\n\
               let v = vec![1u8];\n\
               v\n\
             }\n",
        );
        assert!(f.fns[0].panics.is_empty(), "{:?}", f.fns[0].panics);
    }

    #[test]
    fn parses_use_trees_with_groups_aliases_and_self() {
        let f = items(
            "use pcqe_policy::{evaluate_results, store::PolicyStore as Store};\n\
             use crate::improve::{self, ProposeOutcome};\n\
             use std::collections::BTreeMap;\n",
        );
        let got: Vec<(String, Vec<String>)> = f
            .imports
            .iter()
            .map(|u| (u.alias.clone(), u.segs.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                (
                    "evaluate_results".to_owned(),
                    vec!["pcqe_policy".to_owned(), "evaluate_results".to_owned()]
                ),
                (
                    "Store".to_owned(),
                    vec![
                        "pcqe_policy".to_owned(),
                        "store".to_owned(),
                        "PolicyStore".to_owned()
                    ]
                ),
                (
                    "improve".to_owned(),
                    vec!["crate".to_owned(), "improve".to_owned()]
                ),
                (
                    "ProposeOutcome".to_owned(),
                    vec![
                        "crate".to_owned(),
                        "improve".to_owned(),
                        "ProposeOutcome".to_owned()
                    ]
                ),
                (
                    "BTreeMap".to_owned(),
                    vec![
                        "std".to_owned(),
                        "collections".to_owned(),
                        "BTreeMap".to_owned()
                    ]
                ),
            ]
        );
    }

    #[test]
    fn cfg_test_items_are_invisible() {
        let f = items(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
               fn t() { x.unwrap(); }\n\
             }\n",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "live");
    }

    #[test]
    fn mentions_include_type_names() {
        let f = items("fn emit() -> ReleasedTuple { ReleasedTuple { x: 1 } }\n");
        assert!(f.fns[0].mentions.contains("ReleasedTuple"));
    }

    #[test]
    fn records_lock_sites_with_receiver_names() {
        let f = items(
            "struct R { inner: u32 }\n\
             impl R {\n\
               fn lock_inner(&self) { self.inner.lock(); }\n\
               fn lock_self(&self) { self.lock(); }\n\
             }\n\
             fn free(done: &M, rw: &W, io: &mut F, buf: &mut [u8]) {\n\
               let _g = done.lock();\n\
               let _r = rw.read();\n\
               let _w = rw.write();\n\
               io.read(buf);\n\
             }\n",
        );
        let sites: Vec<(String, Vec<(&str, u32)>)> = f
            .fns
            .iter()
            .map(|fun| {
                (
                    fun.name.clone(),
                    fun.locks
                        .iter()
                        .map(|l| (l.name.as_str(), l.line))
                        .collect(),
                )
            })
            .collect();
        assert_eq!(
            sites,
            vec![
                // `self.inner.lock()` names the field; bare `self.lock()`
                // names the owner type.
                ("lock_inner".to_owned(), vec![("inner", 3)]),
                ("lock_self".to_owned(), vec![("R", 4)]),
                // Empty-paren read/write are RwLock guards; `io.read(buf)`
                // takes an argument and is not an acquisition.
                ("free".to_owned(), vec![("done", 7), ("rw", 8), ("rw", 9)]),
            ]
        );
        // Positions give a total source order per body.
        let free = &f.fns[2];
        assert!(free.locks.windows(2).all(|w| w[0].pos < w[1].pos));
        assert!(free.calls.iter().all(|c| c.pos > 0));
    }

    #[test]
    fn records_relaxed_and_acquire_loads_not_seqcst() {
        let f = items(
            "fn f(a: &AtomicU64) -> u64 {\n\
               let x = a.load(Ordering::Relaxed);\n\
               let y = a.load(Ordering::Acquire);\n\
               let z = a.load(Ordering::SeqCst);\n\
               x + y + z\n\
             }\n",
        );
        let got: Vec<(&str, u32)> = f.fns[0]
            .loads
            .iter()
            .map(|l| (l.ordering.as_str(), l.line))
            .collect();
        assert_eq!(got, vec![("Relaxed", 2), ("Acquire", 3)]);
    }

    #[test]
    fn return_types_sharing_interior_mutability_are_flagged() {
        let f = items(
            "pub fn shared() -> Arc<Mutex<Vec<u64>>> { make() }\n\
             pub fn plain() -> Vec<u64> { make() }\n\
             pub fn arc_only() -> Arc<Vec<u64>> { make() }\n\
             pub fn flag() -> Arc<AtomicU64> { make() }\n\
             pub fn bare_mutex() -> Mutex<u64> { make() }\n",
        );
        let got: Vec<Option<Cap>> = f.fns.iter().map(|fun| fun.ret_carries).collect();
        // Only the `Arc`-shared forms escape: a bare `Mutex` return moves
        // ownership to the caller instead of sharing it.
        assert_eq!(
            got,
            vec![Some(Cap::Locks), None, None, Some(Cap::Atomics), None]
        );
    }

    #[test]
    fn interior_mutable_statics_are_recorded_and_lifetimes_are_not() {
        let f = items(
            "pub static SHARED: Mutex<u64> = Mutex::new(0);\n\
             static COUNT: AtomicU64 = AtomicU64::new(0);\n\
             static NAME: &'static str = \"x\";\n\
             const LABEL: &'static str = \"y\";\n\
             fn after() {}\n",
        );
        let got: Vec<(&str, u32, Cap)> = f
            .statics
            .iter()
            .map(|s| (s.name.as_str(), s.line, s.carries))
            .collect();
        assert_eq!(
            got,
            vec![("SHARED", 1, Cap::Locks), ("COUNT", 2, Cap::Atomics)]
        );
        // The parser resumes correctly after statics and `&'static` refs.
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "after");
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let f = items("macro_rules! m { () => { fn fake() { x.unwrap(); } }; }\nfn real() {}\n");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
    }

    #[test]
    fn records_params_excluding_self_and_nested_generics() {
        let f = items(
            "fn free(beta: f64, names: Vec<String>, pair: BTreeMap<String, u32>) {}\n\
             impl S { fn m(&self, threshold: f64) {} }\n",
        );
        assert_eq!(f.fns[0].params, vec!["beta", "names", "pair"]);
        assert_eq!(f.fns[1].params, vec!["threshold"]);
    }

    #[test]
    fn records_let_bindings_with_rhs_idents_and_captures() {
        let f = items(
            "fn go(policy: &Policy) -> f64 {\n\
               let beta = policy.threshold;\n\
               let msg = format!(\"gate at {beta}\");\n\
               let (a, b): (u32, u32) = split(beta);\n\
               let none;\n\
               if a == b { return beta; }\n\
               beta\n\
             }\n",
        );
        let binds = &f.fns[0].binds;
        assert_eq!(binds.len(), 3, "{binds:?}");
        assert!(binds[0].names.contains("beta"));
        assert!(binds[0].rhs.contains("policy") && binds[0].rhs.contains("threshold"));
        // The format! capture in the string literal taints the binding.
        assert!(binds[1].names.contains("msg"));
        assert!(binds[1].rhs.contains("beta"), "{:?}", binds[1].rhs);
        // Tuple pattern: both names bound; `a == b` never parses as a let.
        assert!(binds[2].names.contains("a") && binds[2].names.contains("b"));
        assert!(binds[2].rhs.contains("beta"));
    }

    #[test]
    fn records_fmt_sites_and_return_idents() {
        let f = items(
            "fn leak(withheld: &[u64], beta: f64) -> f64 {\n\
               println!(\"dropped {} at {beta}\", withheld.len());\n\
               if beta < 0.0 { return beta; }\n\
               beta * 2.0\n\
             }\n",
        );
        let fun = &f.fns[0];
        assert_eq!(fun.fmts.len(), 1);
        assert_eq!(fun.fmts[0].name, "println");
        assert!(fun.fmts[0].args.contains("withheld") && fun.fmts[0].args.contains("beta"));
        assert!(fun.ret_idents.contains("beta"));
    }

    #[test]
    fn records_per_argument_ident_sets_on_calls() {
        let f = items(
            "fn go(beta: f64, tag: &str) {\n\
               check(one(beta), tag, format!(\"b={beta}\"));\n\
             }\n",
        );
        let call = f.fns[0]
            .calls
            .iter()
            .find(|c| c.segs == ["check"])
            .expect("check call");
        assert_eq!(call.args.len(), 3, "{:?}", call.args);
        assert!(call.args[0].contains("beta") && call.args[0].contains("one"));
        assert!(call.args[1].contains("tag"));
        // Nested format! commas stay inside arg 2; its capture is visible.
        assert!(call.args[2].contains("beta"));
    }
}
