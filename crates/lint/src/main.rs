//! `pcqe-lint` CLI.
//!
//! ```text
//! pcqe-lint [--root DIR] [--format human|json|sarif] [--allowlist FILE] [--rule ID] [--list-rules]
//! ```
//!
//! Exit status: `0` clean, `1` unsuppressed error findings, `2` usage or
//! I/O failure. With no `--root`, the scan root is found by walking up
//! from the current directory to the first `Cargo.toml` containing a
//! `[workspace]` table — so `cargo run -p pcqe-lint` works from anywhere
//! inside the repository. `--rule` narrows the *displayed* report to one
//! rule id; the exit status still reflects the full analysis, so a
//! filtered view can never hide a failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut allowlist: Option<PathBuf> = None;
    let mut rule: Option<pcqe_lint::rules::Rule> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a file"),
            },
            "--rule" => match args
                .next()
                .as_deref()
                .map(|v| (v, pcqe_lint::rules::Rule::parse(v)))
            {
                Some((_, Some(r))) => rule = Some(r),
                Some((v, None)) => {
                    return usage(&format!("unknown rule id `{v}` (try --list-rules)"))
                }
                None => return usage("--rule needs a rule id (e.g. PCQE-C003)"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    return usage(&format!(
                        "--format must be `human`, `json` or `sarif`, got `{}`",
                        other.unwrap_or("<none>")
                    ))
                }
            },
            "--list-rules" => {
                for rule in pcqe_lint::rules::Rule::all() {
                    println!(
                        "{} [{}] {}",
                        rule.code(),
                        rule.severity().label(),
                        rule.summary()
                    );
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!(
                    "pcqe-lint: static invariant analyzer (determinism, hermeticity, panic-safety)\n\n\
                     usage: pcqe-lint [--root DIR] [--format human|json|sarif] [--allowlist FILE] [--rule ID] [--list-rules]\n\n\
                     --rule ID narrows the displayed report to one rule; the exit status\n\
                     still reflects the full analysis\n\n\
                     exit status: 0 clean, 1 findings, 2 usage/io error"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!(
                    "pcqe-lint: no workspace root found (run inside the repo or pass --root)"
                );
                return ExitCode::from(2);
            }
        },
    };

    match pcqe_lint::analyze(&root, allowlist.as_deref()) {
        Ok(analysis) => {
            // Exit semantics come from the FULL analysis; `--rule` only
            // narrows what is printed.
            let clean = analysis.is_clean();
            let display = match rule {
                Some(r) => analysis.filtered(r),
                None => analysis,
            };
            let rendered = match format {
                Format::Human => pcqe_lint::report::human(&display),
                Format::Json => pcqe_lint::report::json(&display),
                Format::Sarif => pcqe_lint::sarif::sarif(&display),
            };
            print!("{rendered}");
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("pcqe-lint: {e}");
            ExitCode::from(2)
        }
    }
}

#[derive(Clone, Copy)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pcqe-lint: {msg} (try --help)");
    ExitCode::from(2)
}

/// Walk up from the current directory to the first manifest declaring a
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !pop(&mut dir) {
            return None;
        }
    }
}

fn pop(dir: &mut PathBuf) -> bool {
    let parent: Option<&Path> = dir.parent();
    match parent {
        Some(p) => {
            let p = p.to_path_buf();
            *dir = p;
            true
        }
        None => false,
    }
}
