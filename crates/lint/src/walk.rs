//! Deterministic workspace walking.
//!
//! Directory entries are visited in sorted order so findings, JSON output
//! and exit codes are identical across platforms and runs — the analyzer
//! holds itself to the determinism bar it enforces.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Every `.rs` file under `root`, as sorted `/`-separated relative paths.
pub fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    collect(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative(root, &path));
        }
    }
    Ok(())
}

/// The default-workspace manifests checked by rule H001: the root
/// `Cargo.toml` plus every `crates/*/Cargo.toml` except the detached
/// `crates/bench` workspace — exactly the set whose dependencies the
/// offline build resolves.
pub fn workspace_manifests(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    if root.join("Cargo.toml").is_file() {
        out.push("Cargo.toml".to_owned());
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for dir in entries {
            if dir.file_name().is_some_and(|n| n == "bench") {
                continue; // detached workspace with its own rules
            }
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                out.push(relative(root, &manifest));
            }
        }
    }
    Ok(out)
}

/// `path` relative to `root` with `/` separators.
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
