//! The rule set: stable IDs, severities, and the token-window matchers.
//!
//! Every rule is a *conservative, type-blind* approximation of the
//! invariant it protects — the lexer sees tokens, not types, so rules are
//! written to over-approximate (ban the construct outright) rather than
//! under-approximate (miss violations). Justified exceptions go in
//! `lint-allow.toml` with a reason; see `DESIGN.md` § "Static invariants".

use crate::capability::{Cap, Capabilities};
use crate::lexer::{lex, Tok, Token};
use std::collections::BTreeSet;

/// Stable rule identifiers. Codes are part of the tool's contract: CI
/// logs, allowlist entries and docs all refer to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Unordered `HashMap`/`HashSet` in a result-affecting crate.
    D001,
    /// Ad-hoc randomness outside `pcqe-lineage::rng`.
    D002,
    /// Direct `std::thread` use without the `threads` capability.
    D003,
    /// Float comparison/ordering outside the `pcqe_core::ord` wrapper.
    D004,
    /// Concurrency primitives outside the built-in legacy containment
    /// list (fires only when the scanned root has no
    /// `lint-capabilities.toml`; the manifest form is [`Rule::C002`]).
    C001,
    /// Concurrency token in a crate without the matching capability
    /// grant (the manifest-mode successor of C001).
    C002,
    /// Deadlock risk: the workspace lock-order graph has a cycle
    /// (call-graph rule, see [`crate::concurrency`]).
    C003,
    /// A lock held across a call into a result-affecting crate
    /// (call-graph rule, see [`crate::concurrency`]).
    C004,
    /// Interior-mutable shared state escaping a capability-granted crate
    /// into the result-affecting set (see [`crate::concurrency`]).
    C005,
    /// `Ordering::Relaxed`/`Acquire` atomic read feeding a
    /// `ReleasedTuple`-constructing fn on a query path (see
    /// [`crate::concurrency`]).
    C006,
    /// Row release reachable from a query entry point without passing the
    /// policy gate (call-graph rule, see [`crate::graph`]).
    G001,
    /// Non-`path` dependency in a default-workspace manifest.
    H001,
    /// `unwrap`/`expect`/`panic!`-family in guarded library code.
    P001,
    /// Panic construct *reachable* from guarded public API (call-graph
    /// rule with witness paths, see [`crate::graph`]).
    P002,
    /// Wall-clock access outside the sanctioned timing modules.
    T001,
    /// Suppressed-tuple data reaching an error-message or panic-payload
    /// sink (dataflow rule with witness paths, see [`crate::flow`]).
    F001,
    /// β/θ policy threshold flowing to a non-audit sink (see
    /// [`crate::flow`]).
    F002,
    /// Pre-gate confidence value escaping to trace/metrics outside the
    /// `Decision`-record constructors (see [`crate::flow`]).
    F003,
    /// Sanctioned-sink declaration in `lint-flows.toml` that nothing
    /// exercises (hygiene, like [`Rule::A003`]).
    F004,
    /// Flow-manifest entry missing a reason or citing a stale rule id
    /// (hygiene, extending the A002 discipline).
    F005,
    /// Stale allowlist entry (suppresses nothing).
    A001,
    /// Allowlist entry without a non-empty reason, or whose reason names
    /// a wrong/unknown rule id.
    A002,
    /// Granted-but-unused capability in `lint-capabilities.toml`.
    A003,
}

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run.
    Error,
    /// Reported, never fails the run.
    Warning,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl Rule {
    /// The full stable code, e.g. `PCQE-D001`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::D001 => "PCQE-D001",
            Rule::D002 => "PCQE-D002",
            Rule::D003 => "PCQE-D003",
            Rule::D004 => "PCQE-D004",
            Rule::C001 => "PCQE-C001",
            Rule::C002 => "PCQE-C002",
            Rule::C003 => "PCQE-C003",
            Rule::C004 => "PCQE-C004",
            Rule::C005 => "PCQE-C005",
            Rule::C006 => "PCQE-C006",
            Rule::G001 => "PCQE-G001",
            Rule::H001 => "PCQE-H001",
            Rule::P001 => "PCQE-P001",
            Rule::P002 => "PCQE-P002",
            Rule::T001 => "PCQE-T001",
            Rule::F001 => "PCQE-F001",
            Rule::F002 => "PCQE-F002",
            Rule::F003 => "PCQE-F003",
            Rule::F004 => "PCQE-F004",
            Rule::F005 => "PCQE-F005",
            Rule::A001 => "PCQE-A001",
            Rule::A002 => "PCQE-A002",
            Rule::A003 => "PCQE-A003",
        }
    }

    /// Per-rule severity. Everything that protects a shipped invariant is
    /// an error; the enum keeps the door open for advisory rules.
    pub fn severity(self) -> Severity {
        Severity::Error
    }

    /// What the rule protects, for `--list-rules` and reports.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "determinism: no HashMap/HashSet in result-affecting crates",
            Rule::D002 => "determinism: no RNG construction outside pcqe-lineage::rng",
            Rule::D003 => "determinism: no std::thread without the `threads` capability",
            Rule::D004 => {
                "determinism: float compare/order through pcqe_core::ord only (no ==/!=, \
                 partial_cmp/total_cmp, f32) in result-affecting crates"
            }
            Rule::C001 => {
                "concurrency: Mutex/RwLock/Atomic*/mpsc contained to pcqe-par, pcqe-obs \
                 and core::clock (legacy mode — no lint-capabilities.toml at the root)"
            }
            Rule::C002 => {
                "concurrency: every Mutex/RwLock/Condvar/Atomic*/mpsc token needs a \
                 matching capability grant in lint-capabilities.toml"
            }
            Rule::C003 => {
                "concurrency: the workspace lock-order graph must be acyclic (deadlock \
                 risks reported with a deterministic cycle witness)"
            }
            Rule::C004 => "concurrency: no lock held across a call into a result-affecting crate",
            Rule::C005 => {
                "concurrency: interior-mutable shared state (Arc<Mutex<_>>, statics) \
                 must not escape a capability-granted crate into the result-affecting set"
            }
            Rule::C006 => {
                "concurrency: no Relaxed/Acquire atomic read feeding a ReleasedTuple \
                 constructor on a query path (bit-identity of released rows)"
            }
            Rule::G001 => {
                "policy: every call path from a query entry point to a row-emitting fn \
                 passes the policy gate"
            }
            Rule::H001 => "hermeticity: only path dependencies in default-workspace manifests",
            Rule::P001 => "panic-safety: no unwrap/expect/panic! in guarded library code",
            Rule::P002 => {
                "panic-safety: no panic construct reachable from guarded public API \
                 (witness call path reported)"
            }
            Rule::T001 => "determinism: wall-clock access only in bench and core::clock",
            Rule::F001 => {
                "confidentiality: suppressed-tuple data must not reach an error-message \
                 or panic-payload sink (witness flow path reported)"
            }
            Rule::F002 => {
                "confidentiality: β/θ policy thresholds flow only to the sanctioned \
                 audit/Decision channels declared in lint-flows.toml"
            }
            Rule::F003 => {
                "confidentiality: pre-gate confidence values must not escape to \
                 trace/metrics outside the Decision-record constructors"
            }
            Rule::F004 => {
                "hygiene: sanctioned-sink declarations in lint-flows.toml must be \
                 exercised (no stale sanctions)"
            }
            Rule::F005 => {
                "hygiene: flow-manifest entries must carry a reason and cite only \
                 live rule ids"
            }
            Rule::A001 => "hygiene: allowlist entries must suppress at least one finding",
            Rule::A002 => {
                "hygiene: allowlist entries must carry a non-empty reason; file-wide \
                 entries must state the rule id they suppress"
            }
            Rule::A003 => "hygiene: granted capabilities must be exercised (no stale grants)",
        }
    }

    /// Resolve a rule from either its full code (`PCQE-D001`) or its
    /// short form (`D001`).
    pub fn parse(s: &str) -> Option<Rule> {
        let short = s.strip_prefix("PCQE-").unwrap_or(s);
        match short {
            "D001" => Some(Rule::D001),
            "D002" => Some(Rule::D002),
            "D003" => Some(Rule::D003),
            "D004" => Some(Rule::D004),
            "C001" => Some(Rule::C001),
            "C002" => Some(Rule::C002),
            "C003" => Some(Rule::C003),
            "C004" => Some(Rule::C004),
            "C005" => Some(Rule::C005),
            "C006" => Some(Rule::C006),
            "G001" => Some(Rule::G001),
            "H001" => Some(Rule::H001),
            "P001" => Some(Rule::P001),
            "P002" => Some(Rule::P002),
            "T001" => Some(Rule::T001),
            "F001" => Some(Rule::F001),
            "F002" => Some(Rule::F002),
            "F003" => Some(Rule::F003),
            "F004" => Some(Rule::F004),
            "F005" => Some(Rule::F005),
            "A001" => Some(Rule::A001),
            "A002" => Some(Rule::A002),
            "A003" => Some(Rule::A003),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 23] {
        [
            Rule::D001,
            Rule::D002,
            Rule::D003,
            Rule::D004,
            Rule::C001,
            Rule::C002,
            Rule::C003,
            Rule::C004,
            Rule::C005,
            Rule::C006,
            Rule::G001,
            Rule::H001,
            Rule::P001,
            Rule::P002,
            Rule::T001,
            Rule::F001,
            Rule::F002,
            Rule::F003,
            Rule::F004,
            Rule::F005,
            Rule::A001,
            Rule::A002,
            Rule::A003,
        ]
    }
}

/// One rule violation at a location.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Path relative to the scanned root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation with the offending construct named.
    pub message: String,
}

/// Which rules apply to a file, derived from its path relative to the
/// scanned root.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Test/bench/example/fixture code: token rules are skipped entirely.
    pub is_test_code: bool,
    d001: bool,
    d002: bool,
    d004: bool,
    /// P001 applies here; also consulted by the graph layer, which
    /// reports only *index* panics under P002 where P001 already covers
    /// the direct constructs.
    pub p001: bool,
    t001: bool,
}

/// Crates whose output ordering feeds query results; `HashMap` iteration
/// there silently breaks bit-identical evaluation (rule D001). `pcqe-obs`
/// is included: metric snapshots and exports are golden-tested, so their
/// iteration order must be stable too. The storage index and statistics
/// modules are listed individually: equality-index postings order and
/// cardinality estimates both feed physical plan choice and row order,
/// so hash iteration there would silently change plans or results. The
/// columnar batch and partitioning modules join them: batch layout
/// carries result rows directly, and the partition hash decides which
/// build table every join key lands in — hashing or float drift there
/// changes join output.
const RESULT_AFFECTING: [&str; 10] = [
    "crates/algebra/src/",
    "crates/lineage/src/",
    "crates/core/src/",
    "crates/engine/src/",
    "crates/policy/src/",
    "crates/obs/src/",
    "crates/storage/src/index.rs",
    "crates/storage/src/stats.rs",
    "crates/storage/src/batch.rs",
    "crates/storage/src/partition.rs",
];

/// Crates whose library code must surface typed errors instead of
/// panicking (rule P001). `pcqe-obs` is included: instrumentation runs
/// inside every query and must never abort one. `algebra::physical` is
/// held to the same standard even though the rest of `pcqe-algebra` is
/// not: the physical executor and planner sit on the hot path of every
/// engine query, so they must surface typed errors, not panics. The
/// lineage circuit cache is guarded file-by-file for the same reason:
/// cached scoring runs inside `Database::query`/`what_if`, so a panic
/// there aborts a query that the uncached path would have answered.
const PANIC_GUARDED: [&str; 7] = [
    "crates/engine/src/",
    "crates/policy/src/",
    "crates/storage/src/",
    "crates/sql/src/",
    "crates/obs/src/",
    "crates/algebra/src/physical/",
    "crates/lineage/src/cache.rs",
];

/// Identifiers that signal ad-hoc entropy or registry RNG idioms (D002).
const RNG_IDENTS: [&str; 7] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "StdRng",
    "SmallRng",
    "getrandom",
    "RandomState",
];

impl FileClass {
    /// Classify a `/`-separated relative path.
    pub fn classify(path: &str) -> FileClass {
        let is_test_code = path
            .split('/')
            .any(|c| matches!(c, "tests" | "benches" | "examples" | "fixtures"));
        let starts = |prefixes: &[&str]| prefixes.iter().any(|p| path.starts_with(p));
        FileClass {
            is_test_code,
            d001: starts(&RESULT_AFFECTING),
            d002: path != "crates/lineage/src/rng.rs",
            // The total-order wrapper itself is the one sanctioned home
            // for raw float ordering.
            d004: starts(&RESULT_AFFECTING) && path != "crates/core/src/ord.rs",
            p001: starts(&PANIC_GUARDED),
            // Note: `crates/obs` is deliberately NOT exempt — the
            // observability crate times spans exclusively through the
            // `pcqe_core::clock::Clock` trait, so a raw `Instant::now()`
            // there is a bug, not a sanctioned read.
            t001: !path.starts_with("crates/bench/") && path != "crates/core/src/clock.rs",
        }
    }
}

/// Does the file feed query results (the D001/D004 guarded set)? Also
/// the crate set the concurrency layer protects: locks held across calls
/// into it (C004) and shared state escaping into it (C005) both threaten
/// the bit-identical-results contract.
pub fn is_result_affecting(path: &str) -> bool {
    RESULT_AFFECTING.iter().any(|p| path.starts_with(p))
}

/// Run every token-level rule over one source file under the built-in
/// legacy capability table. Convenience wrapper over [`check_tokens`]
/// for callers (and unit tests) that have not lexed yet.
pub fn check_source(path: &str, src: &str, out: &mut Vec<Finding>) {
    let class = FileClass::classify(path);
    if class.is_test_code {
        return;
    }
    let toks = lex(src);
    let skip = test_region_mask(&toks);
    let caps = Capabilities::legacy();
    let mut cap_used = vec![BTreeSet::new(); caps.grants.len()];
    check_tokens(path, &toks, &skip, &caps, &mut cap_used, out);
}

/// Run every token-level rule over one pre-lexed source file. `skip` is
/// the [`test_region_mask`] of `toks`; `caps` is the capability table in
/// force and `cap_used[g]` accumulates which of grant `g`'s capabilities
/// were exercised (the input to rule A003). The caller is responsible
/// for exempting test-code paths ([`FileClass::classify`]).
pub fn check_tokens(
    path: &str,
    toks: &[Token],
    skip: &[bool],
    caps: &Capabilities,
    cap_used: &mut [BTreeSet<Cap>],
    out: &mut Vec<Finding>,
) {
    let class = FileClass::classify(path);
    if class.is_test_code {
        return;
    }
    let emit = |out: &mut Vec<Finding>, rule: Rule, line: u32, message: String| {
        out.push(Finding {
            rule,
            path: path.to_owned(),
            line,
            message,
        });
    };

    for (i, t) in toks.iter().enumerate() {
        if skip[i] {
            continue;
        }

        // D004 (literal form): float-literal equality — `x == 0.5`,
        // `0.5 != y`. `==`/`!=` lex as two punctuation tokens, so the
        // operand and operator are adjacent; compound operators (`<=`,
        // `..=`, `+=`, …) have a different first token and do not match.
        if class.d004 && t.tok == Tok::LitFloat {
            let eq_before = i >= 2
                && toks[i - 1].is_punct('=')
                && (toks[i - 2].is_punct('=') || toks[i - 2].is_punct('!'))
                // `0.5 == 0.75` was already reported at the left operand.
                && !(i >= 3 && toks[i - 3].tok == Tok::LitFloat);
            let eq_after = toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct('=') || n.is_punct('!'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct('='));
            if eq_before || eq_after {
                emit(
                    out,
                    Rule::D004,
                    t.line,
                    "float `==`/`!=` in a result-affecting crate: exact equality on \
                     floats is representation-dependent; compare through \
                     `pcqe_core::ord::OrdF64` or test an explicit tolerance"
                        .to_owned(),
                );
            }
        }

        let Tok::Ident(name) = &t.tok else { continue };
        let name = name.as_str();

        // D001: unordered collections in result-affecting crates.
        if class.d001 && (name == "HashMap" || name == "HashSet") {
            emit(
                out,
                Rule::D001,
                t.line,
                format!(
                    "`{name}` in a result-affecting crate: iteration order is \
                     unspecified; use `BTreeMap`/`BTreeSet` or collect-and-sort \
                     before iterating"
                ),
            );
        }

        // D002: ad-hoc randomness outside the vendored seeded generator.
        if class.d002 && RNG_IDENTS.contains(&name) {
            emit(
                out,
                Rule::D002,
                t.line,
                format!(
                    "`{name}` constructs entropy-dependent state; all randomness \
                     must flow through `pcqe_lineage::rng` with an explicit seed"
                ),
            );
        }

        // D003: raw threading without the `threads` capability. Match
        // `thread` only when it is used as a path segment (`std::thread`,
        // `thread::spawn`, …) so a local named `thread` is not flagged.
        // The rule keeps its historical id in both capability modes; the
        // exemption is now a declared grant, not a hardcoded crate name.
        if name == "thread" && (path_sep_before(toks, i) || path_sep_after(toks, i)) {
            match caps.grant_for(path, Cap::Threads) {
                Some(g) => {
                    cap_used[g].insert(Cap::Threads);
                }
                None => emit(
                    out,
                    Rule::D003,
                    t.line,
                    "`std::thread` without the `threads` capability: all parallelism \
                     must go through the deterministic chunked scheduler (or declare \
                     the capability in lint-capabilities.toml with a reason)"
                        .to_owned(),
                ),
            }
        }

        // D004 (ident forms): float ordering and narrowing must go
        // through the `pcqe_core::ord` wrapper. Confidence math is
        // `f64`-only by design, so a bare `f32` (including `as f32`
        // narrowing) is always a loss of precision in these crates.
        if class.d004 {
            if name == "f32" {
                emit(
                    out,
                    Rule::D004,
                    t.line,
                    "`f32` in a result-affecting crate: confidence math is `f64`-only; \
                     an `f32` (or `as f32` cast) silently loses precision"
                        .to_owned(),
                );
            }
            let dotted = i > 0 && toks[i - 1].is_punct('.');
            let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if dotted && called && (name == "partial_cmp" || name == "total_cmp") {
                emit(
                    out,
                    Rule::D004,
                    t.line,
                    format!(
                        "`.{name}()` in a result-affecting crate: sort/compare through \
                         `pcqe_core::ord::OrdF64` so every float ordering uses the one \
                         total order"
                    ),
                );
            }
        }

        // C001 (legacy) / C002 (manifest): concurrency primitives need a
        // covering capability grant. The same check backs both rules —
        // C001 is now a thin wrapper that runs it against the built-in
        // legacy grant table when the root has no manifest.
        if let Some(cap) = Cap::of_token(name) {
            match caps.grant_for(path, cap) {
                Some(g) => {
                    cap_used[g].insert(cap);
                }
                None if caps.from_manifest => emit(
                    out,
                    Rule::C002,
                    t.line,
                    format!(
                        "`{name}` needs the `{}` capability: the crate has no covering \
                         grant in lint-capabilities.toml; declare one with a reason or \
                         route parallelism through `pcqe-par`",
                        cap.label()
                    ),
                ),
                None => emit(
                    out,
                    Rule::C001,
                    t.line,
                    format!(
                        "`{name}` outside `pcqe-par`/`pcqe-obs`/`core::clock`: shared-state \
                         primitives undermine the deterministic scheduler's containment; \
                         route parallelism through `pcqe-par`"
                    ),
                ),
            }
        }

        // P001: panicking constructs in guarded library code.
        if class.p001 {
            let dotted = i > 0 && toks[i - 1].is_punct('.');
            let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if dotted && called && name == "unwrap" {
                emit(
                    out,
                    Rule::P001,
                    t.line,
                    "`.unwrap()` in guarded library code: return a typed error \
                     instead"
                        .to_owned(),
                );
            }
            // `.expect("…")` — requiring a string-literal argument keeps
            // unrelated methods named `expect` (e.g. the SQL parser's
            // token matcher) out of scope.
            if dotted
                && called
                && name == "expect"
                && toks
                    .get(i + 2)
                    .is_some_and(|n| matches!(n.tok, Tok::LitStr(_)))
            {
                emit(
                    out,
                    Rule::P001,
                    t.line,
                    "`.expect(\"…\")` in guarded library code: return a typed \
                     error instead (or allowlist a provably infallible site)"
                        .to_owned(),
                );
            }
            let banged = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            if banged && matches!(name, "panic" | "todo" | "unimplemented") {
                emit(
                    out,
                    Rule::P001,
                    t.line,
                    format!("`{name}!` in guarded library code: return a typed error instead"),
                );
            }
        }

        // T001: wall-clock reads outside the sanctioned modules.
        if class.t001 {
            if name == "Instant"
                && path_sep_after(toks, i)
                && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
            {
                emit(
                    out,
                    Rule::T001,
                    t.line,
                    "`Instant::now()` outside `crates/bench` and the core clock \
                     module: route timing through `pcqe_core::clock`"
                        .to_owned(),
                );
            }
            if name == "SystemTime" {
                emit(
                    out,
                    Rule::T001,
                    t.line,
                    "`SystemTime` outside `crates/bench`: wall-clock timestamps \
                     are nondeterministic; route timing through `pcqe_core::clock`"
                        .to_owned(),
                );
            }
        }
    }
}

/// Is token `i` preceded by `::` (it is a non-leading path segment)?
fn path_sep_before(toks: &[Token], i: usize) -> bool {
    i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':')
}

/// Is token `i` followed by `::` (it has path segments after it)?
fn path_sep_after(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
}

/// Mark the tokens that belong to `#[cfg(test)]` items (inline test
/// modules and test-only helpers): rules skip them, matching the policy
/// that test code may panic and may use unordered collections. Public so
/// the item layer ([`crate::item`]) skips the same regions.
pub fn test_region_mask(toks: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Scan the attribute body up to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut is_cfg_test = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(w)
                        if w == "cfg"
                            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                            && attr_mentions_test(toks, j + 2) =>
                    {
                        is_cfg_test = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if is_cfg_test {
                // Skip the attribute itself, any further attributes, and
                // the annotated item (to `;` at depth 0 or through the
                // matching brace of its body).
                let end = end_of_item(toks, j);
                for s in skip.iter_mut().take(end).skip(i) {
                    *s = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    skip
}

/// Does the attribute argument list starting at `start` mention the bare
/// predicate `test` (covers `cfg(test)`, `cfg(all(test, …))`, …)?
/// A `not(…)` predicate disqualifies the whole attribute: `#[cfg(not(test))]`
/// guards *live* code, which must stay under the rules (the conservative
/// direction — at worst a genuinely test-only item gets linted).
fn attr_mentions_test(toks: &[Token], start: usize) -> bool {
    let mut depth = 1usize;
    let mut j = start;
    let mut saw_test = false;
    while j < toks.len() && depth > 0 {
        match &toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            Tok::Ident(w) if w == "test" => saw_test = true,
            Tok::Ident(w) if w == "not" => return false,
            _ => {}
        }
        j += 1;
    }
    saw_test
}

/// Find the end (exclusive token index) of the item starting at `start`:
/// consume leading attributes, then scan to a `;` at brace depth 0 or
/// through the first balanced `{ … }` block.
fn end_of_item(toks: &[Token], mut start: usize) -> usize {
    // Further attributes on the same item.
    while start < toks.len()
        && toks[start].is_punct('#')
        && toks.get(start + 1).is_some_and(|t| t.is_punct('['))
    {
        let mut depth = 0usize;
        let mut j = start + 1;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        start = j;
    }
    let mut depth = 0usize;
    let mut j = start;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            Tok::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<(Rule, u32)> {
        let mut out = Vec::new();
        check_source(path, src, &mut out);
        out.into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn d001_flags_hash_collections_in_result_crates_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let hits = findings("crates/algebra/src/exec.rs", src);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|(r, _)| *r == Rule::D001));
        // Outside the result-affecting set: clean.
        assert!(findings("crates/sql/src/parser.rs", src).is_empty());
        assert!(findings("crates/workload/src/gen.rs", src).is_empty());
    }

    #[test]
    fn d001_ignores_comments_strings_and_tests() {
        let src = "// a HashMap comment\nconst S: &str = \"HashMap\";\n#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n  fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(findings("crates/core/src/dnc.rs", src).is_empty());
    }

    #[test]
    fn d002_flags_entropy_idioms() {
        let src = "fn f() { let r = thread_rng(); let s = StdRng::from_entropy(); }";
        let hits = findings("crates/workload/src/gen.rs", src);
        assert_eq!(hits.len(), 3, "{hits:?}");
        // The sanctioned module may define what it likes.
        assert!(findings("crates/lineage/src/rng.rs", src).is_empty());
    }

    #[test]
    fn d003_flags_thread_paths_not_variables() {
        assert_eq!(
            findings("crates/engine/src/database.rs", "use std::thread;"),
            vec![(Rule::D003, 1)]
        );
        assert_eq!(
            findings(
                "crates/storage/src/table.rs",
                "fn f() { thread::spawn(|| {}); }"
            ),
            vec![(Rule::D003, 1)]
        );
        // A local variable named `thread` is fine.
        assert!(findings(
            "crates/storage/src/table.rs",
            "fn f(thread: u32) -> u32 { thread }"
        )
        .is_empty());
        // The scheduler crate is sanctioned.
        assert!(findings("crates/par/src/lib.rs", "use std::thread;").is_empty());
    }

    #[test]
    fn p001_flags_panics_in_guarded_crates() {
        let src = "fn f(x: Option<u32>) -> u32 {\n  let a = x.unwrap();\n  let b = x.expect(\"present\");\n  if a == b { panic!(\"boom\"); }\n  todo!()\n}\n";
        let hits = findings("crates/engine/src/database.rs", src);
        assert_eq!(
            hits,
            vec![
                (Rule::P001, 2),
                (Rule::P001, 3),
                (Rule::P001, 4),
                (Rule::P001, 5)
            ]
        );
        // Algebra is determinism-guarded but not panic-guarded.
        assert!(findings("crates/algebra/src/exec.rs", src).is_empty());
    }

    #[test]
    fn p001_skips_parser_style_expect_methods() {
        // `self.expect(Token::LParen, "…")` takes a non-string first
        // argument: not Option::expect.
        let src = "fn f(&mut self) { self.expect(Token::LParen, \"`(`\"); }";
        assert!(findings("crates/sql/src/parser.rs", src).is_empty());
        // unwrap_or and friends are distinct identifiers.
        let src = "fn g(x: Option<u32>) -> u32 { x.unwrap_or(3) }";
        assert!(findings("crates/sql/src/parser.rs", src).is_empty());
    }

    #[test]
    fn t001_flags_clock_reads_outside_sanctioned_modules() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let hits = findings("crates/core/src/greedy.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(findings("crates/core/src/clock.rs", src).is_empty());
        assert!(findings("crates/bench/src/timing.rs", src).is_empty());
        // `Instant` as a stored type (no `::now`) is fine.
        assert!(findings("crates/core/src/greedy.rs", "struct S { t: Instant }").is_empty());
    }

    #[test]
    fn obs_crate_is_guarded_but_not_clock_exempt() {
        // The observability crate must route timing through
        // `pcqe_core::clock`, so a raw wall-clock read there still fires.
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            findings("crates/obs/src/recorder.rs", src),
            vec![(Rule::T001, 1)]
        );
        // And it is held to the determinism and panic-safety rules.
        assert_eq!(
            findings(
                "crates/obs/src/snapshot.rs",
                "use std::collections::HashMap;"
            ),
            vec![(Rule::D001, 1)]
        );
        assert_eq!(
            findings(
                "crates/obs/src/recorder.rs",
                "fn f(x: Option<u32>) -> u32 { x.unwrap() }"
            ),
            vec![(Rule::P001, 1)]
        );
    }

    #[test]
    fn d004_flags_float_compares_and_orderings() {
        // Literal equality, both directions; one finding per comparison.
        assert_eq!(
            findings(
                "crates/algebra/src/expr.rs",
                "fn f(b: f64) -> bool { b == 0.0 }"
            ),
            vec![(Rule::D004, 1)]
        );
        assert_eq!(
            findings("crates/core/src/x.rs", "fn f(b: f64) -> bool { 0.5 != b }"),
            vec![(Rule::D004, 1)]
        );
        assert_eq!(
            findings("crates/core/src/x.rs", "fn f() -> bool { 0.5 == 0.75 }"),
            vec![(Rule::D004, 1)]
        );
        // Compound operators (`+=`, `<=`, `..=`) are not equality.
        assert!(findings(
            "crates/core/src/x.rs",
            "fn f(mut a: f64) -> bool { a += 0.5; a <= 0.5 }"
        )
        .is_empty());
        // Method forms and `f32` narrowing.
        assert_eq!(
            findings(
                "crates/core/src/greedy.rs",
                "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b); }"
            ),
            vec![(Rule::D004, 1)]
        );
        assert_eq!(
            findings(
                "crates/core/src/greedy.rs",
                "fn f(a: f64, b: f64) { let _ = a.total_cmp(&b); }"
            ),
            vec![(Rule::D004, 1)]
        );
        assert_eq!(
            findings(
                "crates/policy/src/lib.rs",
                "fn f(c: f64) -> f64 { (c as f32) as f64 }"
            ),
            vec![(Rule::D004, 1)]
        );
        // The wrapper module is the sanctioned home; storage is out of
        // scope (`Value` ordering is its own contract); and a trait
        // *definition* of `partial_cmp` is not a call.
        let cmp = "fn f(a: f64, b: f64) { let _ = a.total_cmp(&b); }";
        assert!(findings("crates/core/src/ord.rs", cmp).is_empty());
        assert!(findings("crates/storage/src/value.rs", cmp).is_empty());
        assert!(findings(
            "crates/core/src/x.rs",
            "impl PartialOrd for W { fn partial_cmp(&self, o: &W) -> Option<Ordering> { \
             Some(self.cmp(o)) } }"
        )
        .is_empty());
    }

    #[test]
    fn c001_contains_concurrency_primitives() {
        let src =
            "use std::sync::{Mutex, atomic::AtomicU64};\nfn f() { let _m = Mutex::new(0u32); }\n";
        let hits = findings("crates/engine/src/database.rs", src);
        assert_eq!(
            hits,
            vec![(Rule::C001, 1), (Rule::C001, 1), (Rule::C001, 2)]
        );
        // The sanctioned homes stay silent.
        assert!(findings("crates/par/src/lib.rs", src).is_empty());
        assert!(findings("crates/obs/src/recorder.rs", src).is_empty());
        assert!(findings(
            "crates/core/src/clock.rs",
            "use std::sync::atomic::AtomicU64;"
        )
        .is_empty());
        // Channels are contained too; `Ordering` alone is not a primitive.
        assert_eq!(
            findings("crates/sql/src/parser.rs", "use std::sync::mpsc;"),
            vec![(Rule::C001, 1)]
        );
        assert!(findings("crates/engine/src/database.rs", "use std::cmp::Ordering;").is_empty());
    }

    #[test]
    fn c002_fires_in_manifest_mode_and_grants_mark_usage() {
        use crate::capability::{self, Cap, Capabilities};
        let caps = Capabilities::from_grants(
            capability::parse(
                "[[grant]]\ncrate = \"pcqe-par\"\ncapabilities = [\"locks\"]\nreason = \"r\"\n",
                "f",
            )
            .unwrap(),
        );
        let check = |path: &str, src: &str| {
            let toks = lex(src);
            let skip = test_region_mask(&toks);
            let mut used = vec![BTreeSet::new(); caps.grants.len()];
            let mut out = Vec::new();
            check_tokens(path, &toks, &skip, &caps, &mut used, &mut out);
            (out, used)
        };
        // A covered token is silent and marks the grant as exercised.
        let (out, used) = check("crates/par/src/lib.rs", "use std::sync::Mutex;");
        assert!(out.is_empty(), "{out:?}");
        assert!(used[0].contains(&Cap::Locks));
        // An uncovered capability class in the same crate fires C002 —
        // grants are per-class, not per-crate blanket exemptions.
        let (out, _) = check("crates/par/src/lib.rs", "use std::sync::atomic::AtomicU64;");
        assert_eq!(
            out.iter().map(|f| f.rule).collect::<Vec<_>>(),
            vec![Rule::C002]
        );
        // An ungranted crate fires C002 (not the legacy C001).
        let (out, _) = check("crates/engine/src/db.rs", "use std::sync::Mutex;");
        assert_eq!(
            out.iter().map(|f| f.rule).collect::<Vec<_>>(),
            vec![Rule::C002]
        );
        // Thread tokens keep their historical D003 id in manifest mode.
        let (out, _) = check("crates/engine/src/db.rs", "use std::thread;");
        assert_eq!(
            out.iter().map(|f| f.rule).collect::<Vec<_>>(),
            vec![Rule::D003]
        );
    }

    #[test]
    fn test_paths_are_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(findings("crates/engine/tests/api.rs", src).is_empty());
        assert!(findings("examples/quickstart.rs", src).is_empty());
        assert!(findings("crates/bench/benches/b.rs", "use std::thread;").is_empty());
    }

    #[test]
    fn cfg_test_items_without_braces_are_skipped() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn f() {}\n";
        assert!(findings("crates/core/src/dnc.rs", src).is_empty());
    }

    #[test]
    fn rule_codes_round_trip() {
        for rule in Rule::all() {
            assert_eq!(Rule::parse(rule.code()), Some(rule));
            assert_eq!(
                Rule::parse(rule.code().strip_prefix("PCQE-").unwrap()),
                Some(rule)
            );
        }
        assert_eq!(Rule::parse("X999"), None);
    }
}
