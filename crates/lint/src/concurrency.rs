//! Layer 3 of the analyzer: concurrency-soundness rules over the
//! workspace call graph.
//!
//! Where layer 1 asks *"may this crate use synchronization at all?"*
//! (capability manifests, rules C001/C002/A003), this layer asks *"is
//! the synchronization it does use compatible with deterministic,
//! bit-identical results?"* Three analyses run over the
//! [`CallGraph`](crate::graph::CallGraph), all conservative in the same
//! direction as P002/G001 — name-based resolution can only *add* edges,
//! so a clean verdict is trustworthy and a finding is a site for a human
//! to either fix or allowlist with a reason:
//!
//! * **PCQE-C003 — lock-order cycles.** Every lock-acquisition site
//!   ([`LockSite`](crate::item::LockSite)) contributes to a lock-order
//!   graph: lock `B` acquired (directly, or anywhere down the call
//!   graph) after lock `A` in the same body draws the edge `A → B`. An
//!   edge on a cycle is a deadlock risk, reported with a deterministic
//!   witness: the call path from the holder to the second acquisition
//!   plus both lock sites. Locks are identified by receiver *name*
//!   (global, type-blind) — aliasing merges distinct locks into one
//!   node, which only adds edges, never hides a cycle. There is no
//!   release tracking: a guard is assumed held from its acquisition to
//!   the end of the body (drops and scopes would need type information),
//!   again the over-approximating direction.
//! * **PCQE-C004 — lock held across a result-affecting boundary.** A
//!   *path* call (`pcqe_engine::step(…)`, not `.push(…)`) into another
//!   crate's result-affecting code while a lock may be held couples
//!   solver latency to lock hold time and invites order-dependent
//!   timing. Method calls are deliberately excluded here: the
//!   every-same-named-method over-approximation would flag every
//!   `.push` under a lock, drowning the signal (C003 keeps method
//!   resolution because a spurious *lock-order* edge still needs a
//!   second real lock to fire).
//! * **PCQE-C005 — shared-state escape.** A `pub fn` returning
//!   `Arc`-wrapped interior mutability, or an interior-mutable
//!   `static`, inside a capability-granted crate is a *provider*; a
//!   function in the result-affecting set of a *different*, ungranted
//!   crate that calls the provider (or names the static) imports shared
//!   mutable state across the containment boundary the manifest was
//!   supposed to draw.
//! * **PCQE-C006 — weakly-ordered reads on the release path.** A
//!   function reachable from the `Database` query entry points that
//!   both constructs `ReleasedTuple`s and performs a
//!   `Ordering::Relaxed`/`Acquire` atomic load lets a racy read feed
//!   released rows — the bit-identity contract needs `SeqCst` (or the
//!   read hoisted off the release path). Reuses the G001 entry-point
//!   roots, but runs the BFS *through* the policy gate: gating filters
//!   rows, it does not serialize memory.

use crate::capability::{Cap, Capabilities};
use crate::graph::{query_entry_roots, witness_path, CallGraph, RELEASED_TYPE};
use crate::item::CallKind;
use crate::rules::{is_result_affecting, Finding, Rule};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Deterministic witness for one lock-order edge `from → to`.
struct EdgeWitness {
    /// Call chain from the holder to the second acquisition.
    fn_path: String,
    /// `(path, line)` of the `from` lock's acquisition site.
    from_site: (String, u32),
    /// `(path, line)` of the `to` lock's acquisition site.
    to_site: (String, u32),
}

/// Rules C003 and C004: build the lock-order graph and flag cyclic
/// edges and locks held across result-affecting crate boundaries.
pub fn lock_order(graph: &CallGraph, out: &mut Vec<Finding>) {
    let n = graph.fns.len();

    // Reverse call edges, for the per-lock "can this fn reach an
    // acquisition?" sweeps below.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, outs) in graph.edges.iter().enumerate() {
        for &v in outs {
            rev[v].push(u);
        }
    }

    // Every distinct lock name, in deterministic order.
    let lock_names: BTreeSet<&str> = graph
        .fns
        .iter()
        .flat_map(|f| f.locks.iter().map(|l| l.name.as_str()))
        .collect();

    // For each lock name: which fns may acquire it (directly or via a
    // callee), and a `next` pointer toward the acquiring fn so witness
    // paths are reconstructible. Seeded in node order over sorted
    // reverse-adjacency, so the pointers are deterministic.
    let mut may_acquire: BTreeMap<&str, (Vec<bool>, Vec<usize>)> = BTreeMap::new();
    for &name in &lock_names {
        let mut reach = vec![false; n];
        let mut next = vec![usize::MAX; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, node) in graph.fns.iter().enumerate() {
            if node.locks.iter().any(|l| l.name == name) {
                reach[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(v) = queue.pop_front() {
            for &u in &rev[v] {
                if !reach[u] {
                    reach[u] = true;
                    next[u] = v;
                    queue.push_back(u);
                }
            }
        }
        may_acquire.insert(name, (reach, next));
    }

    // --- Build the lock-order edges, first witness wins ---------------
    let mut order: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();
    let mut held_across: BTreeSet<(String, u32, String, String)> = BTreeSet::new();
    for (i, node) in graph.fns.iter().enumerate() {
        for a in &node.locks {
            // Direct: a second acquisition later in the same body.
            for b in &node.locks {
                if b.pos > a.pos {
                    order
                        .entry((a.name.clone(), b.name.clone()))
                        .or_insert_with(|| EdgeWitness {
                            fn_path: node.qualified(),
                            from_site: (node.path.clone(), a.line),
                            to_site: (node.path.clone(), b.line),
                        });
                }
            }
            // Interprocedural: a call after the acquisition whose target
            // may (transitively) acquire another lock.
            for call in &graph.calls[i] {
                if call.pos <= a.pos {
                    continue;
                }
                for &t in &call.targets {
                    for &name in &lock_names {
                        let (reach, next) = &may_acquire[name];
                        if !reach[t] {
                            continue;
                        }
                        order
                            .entry((a.name.clone(), name.to_owned()))
                            .or_insert_with(|| {
                                // Walk the `next` chain to the acquiring fn.
                                let mut chain = vec![node.qualified()];
                                let mut cur = t;
                                chain.push(graph.fns[cur].qualified());
                                while next[cur] != usize::MAX {
                                    cur = next[cur];
                                    chain.push(graph.fns[cur].qualified());
                                }
                                let site = graph.fns[cur]
                                    .locks
                                    .iter()
                                    .find(|l| l.name == name)
                                    .expect("chain ends at a direct acquirer");
                                EdgeWitness {
                                    fn_path: chain.join(" → "),
                                    from_site: (node.path.clone(), a.line),
                                    to_site: (graph.fns[cur].path.clone(), site.line),
                                }
                            });
                    }
                    // C004: the same "call while held" sweep, for path
                    // calls into another crate's result-affecting code.
                    if call.kind == CallKind::Path {
                        let target = &graph.fns[t];
                        if target.crate_name != node.crate_name
                            && is_result_affecting(&target.path)
                            && held_across.insert((
                                node.path.clone(),
                                call.line,
                                a.name.clone(),
                                target.crate_name.clone(),
                            ))
                        {
                            out.push(Finding {
                                rule: Rule::C004,
                                path: node.path.clone(),
                                line: call.line,
                                message: format!(
                                    "`{}` calls result-affecting `{}` while lock `{}` \
                                     (taken at line {}) may still be held: drop the guard \
                                     before crossing the crate boundary, or move the work \
                                     out of the critical section",
                                    node.qualified(),
                                    target.qualified(),
                                    a.name,
                                    a.line
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // --- Cycle detection: an edge is a deadlock risk iff its head can
    // reach its tail back through the lock-order graph. ---------------
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in order.keys() {
        adj.entry(from.as_str()).or_default().insert(to.as_str());
    }
    for ((from, to), wit) in &order {
        let cyclic = from == to || reaches(&adj, to, from);
        if !cyclic {
            continue;
        }
        let message = if from == to {
            format!(
                "lock `{from}` re-acquired while already held ({}; first taken at {}:{}): \
                 `std::sync` locks are not reentrant — this self-deadlocks",
                wit.fn_path, wit.from_site.0, wit.from_site.1
            )
        } else {
            format!(
                "lock `{to}` acquired while `{from}` is held ({}; `{from}` at {}:{}, \
                 `{to}` at {}:{}), and the reverse order also occurs — a lock-order \
                 cycle `{from} → {to} → … → {from}`: impose one global acquisition order",
                wit.fn_path, wit.from_site.0, wit.from_site.1, wit.to_site.0, wit.to_site.1
            )
        };
        out.push(Finding {
            rule: Rule::C003,
            path: wit.to_site.0.clone(),
            line: wit.to_site.1,
            message,
        });
    }
}

/// Can `from` reach `to` in the lock-order graph?
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    seen.insert(from);
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        if u == to {
            return true;
        }
        if let Some(outs) = adj.get(u) {
            for &v in outs {
                if seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
    }
    false
}

/// Rule C005: interior-mutable shared state escaping a
/// capability-granted crate into the result-affecting set.
pub fn escapes(graph: &CallGraph, caps: &Capabilities, out: &mut Vec<Finding>) {
    // Providers: public fns handing out `Arc`-shared interior
    // mutability, and interior-mutable statics — in granted files only
    // (ungranted uses are already C001/C002 at the token layer).
    let providers: BTreeMap<usize, Cap> = graph
        .fns
        .iter()
        .enumerate()
        .filter_map(|(i, f)| {
            let cap = f.ret_carries?;
            (f.is_public && caps.grant_for(&f.path, cap).is_some()).then_some((i, cap))
        })
        .collect();
    let statics: Vec<usize> = graph
        .statics
        .iter()
        .enumerate()
        .filter(|(_, s)| caps.grant_for(&s.path, s.carries).is_some())
        .map(|(i, _)| i)
        .collect();

    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for (i, node) in graph.fns.iter().enumerate() {
        if !is_result_affecting(&node.path) {
            continue;
        }
        // Calls into a provider: report at the call site.
        for call in &graph.calls[i] {
            for &t in &call.targets {
                let Some(&cap) = providers.get(&t) else {
                    continue;
                };
                let p = &graph.fns[t];
                if p.crate_name == node.crate_name
                    || caps.grant_for(&node.path, cap).is_some()
                    || !seen.insert((node.path.clone(), call.line, p.name.clone()))
                {
                    continue;
                }
                out.push(Finding {
                    rule: Rule::C005,
                    path: node.path.clone(),
                    line: call.line,
                    message: format!(
                        "`{}` obtains `Arc`-shared interior-mutable state ({}) from \
                         `{}`: shared state must not escape capability-granted \
                         `{}` into the result-affecting set — pass an immutable \
                         snapshot across the boundary instead",
                        node.qualified(),
                        cap.label(),
                        p.qualified(),
                        p.crate_name
                    ),
                });
            }
        }
        // Mentions of an escaping static: report at the fn.
        for &si in &statics {
            let s = &graph.statics[si];
            if s.crate_name == node.crate_name
                || caps.grant_for(&node.path, s.carries).is_some()
                || !node.mentions.contains(&s.name)
                || !seen.insert((node.path.clone(), node.line, s.name.clone()))
            {
                continue;
            }
            out.push(Finding {
                rule: Rule::C005,
                path: node.path.clone(),
                line: node.line,
                message: format!(
                    "`{}` touches interior-mutable static `{}` ({}, declared at {}:{}): \
                     shared state must not escape capability-granted `{}` into the \
                     result-affecting set",
                    node.qualified(),
                    s.name,
                    s.carries.label(),
                    s.path,
                    s.line,
                    s.crate_name,
                ),
            });
        }
    }
}

/// Rule C006: weakly-ordered atomic loads in functions that construct
/// `ReleasedTuple`s on a query path. Unlike G001 the BFS does *not*
/// stop at the policy gate — gating filters rows, it does not serialize
/// memory, so a racy read below the gate still breaks bit-identity.
pub fn relaxed_reads(graph: &CallGraph, out: &mut Vec<Finding>) {
    let n = graph.fns.len();
    let mut pred: Vec<usize> = vec![usize::MAX; n];
    let mut reached = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for i in query_entry_roots(graph) {
        reached[i] = true;
        queue.push_back(i);
    }
    while let Some(u) = queue.pop_front() {
        for &v in &graph.edges[u] {
            if !reached[v] {
                reached[v] = true;
                pred[v] = u;
                queue.push_back(v);
            }
        }
    }

    for (i, node) in graph.fns.iter().enumerate() {
        if !reached[i] || node.loads.is_empty() || !node.mentions.contains(RELEASED_TYPE) {
            continue;
        }
        let witness = witness_path(graph, &pred, i);
        for load in &node.loads {
            out.push(Finding {
                rule: Rule::C006,
                path: node.path.clone(),
                line: load.line,
                message: format!(
                    "`Ordering::{}` atomic load feeds a `{RELEASED_TYPE}` construction \
                     on the query path ({witness}): use `SeqCst` — or hoist the read off \
                     the release path — to keep released rows bit-identical",
                    load.ordering
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::Grant;
    use crate::item::collect;
    use crate::item::FileItems;
    use crate::lexer::lex;
    use crate::rules::test_region_mask;

    fn file(path: &str, src: &str) -> FileItems {
        let toks = lex(src);
        let mask = test_region_mask(&toks);
        collect(path, &toks, &mask)
    }

    fn rules_of(out: &[Finding]) -> Vec<Rule> {
        out.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn c003_two_lock_cycle_reported_with_witness_both_directions() {
        let files = vec![file(
            "crates/par/src/cycle.rs",
            "pub fn ab(left: &std::sync::Mutex<u32>, right: &std::sync::Mutex<u32>) {\n\
               let l = left.lock();\n\
               let r = right.lock();\n\
             }\n\
             pub fn ba(left: &std::sync::Mutex<u32>, right: &std::sync::Mutex<u32>) {\n\
               let r = right.lock();\n\
               let l = left.lock();\n\
             }\n",
        )];
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        lock_order(&g, &mut out);
        assert_eq!(rules_of(&out), vec![Rule::C003, Rule::C003], "{out:#?}");
        // Edge left→right witnessed in `ab`, right→left in `ba` — and
        // witnesses name the fn and both sites.
        assert!(out.iter().any(|f| f.line == 3
            && f.message.contains("pcqe_par::ab")
            && f.message.contains("`left` at crates/par/src/cycle.rs:2")));
        assert!(out.iter().any(|f| f.line == 7
            && f.message.contains("pcqe_par::ba")
            && f.message.contains("`right` at crates/par/src/cycle.rs:6")));
    }

    #[test]
    fn c003_interprocedural_cycle_and_clean_hierarchy() {
        // `outer_then_inner` holds `left` and calls a helper that takes
        // `right`; another fn does the reverse — a cycle through one
        // call edge. The hierarchical twin always takes `outer` before
        // `inner` and stays clean.
        let cyclic = vec![file(
            "crates/par/src/cycle.rs",
            "pub fn a(left: &M, right: &M) { let g = left.lock(); take_right(right); }\n\
             fn take_right(right: &M) { let g = right.lock(); }\n\
             pub fn b(left: &M, right: &M) { let g = right.lock(); let h = left.lock(); }\n",
        )];
        let g = CallGraph::build(&cyclic);
        let mut out = Vec::new();
        lock_order(&g, &mut out);
        assert_eq!(rules_of(&out), vec![Rule::C003, Rule::C003], "{out:#?}");
        assert!(
            out.iter()
                .any(|f| f.message.contains("pcqe_par::a → pcqe_par::take_right")),
            "interprocedural witness missing: {out:#?}"
        );

        let clean = vec![file(
            "crates/par/src/hier.rs",
            "pub fn a(outer: &M, inner: &M) { let g = outer.lock(); let h = inner.lock(); }\n\
             pub fn b(outer: &M, inner: &M) { let g = outer.lock(); let h = inner.lock(); }\n",
        )];
        let g = CallGraph::build(&clean);
        let mut out = Vec::new();
        lock_order(&g, &mut out);
        assert!(out.is_empty(), "hierarchical order is acyclic: {out:#?}");
    }

    #[test]
    fn c003_self_reacquire_is_a_self_deadlock() {
        let files = vec![file(
            "crates/par/src/re.rs",
            "pub fn twice(m: &std::sync::Mutex<u32>) { let a = m.lock(); let b = m.lock(); }\n",
        )];
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        lock_order(&g, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::C003);
        assert!(out[0].message.contains("re-acquired while already held"));
    }

    #[test]
    fn c004_path_call_into_result_affecting_crate_while_held() {
        let files = vec![
            file(
                "crates/par/src/held.rs",
                "pub fn bad(m: &M) { let g = m.lock(); pcqe_engine::step(); }\n\
                 pub fn fine(m: &M) { pcqe_engine::step(); let g = m.lock(); }\n",
            ),
            file("crates/engine/src/api.rs", "pub fn step() {}\n"),
        ];
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        lock_order(&g, &mut out);
        let c004: Vec<&Finding> = out.iter().filter(|f| f.rule == Rule::C004).collect();
        assert_eq!(c004.len(), 1, "{out:#?}");
        assert_eq!(c004[0].path, "crates/par/src/held.rs");
        assert_eq!(c004[0].line, 1);
        assert!(c004[0].message.contains("pcqe_engine::step"));
        assert!(c004[0].message.contains("lock `m`"));
    }

    #[test]
    fn c005_arc_provider_and_static_escape_into_result_set() {
        let files = vec![
            file(
                "crates/par/src/share.rs",
                "pub static SHARED: Mutex<u64> = Mutex::new(0);\n\
                 pub fn handle() -> Arc<Mutex<Vec<u64>>> { todo() }\n",
            ),
            file(
                "crates/engine/src/api.rs",
                "pub fn grab() { let h = pcqe_par::handle(); }\n\
                 pub fn poke() { let v = SHARED; }\n",
            ),
        ];
        let caps = Capabilities::from_grants(vec![Grant {
            crate_name: "pcqe-par".to_owned(),
            scope: None,
            caps: [Cap::Locks].into_iter().collect(),
            reason: "test".to_owned(),
            declared_at: 1,
        }]);
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        escapes(&g, &caps, &mut out);
        assert_eq!(rules_of(&out), vec![Rule::C005, Rule::C005], "{out:#?}");
        assert!(out.iter().any(|f| f.line == 1
            && f.message.contains("pcqe_par::handle")
            && f.message.contains("locks")));
        assert!(out
            .iter()
            .any(|f| f.line == 2 && f.message.contains("static `SHARED`")));

        // The same consumers inside a granted crate are fine.
        let wide = Capabilities::from_grants(vec![
            Grant {
                crate_name: "pcqe-par".to_owned(),
                scope: None,
                caps: [Cap::Locks].into_iter().collect(),
                reason: "test".to_owned(),
                declared_at: 1,
            },
            Grant {
                crate_name: "pcqe-engine".to_owned(),
                scope: None,
                caps: [Cap::Locks].into_iter().collect(),
                reason: "test".to_owned(),
                declared_at: 2,
            },
        ]);
        let mut out = Vec::new();
        escapes(&g, &wide, &mut out);
        assert!(out.is_empty(), "granted consumer is allowed: {out:#?}");
    }

    #[test]
    fn c006_relaxed_load_feeding_released_tuple_on_query_path() {
        let files = vec![file(
            "crates/engine/src/database.rs",
            "pub struct Database;\n\
             impl Database {\n\
               pub fn query(&self) -> u64 { emit() }\n\
             }\n\
             fn emit() -> u64 {\n\
               let seq = FLAG.load(Ordering::Relaxed);\n\
               let t = ReleasedTuple { id: seq };\n\
               t.id\n\
             }\n\
             fn off_path() -> u64 { FLAG.load(Ordering::Relaxed) }\n",
        )];
        let g = CallGraph::build(&files);
        let mut out = Vec::new();
        relaxed_reads(&g, &mut out);
        // Only `emit` fires: `off_path` is unreachable from the entry
        // points, and reachable fns without ReleasedTuple are exempt.
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, Rule::C006);
        assert_eq!(out[0].line, 6);
        assert!(out[0]
            .message
            .contains("Database::query → pcqe_engine::emit"));
        assert!(out[0].message.contains("Ordering::Relaxed"));
    }
}
