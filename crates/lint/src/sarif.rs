//! Byte-stable SARIF 2.1.0 export of the analysis.
//!
//! SARIF (Static Analysis Results Interchange Format) is what CI
//! annotators and editors ingest; emitting it makes every PCQE finding
//! navigable in a code-review UI without a custom plugin. Like the JSON
//! report the document is written by hand — no serde, registry-free —
//! and is fully deterministic: findings arrive pre-sorted, rules follow
//! [`Rule::all`] order, and the only maps involved are `BTreeMap`s.
//!
//! The subset emitted: one `run` with a `tool.driver` listing every
//! rule (id + short description), one `result` per unsuppressed finding
//! (ruleId, level, message, physical location), and — for the dataflow
//! findings that carry a taint witness — a `codeFlows` entry whose
//! thread-flow locations walk the taint path from source function to
//! sink site. `pcqe-obs-validate --schema sarif` checks the shape and
//! gates per-ruleId result counts against a checked-in baseline.

use crate::rules::{Rule, Severity};
use crate::Analysis;

/// The SARIF 2.1.0 schema URI embedded in the export.
pub const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Render the analysis as a SARIF 2.1.0 document.
pub fn sarif(analysis: &Analysis) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"$schema\": \"{SCHEMA}\",\n"));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"pcqe-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/pcqe-lint\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in Rule::all().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            rule.code(),
            escape(rule.summary())
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match f.rule.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        out.push_str("\n        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", f.rule.code()));
        out.push_str(&format!("          \"level\": \"{level}\",\n"));
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            escape(&f.message)
        ));
        out.push_str("          \"locations\": [");
        out.push_str(&location(&f.path, f.line, 12));
        out.push(']');
        let key = (f.path.clone(), f.line, f.rule.code().to_owned());
        if let Some(hops) = analysis.witnesses.get(&key) {
            out.push_str(",\n          \"codeFlows\": [\n");
            out.push_str("            {\"threadFlows\": [{\"locations\": [");
            for (j, hop) in hops.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n              {\"location\": ");
                out.push_str(&format!(
                    "{{\"message\": {{\"text\": \"{}\"}}, \"physicalLocation\": \
                     {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
                     \"region\": {{\"startLine\": {}}}}}}}",
                    escape(&hop.name),
                    escape(&hop.path),
                    hop.line
                ));
                out.push('}');
            }
            out.push_str("\n            ]}]}\n          ]");
        }
        out.push_str("\n        }");
    }
    if !analysis.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// Render one SARIF location object, newline-prefixed at `indent`.
fn location(path: &str, line: u32, indent: usize) -> String {
    format!(
        "\n{}{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
         \"region\": {{\"startLine\": {line}}}}}}}",
        " ".repeat(indent),
        escape(path)
    )
}

/// Minimal JSON string escaping: quotes, backslashes, control chars.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowHop, Witnesses};
    use crate::rules::Finding;

    fn sample() -> Analysis {
        let mut witnesses = Witnesses::new();
        witnesses.insert(
            (
                "crates/policy/src/x.rs".to_owned(),
                9,
                "PCQE-F002".to_owned(),
            ),
            vec![
                FlowHop {
                    name: "pcqe_policy::top".into(),
                    path: "crates/policy/src/a.rs".into(),
                    line: 1,
                },
                FlowHop {
                    name: "pcqe_policy::leak".into(),
                    path: "crates/policy/src/x.rs".into(),
                    line: 9,
                },
            ],
        );
        Analysis {
            findings: vec![
                Finding {
                    rule: Rule::D001,
                    path: "crates/core/src/x.rs".into(),
                    line: 3,
                    message: "a \"quoted\" construct".into(),
                },
                Finding {
                    rule: Rule::F002,
                    path: "crates/policy/src/x.rs".into(),
                    line: 9,
                    message: "β leaks".into(),
                },
            ],
            suppressed: Vec::new(),
            files_scanned: 2,
            manifests_scanned: 1,
            witnesses,
        }
    }

    #[test]
    fn emits_schema_driver_and_every_rule() {
        let text = sarif(&sample());
        assert!(text.contains("\"version\": \"2.1.0\""));
        assert!(text.contains(SCHEMA));
        assert!(text.contains("\"name\": \"pcqe-lint\""));
        for rule in Rule::all() {
            assert!(
                text.contains(&format!("\"id\": \"{}\"", rule.code())),
                "driver must list {}",
                rule.code()
            );
        }
    }

    #[test]
    fn results_carry_locations_and_witnesses_become_code_flows() {
        let text = sarif(&sample());
        assert!(text.contains("\"ruleId\": \"PCQE-D001\""));
        assert!(text.contains("a \\\"quoted\\\" construct"));
        assert!(text.contains("\"uri\": \"crates/core/src/x.rs\""));
        assert!(text.contains("\"startLine\": 3"));
        // The F002 finding has a witness → a codeFlows entry with one
        // location per hop; the D001 finding has none.
        assert!(text.contains("\"codeFlows\""));
        assert!(text.contains("pcqe_policy::top"));
        assert_eq!(text.matches("\"codeFlows\"").count(), 1);
    }

    #[test]
    fn byte_stable_across_renders_and_valid_shape_when_empty() {
        let a = sample();
        assert_eq!(sarif(&a), sarif(&a));
        let empty = Analysis {
            findings: Vec::new(),
            suppressed: Vec::new(),
            files_scanned: 0,
            manifests_scanned: 0,
            witnesses: Witnesses::new(),
        };
        let text = sarif(&empty);
        assert!(text.contains("\"results\": []"));
    }
}
