//! `lint-flows.toml`: declared taint sources, extra sinks, and
//! sanctioned disclosure channels for the layer-4 dataflow analysis
//! ([`crate::flow`]).
//!
//! The confidentiality rules need to know *what is secret* and *where
//! disclosure is designed-in* — neither is derivable from tokens alone.
//! Following the capability-manifest pattern (PR 7), both are checked-in
//! declarations rather than analyzer hardcode:
//!
//! * `[[source]]` — a taint kind (`suppressed` withheld-tuple data,
//!   `policy` β/θ thresholds, `confidence` pre-gate scores) with the
//!   identifier `names` that carry it and the `functions` whose return
//!   values produce it;
//! * `[[sink]]` — *extra* sink functions joining the built-in structural
//!   classes (`error` constructors/panic payloads, `trace` = `pcqe-obs`
//!   entry points, `shell` = print-family output);
//! * `[[sanction]]` — a designed disclosure: findings of `rule` in
//!   `path` (optionally narrowed to one `sink` callee/macro name) are
//!   recorded as suppressed-with-reason instead of failing the gate.
//!   The audit log and `Decision` records are the canonical examples.
//!
//! Malformed manifests are hard [`parse`] errors, like the capability
//! manifest. Reason *hygiene* follows the allowlist instead: a blank
//! reason, a reason citing a stale `PCQE-*` id, or a sanction naming an
//! unknown rule parses fine and is then reported as **PCQE-F005** — and
//! a sanction nothing exercises is **PCQE-F004** (see [`crate::flow`]).
//!
//! Without a `lint-flows.toml` at the scan root the layer is inert: no
//! declared sources means nothing is tainted, so fixture trees that
//! predate the dataflow layer keep their findings unchanged.

use crate::rules::{Finding, Rule};
use std::collections::BTreeSet;

/// Name of the flow manifest looked up at the scan root.
pub const DEFAULT_FLOWS: &str = "lint-flows.toml";

/// What kind of secret a source introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// Withheld-tuple data: the failing side of `evaluate_results`.
    Suppressed,
    /// β/θ policy thresholds from `pcqe-policy`.
    Policy,
    /// Raw pre-gate confidence values.
    Confidence,
}

impl TaintKind {
    /// The manifest spelling.
    pub fn label(self) -> &'static str {
        match self {
            TaintKind::Suppressed => "suppressed",
            TaintKind::Policy => "policy",
            TaintKind::Confidence => "confidence",
        }
    }

    /// Parse a manifest spelling.
    pub fn parse(s: &str) -> Option<TaintKind> {
        match s {
            "suppressed" => Some(TaintKind::Suppressed),
            "policy" => Some(TaintKind::Policy),
            "confidence" => Some(TaintKind::Confidence),
            _ => None,
        }
    }

    /// All kinds, in manifest/report order.
    pub fn all() -> [TaintKind; 3] {
        [
            TaintKind::Suppressed,
            TaintKind::Policy,
            TaintKind::Confidence,
        ]
    }
}

/// A sink class an extra `[[sink]]` declaration can join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SinkKind {
    /// Typed-error constructors, panic payloads, `Display`/`Debug` impls.
    Error,
    /// `pcqe-obs` trace/metrics/export entry points.
    Trace,
    /// Shell/CLI output (print-family macros).
    Shell,
}

impl SinkKind {
    /// The manifest spelling.
    pub fn label(self) -> &'static str {
        match self {
            SinkKind::Error => "error",
            SinkKind::Trace => "trace",
            SinkKind::Shell => "shell",
        }
    }

    /// Parse a manifest spelling.
    pub fn parse(s: &str) -> Option<SinkKind> {
        match s {
            "error" => Some(SinkKind::Error),
            "trace" => Some(SinkKind::Trace),
            "shell" => Some(SinkKind::Shell),
            _ => None,
        }
    }
}

/// One parsed `[[source]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpec {
    /// The taint kind the source introduces.
    pub kind: TaintKind,
    /// Identifier names that carry this taint wherever they appear
    /// (parameters, bindings, format captures).
    pub names: BTreeSet<String>,
    /// Functions whose *return value* carries this taint.
    pub functions: BTreeSet<String>,
    /// Why these names/functions are secret. Blank → PCQE-F005.
    pub reason: String,
    /// Line of the `[[source]]` header in the manifest.
    pub declared_at: u32,
}

/// One parsed `[[sink]]` entry: extra sink callees beyond the built-in
/// structural classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkSpec {
    /// Which sink class the functions join.
    pub kind: SinkKind,
    /// Callee names (last path segment) treated as sinks of that class.
    pub functions: BTreeSet<String>,
    /// Why these are disclosure points. Blank → PCQE-F005.
    pub reason: String,
    /// Line of the `[[sink]]` header in the manifest.
    pub declared_at: u32,
}

/// One parsed `[[sanction]]` entry: a designed disclosure channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sanction {
    /// Rule id the sanction covers (e.g. `PCQE-F002`). Unknown ids are
    /// kept as written and reported by PCQE-F005.
    pub rule: String,
    /// File the sanction covers (workspace-relative, `/`-separated).
    pub path: String,
    /// Optional callee/macro name narrowing the sanction to one sink
    /// (e.g. `decision`, `fmt`).
    pub sink: Option<String>,
    /// Why the disclosure is designed-in. Blank → PCQE-F005.
    pub reason: String,
    /// Line of the `[[sanction]]` header in the manifest.
    pub declared_at: u32,
}

impl Sanction {
    /// Does this sanction cover a finding of `rule` at `path` flowing
    /// into sink callee `sink_name`?
    pub fn covers(&self, rule: Rule, path: &str, sink_name: &str) -> bool {
        self.rule == rule.code()
            && self.path == path
            && self.sink.as_deref().is_none_or(|s| s == sink_name)
    }
}

/// The flow declarations in force for one analysis run.
#[derive(Debug, Clone, Default)]
pub struct FlowSpec {
    /// Sources in manifest order.
    pub sources: Vec<SourceSpec>,
    /// Extra sinks in manifest order.
    pub sinks: Vec<SinkSpec>,
    /// Sanctioned channels in manifest order.
    pub sanctions: Vec<Sanction>,
    /// `true` when loaded from a `lint-flows.toml`. `false` means no
    /// manifest: the dataflow layer has no sources and stays inert.
    pub from_manifest: bool,
}

impl FlowSpec {
    /// Declared source names for one taint kind.
    pub fn names_of(&self, kind: TaintKind) -> BTreeSet<&str> {
        self.sources
            .iter()
            .filter(|s| s.kind == kind)
            .flat_map(|s| s.names.iter().map(String::as_str))
            .collect()
    }

    /// Declared source functions for one taint kind.
    pub fn functions_of(&self, kind: TaintKind) -> BTreeSet<&str> {
        self.sources
            .iter()
            .filter(|s| s.kind == kind)
            .flat_map(|s| s.functions.iter().map(String::as_str))
            .collect()
    }

    /// Declared extra sink callees for one sink class.
    pub fn sink_functions_of(&self, kind: SinkKind) -> BTreeSet<&str> {
        self.sinks
            .iter()
            .filter(|s| s.kind == kind)
            .flat_map(|s| s.functions.iter().map(String::as_str))
            .collect()
    }

    /// Reason hygiene — rule **PCQE-F005**, extending the A002
    /// discipline to the flow manifest: every entry carries a non-blank
    /// reason, every `PCQE-*` id cited in a reason exists, and every
    /// sanction names a rule the analyzer knows.
    pub fn hygiene(&self, manifest_name: &str, out: &mut Vec<Finding>) {
        fn check(
            manifest_name: &str,
            out: &mut Vec<Finding>,
            declared_at: u32,
            what: &str,
            reason: &str,
        ) {
            if reason.trim().is_empty() {
                out.push(Finding {
                    rule: Rule::F005,
                    path: manifest_name.to_owned(),
                    line: declared_at,
                    message: format!(
                        "{what} entry has no `reason`; every flow declaration must \
                         say why it is sound"
                    ),
                });
                return;
            }
            for token in reason.split(|c: char| !(c.is_ascii_alphanumeric() || c == '-')) {
                if token.starts_with("PCQE-") && Rule::parse(token).is_none() {
                    out.push(Finding {
                        rule: Rule::F005,
                        path: manifest_name.to_owned(),
                        line: declared_at,
                        message: format!(
                            "{what} reason cites unknown rule id `{token}`: fix the \
                             id or drop the citation"
                        ),
                    });
                }
            }
        }
        for s in &self.sources {
            check(manifest_name, out, s.declared_at, "`[[source]]`", &s.reason);
        }
        for s in &self.sinks {
            check(manifest_name, out, s.declared_at, "`[[sink]]`", &s.reason);
        }
        for s in &self.sanctions {
            check(
                manifest_name,
                out,
                s.declared_at,
                "`[[sanction]]`",
                &s.reason,
            );
            if Rule::parse(&s.rule).is_none() {
                out.push(Finding {
                    rule: Rule::F005,
                    path: manifest_name.to_owned(),
                    line: s.declared_at,
                    message: format!(
                        "`[[sanction]]` entry sanctions unknown rule id `{}`: the \
                         channel it covered no longer exists under that name",
                        s.rule
                    ),
                });
            }
        }
    }
}

/// Parse a flow manifest. `source_name` labels error messages.
pub fn parse(text: &str, source_name: &str) -> Result<FlowSpec, String> {
    #[derive(PartialEq)]
    enum Table {
        Source,
        Sink,
        Sanction,
    }
    let mut spec = FlowSpec {
        from_manifest: true,
        ..FlowSpec::default()
    };
    let mut current: Option<(Table, Partial)> = None;
    let mut flush = |current: &mut Option<(Table, Partial)>| -> Result<(), String> {
        if let Some((table, p)) = current.take() {
            match table {
                Table::Source => spec.sources.push(p.finish_source(source_name)?),
                Table::Sink => spec.sinks.push(p.finish_sink(source_name)?),
                Table::Sanction => spec.sanctions.push(p.finish_sanction(source_name)?),
            }
        }
        Ok(())
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "[[source]]" => {
                flush(&mut current)?;
                current = Some((Table::Source, Partial::new(lineno)));
                continue;
            }
            "[[sink]]" => {
                flush(&mut current)?;
                current = Some((Table::Sink, Partial::new(lineno)));
                continue;
            }
            "[[sanction]]" => {
                flush(&mut current)?;
                current = Some((Table::Sanction, Partial::new(lineno)));
                continue;
            }
            _ => {}
        }
        if line.starts_with('[') {
            return Err(format!(
                "{source_name}:{lineno}: unexpected table `{line}`; expected \
                 `[[source]]`, `[[sink]]` or `[[sanction]]`"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "{source_name}:{lineno}: expected `key = value`, got `{line}`"
            ));
        };
        let Some((table, p)) = current.as_mut() else {
            return Err(format!(
                "{source_name}:{lineno}: `{}` outside a table",
                key.trim()
            ));
        };
        match (key.trim(), &*table) {
            ("kind", Table::Source | Table::Sink) => {
                p.kind = Some((parse_string(value, source_name, lineno)?, lineno));
            }
            ("names", Table::Source) => {
                p.names = Some(ident_set(value, source_name, lineno)?);
            }
            ("functions", Table::Source | Table::Sink) => {
                p.functions = Some(ident_set(value, source_name, lineno)?);
            }
            ("rule", Table::Sanction) => {
                p.rule = Some(parse_string(value, source_name, lineno)?);
            }
            ("path", Table::Sanction) => {
                p.path = Some(parse_string(value, source_name, lineno)?.replace('\\', "/"));
            }
            ("sink", Table::Sanction) => {
                p.sink = Some(parse_string(value, source_name, lineno)?);
            }
            ("reason", _) => {
                p.reason = Some(parse_string(value, source_name, lineno)?);
            }
            (other, _) => {
                return Err(format!(
                    "{source_name}:{lineno}: unknown or misplaced key `{other}`"
                ));
            }
        }
    }
    flush(&mut current)?;
    Ok(spec)
}

struct Partial {
    declared_at: u32,
    kind: Option<(String, u32)>,
    names: Option<BTreeSet<String>>,
    functions: Option<BTreeSet<String>>,
    rule: Option<String>,
    path: Option<String>,
    sink: Option<String>,
    reason: Option<String>,
}

impl Partial {
    fn new(declared_at: u32) -> Partial {
        Partial {
            declared_at,
            kind: None,
            names: None,
            functions: None,
            rule: None,
            path: None,
            sink: None,
            reason: None,
        }
    }

    /// A blank or absent reason is tolerated here — F005 reports it as a
    /// finding, matching the allowlist's A002 discipline rather than the
    /// capability manifest's hard error.
    fn reason(&mut self) -> String {
        self.reason.take().unwrap_or_default()
    }

    fn finish_source(mut self, source_name: &str) -> Result<SourceSpec, String> {
        let at = self.declared_at;
        let (kind, kind_line) = self
            .kind
            .take()
            .ok_or_else(|| format!("{source_name}:{at}: `[[source]]` entry is missing `kind`"))?;
        let kind = TaintKind::parse(&kind).ok_or_else(|| {
            format!(
                "{source_name}:{kind_line}: unknown taint kind `{kind}` \
                 (expected suppressed/policy/confidence)"
            )
        })?;
        let names = self.names.take().unwrap_or_default();
        let functions = self.functions.take().unwrap_or_default();
        if names.is_empty() && functions.is_empty() {
            return Err(format!(
                "{source_name}:{at}: `[[source]]` entry declares no `names` and no \
                 `functions`; an empty source taints nothing"
            ));
        }
        Ok(SourceSpec {
            kind,
            names,
            functions,
            reason: self.reason(),
            declared_at: at,
        })
    }

    fn finish_sink(mut self, source_name: &str) -> Result<SinkSpec, String> {
        let at = self.declared_at;
        let (kind, kind_line) = self
            .kind
            .take()
            .ok_or_else(|| format!("{source_name}:{at}: `[[sink]]` entry is missing `kind`"))?;
        let kind = SinkKind::parse(&kind).ok_or_else(|| {
            format!(
                "{source_name}:{kind_line}: unknown sink kind `{kind}` \
                 (expected error/trace/shell)"
            )
        })?;
        let functions = self.functions.take().unwrap_or_default();
        if functions.is_empty() {
            return Err(format!(
                "{source_name}:{at}: `[[sink]]` entry declares no `functions`"
            ));
        }
        Ok(SinkSpec {
            kind,
            functions,
            reason: self.reason(),
            declared_at: at,
        })
    }

    fn finish_sanction(mut self, source_name: &str) -> Result<Sanction, String> {
        let at = self.declared_at;
        let missing =
            |k: &str| format!("{source_name}:{at}: `[[sanction]]` entry is missing `{k}`");
        Ok(Sanction {
            rule: self.rule.take().ok_or_else(|| missing("rule"))?,
            path: self.path.take().ok_or_else(|| missing("path"))?,
            sink: self.sink.take(),
            reason: self.reason(),
            declared_at: at,
        })
    }
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a double-quoted TOML string value.
fn parse_string(value: &str, source_name: &str, lineno: u32) -> Result<String, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .ok_or_else(|| {
            format!("{source_name}:{lineno}: expected a double-quoted string, got `{v}`")
        })?;
    if inner.contains('"') {
        return Err(format!(
            "{source_name}:{lineno}: embedded quotes are not supported"
        ));
    }
    Ok(inner.to_owned())
}

/// Parse a `["a", "b"]` array into a deduplicated identifier set.
fn ident_set(value: &str, source_name: &str, lineno: u32) -> Result<BTreeSet<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|rest| rest.strip_suffix(']'))
        .ok_or_else(|| {
            format!("{source_name}:{lineno}: expected a `[\"…\", …]` array, got `{v}`")
        })?;
    let mut out = BTreeSet::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // tolerate a trailing comma
        }
        let name = parse_string(item, source_name, lineno)?;
        if !out.insert(name.clone()) {
            return Err(format!("{source_name}:{lineno}: `{name}` listed twice"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sources_sinks_and_sanctions() {
        let text = "# flow manifest\n\
                    [[source]]\n\
                    kind = \"policy\"\n\
                    names = [\"beta\", \"threshold\"]\n\
                    reason = \"policy internals\"\n\
                    \n\
                    [[source]]\n\
                    kind = \"suppressed\"\n\
                    functions = [\"withheld_tuples\"]\n\
                    reason = \"the failing side of the gate\"\n\
                    \n\
                    [[sink]]\n\
                    kind = \"shell\"\n\
                    functions = [\"emit_diag\"]\n\
                    reason = \"writes to stderr\"\n\
                    \n\
                    [[sanction]]\n\
                    rule = \"PCQE-F002\"\n\
                    path = \"crates/engine/src/audit.rs\"\n\
                    sink = \"fmt\"\n\
                    reason = \"the audit log is the designed channel\"\n";
        let spec = parse(text, "lint-flows.toml").unwrap();
        assert!(spec.from_manifest);
        assert_eq!(spec.sources.len(), 2);
        assert_eq!(spec.sources[0].kind, TaintKind::Policy);
        assert_eq!(spec.sources[0].declared_at, 2);
        assert!(spec.names_of(TaintKind::Policy).contains("beta"));
        assert!(spec
            .functions_of(TaintKind::Suppressed)
            .contains("withheld_tuples"));
        assert!(spec
            .sink_functions_of(SinkKind::Shell)
            .contains("emit_diag"));
        assert_eq!(spec.sanctions.len(), 1);
        assert!(spec.sanctions[0].covers(Rule::F002, "crates/engine/src/audit.rs", "fmt"));
        assert!(!spec.sanctions[0].covers(Rule::F002, "crates/engine/src/audit.rs", "println"));
        assert!(!spec.sanctions[0].covers(Rule::F001, "crates/engine/src/audit.rs", "fmt"));
    }

    #[test]
    fn sanction_without_sink_covers_every_sink_in_the_file() {
        let spec = parse(
            "[[sanction]]\nrule = \"PCQE-F003\"\npath = \"crates/engine/src/database.rs\"\n\
             reason = \"r\"\n",
            "f",
        )
        .unwrap();
        assert!(spec.sanctions[0].covers(Rule::F003, "crates/engine/src/database.rs", "decision"));
        assert!(spec.sanctions[0].covers(Rule::F003, "crates/engine/src/database.rs", "anything"));
    }

    #[test]
    fn rejects_malformed_manifests() {
        // Unknown taint kind / sink kind.
        assert!(parse("[[source]]\nkind = \"secret\"\nnames = [\"x\"]\n", "f").is_err());
        assert!(parse("[[sink]]\nkind = \"socket\"\nfunctions = [\"f\"]\n", "f").is_err());
        // Empty source, sink without functions, sanction missing keys.
        assert!(parse("[[source]]\nkind = \"policy\"\n", "f").is_err());
        assert!(parse("[[sink]]\nkind = \"shell\"\n", "f").is_err());
        assert!(parse("[[sanction]]\nrule = \"PCQE-F001\"\n", "f").is_err());
        // Misplaced keys, unknown table, duplicates.
        assert!(parse("[[sanction]]\nnames = [\"x\"]\n", "f").is_err());
        assert!(parse("[flows]\n", "f").is_err());
        assert!(parse(
            "[[source]]\nkind = \"policy\"\nnames = [\"b\", \"b\"]\n",
            "f"
        )
        .is_err());
        assert!(parse("kind = \"policy\"\n", "f").is_err());
    }

    #[test]
    fn blank_reasons_parse_and_hygiene_reports_them() {
        // Unlike the capability manifest, a missing reason is *not* a
        // parse error: F005 reports it, extending the A002 discipline.
        let spec = parse(
            "[[source]]\nkind = \"policy\"\nnames = [\"beta\"]\n\
             [[sanction]]\nrule = \"PCQE-F999\"\npath = \"x.rs\"\n\
             reason = \"covers PCQE-F998\"\n",
            "lint-flows.toml",
        )
        .unwrap();
        let mut out = Vec::new();
        spec.hygiene("lint-flows.toml", &mut out);
        let msgs: Vec<&str> = out.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(out.len(), 3, "{msgs:?}");
        assert!(out.iter().all(|f| f.rule == Rule::F005));
        assert!(msgs[0].contains("no `reason`"));
        assert!(msgs[1].contains("unknown rule id `PCQE-F998`"));
        assert!(msgs[2].contains("unknown rule id `PCQE-F999`"));
        assert_eq!(out[0].line, 1);
        assert_eq!(out[1].line, 4);
    }
}
