//! Rule H001: hermeticity of the default workspace's manifests.
//!
//! Every dependency entry in the root manifest and each `crates/*`
//! manifest (minus the detached `crates/bench` workspace) must either be
//! spelled with an explicit `path = …` or name a `pcqe-*` sibling crate
//! whose workspace definition resolves to a path dependency. This is the
//! static version of the invariant behind `cargo build --offline`: an
//! empty cargo registry is always sufficient.
//!
//! The check subsumes the awk mirror that used to live in `ci.sh` and the
//! table walk in `tests/hermetic_guard.rs` — one parser, one rule ID.

use crate::rules::{Finding, Rule};

/// Section headers that introduce dependency tables.
fn is_dependency_header(header: &str) -> bool {
    matches!(
        header,
        "[dependencies]"
            | "[dev-dependencies]"
            | "[build-dependencies]"
            | "[workspace.dependencies]"
    ) || (header.starts_with("[target.") && header.ends_with("dependencies]"))
}

/// Check one manifest's text. `path` is the `/`-relative manifest path
/// used in findings.
pub fn check_manifest(path: &str, text: &str, out: &mut Vec<Finding>) {
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = is_dependency_header(line);
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        // `foo.workspace = true` spells the name before the dot.
        let name = name.trim().split('.').next().unwrap_or("").trim();
        if name.is_empty() {
            continue;
        }
        let spec = spec.trim();
        let is_path_dep = spec.contains("path =") || spec.contains("path=");
        let is_workspace_sibling = name.starts_with("pcqe-") || name.starts_with("pcqe_");
        if !is_path_dep && !is_workspace_sibling {
            out.push(Finding {
                rule: Rule::H001,
                path: path.to_owned(),
                line: (idx + 1) as u32,
                message: format!(
                    "dependency `{name}` is not a path dependency; the default \
                     workspace must build offline with an empty registry"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(text: &str) -> Vec<(u32, String)> {
        let mut out = Vec::new();
        check_manifest("Cargo.toml", text, &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let text = "[dependencies]\npcqe-storage.workspace = true\nother = { path = \"../other\" }\n\n[workspace.dependencies]\npcqe-core = { path = \"crates/core\" }\n";
        assert!(findings(text).is_empty());
    }

    #[test]
    fn registry_deps_fail_with_lines() {
        let text = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1\"\n\n[dev-dependencies]\nproptest = { version = \"1\" }\n";
        let hits = findings(text);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 5);
        assert!(hits[0].1.contains("serde"));
        assert_eq!(hits[1].0, 8);
    }

    #[test]
    fn target_specific_tables_are_covered() {
        let text = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        assert_eq!(findings(text).len(), 1);
    }

    #[test]
    fn non_dependency_tables_are_ignored() {
        let text = "[profile.release]\ndebug = \"line-tables-only\"\n[features]\nfast = []\n";
        assert!(findings(text).is_empty());
    }
}
