//! A hand-rolled Rust lexer, just deep enough for invariant scanning.
//!
//! The analyzer needs to see identifiers and punctuation while *not*
//! seeing the insides of comments, strings and char literals — a comment
//! saying "never use `HashMap` here" must not trip rule D001. The token
//! model is deliberately flat (no token trees, no spans beyond line
//! numbers): rules are expressed as small window patterns over the
//! stream, in the same spirit as `crates/sql/src/lexer.rs`.
//!
//! Handled faithfully:
//! - line comments (`//`, `///`, `//!`) and *nested* block comments;
//! - string literals with escapes, byte strings, raw strings `r#"…"#`
//!   with any number of `#`s;
//! - char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`);
//! - raw identifiers (`r#type`);
//! - numeric literals including `0.5` vs. the range `0..5`.
//!
//! Multi-character operators come out as adjacent single-char `Punct`
//! tokens; rules that need `::` match two consecutive `:`s.

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident(String),
    /// A lifetime such as `'a` (name not retained).
    Lifetime,
    /// String or byte-string literal, with its raw body text (between
    /// the quotes, escapes unprocessed). The dataflow layer reads
    /// `format!`-style implicit captures (`"β={threshold}"`) out of it;
    /// every other rule treats the literal as opaque.
    LitStr(String),
    /// Character or byte literal.
    LitChar,
    /// Integer numeric literal.
    LitNum,
    /// Floating-point numeric literal (`0.5`, `1e9`, `2.5f64`). Kept
    /// distinct from [`Tok::LitNum`] so float-determinism rules can match
    /// comparisons against float constants without retaining digits.
    LitFloat,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Is this an identifier equal to `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(t) if t == s)
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Tokenize Rust source. Unknown bytes are skipped rather than reported:
/// the analyzer must never fail on exotic-but-valid source, and a missed
/// token only costs a missed finding on that construct, never a false
/// positive.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.bytes.len() {
            let c = self.bytes[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident_or_prefixed(),
                c if c.is_ascii() => {
                    self.push(Tok::Punct(c as char));
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 outside strings/comments: skip the
                    // whole character.
                    self.i += utf8_len(c);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn push(&mut self, tok: Tok) {
        self.out.push(Token {
            tok,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        // Rust block comments nest.
        let mut depth = 0usize;
        while self.i < self.bytes.len() {
            if self.bytes[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.bytes[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    return;
                }
            } else {
                if self.bytes[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
    }

    /// A `"…"` string starting at `self.i`. Handles `\"` and `\\`.
    fn string(&mut self) {
        let line = self.line;
        self.i += 1;
        self.string_unterminated_tail(line);
    }

    /// A raw string `r"…"` / `r#"…"#` with `hashes` trailing `#`s; the
    /// caller has consumed up to and including the opening quote.
    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        let start = self.i;
        while self.i < self.bytes.len() {
            if self.bytes[self.i] == b'\n' {
                self.line += 1;
            }
            if self.bytes[self.i] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let body = self.src[start..self.i].to_owned();
                    self.i += 1 + hashes;
                    self.out.push(Token {
                        tok: Tok::LitStr(body),
                        line,
                    });
                    return;
                }
            }
            self.i += 1;
        }
        self.out.push(Token {
            tok: Tok::LitStr(self.src[start..self.i.min(self.src.len())].to_owned()),
            line,
        });
    }

    /// `'` begins either a char literal or a lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        match self.peek(1) {
            // Escaped char: definitely a literal `'\…'`.
            Some(b'\\') => {
                self.i += 2; // consume `'\`
                if self.i < self.bytes.len() {
                    // The escaped character itself never closes the
                    // literal — `'\''` escapes a quote.
                    self.i += utf8_len(self.bytes[self.i]);
                }
                while self.i < self.bytes.len() && self.bytes[self.i] != b'\'' {
                    self.i += 1;
                }
                self.i += 1; // closing quote
                self.out.push(Token {
                    tok: Tok::LitChar,
                    line,
                });
            }
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                // Could be `'a'` (char) or `'a` / `'static` (lifetime):
                // scan the identifier, then look for a closing quote.
                let mut j = self.i + 1;
                while j < self.bytes.len()
                    && (self.bytes[j] == b'_' || self.bytes[j].is_ascii_alphanumeric())
                {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.out.push(Token {
                        tok: Tok::LitChar,
                        line,
                    });
                } else {
                    self.i = j;
                    self.out.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                }
            }
            // `'('`, `'∀'`, … — any other char literal.
            Some(c) => {
                let len = if c.is_ascii() { 1 } else { utf8_len(c) };
                self.i += 1 + len;
                if self.peek(0) == Some(b'\'') {
                    self.i += 1;
                }
                self.out.push(Token {
                    tok: Tok::LitChar,
                    line,
                });
            }
            None => self.i += 1,
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.i < self.bytes.len()
            && (self.bytes[self.i].is_ascii_alphanumeric() || self.bytes[self.i] == b'_')
        {
            self.i += 1;
        }
        let mut fractional = false;
        // A fractional part only if `.` is followed by a digit — keeps
        // ranges (`0..n`) and method calls (`1.max(2)`) intact.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            fractional = true;
            self.i += 1;
            while self.i < self.bytes.len()
                && (self.bytes[self.i].is_ascii_alphanumeric() || self.bytes[self.i] == b'_')
            {
                self.i += 1;
            }
        }
        let text = &self.src[start..self.i];
        // Classify: hex/octal/binary literals are integers whatever letters
        // they contain; otherwise a fraction, an exponent, or an `f32`/`f64`
        // suffix makes the literal a float.
        let is_float =
            !(text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b"))
                && (fractional
                    || text.contains(['e', 'E'])
                    || text.ends_with("f32")
                    || text.ends_with("f64"));
        self.out.push(Token {
            tok: if is_float { Tok::LitFloat } else { Tok::LitNum },
            line,
        });
    }

    /// An identifier — or one of the literal prefixes `r"`, `r#"`, `b"`,
    /// `br"`, `b'`, or a raw identifier `r#name`.
    fn ident_or_prefixed(&mut self) {
        let start = self.i;
        let line = self.line;
        // Raw string / raw identifier dispatch on `r` and `br`.
        let c = self.bytes[self.i];
        if c == b'r' || c == b'b' {
            let (prefix_len, allow_raw) = if c == b'b' && self.peek(1) == Some(b'r') {
                (2, true)
            } else if c == b'r' {
                (1, true)
            } else {
                (1, false)
            };
            if c == b'b' && self.peek(1) == Some(b'"') {
                self.i += 2;
                self.string_unterminated_tail(line);
                return;
            }
            if c == b'b' && self.peek(1) == Some(b'\'') {
                // Byte literal b'x'.
                self.i += 1;
                self.char_or_lifetime();
                return;
            }
            if allow_raw {
                // Count hashes after the prefix.
                let mut j = self.i + prefix_len;
                let mut hashes = 0;
                while self.bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'"') {
                    self.i = j + 1;
                    self.raw_string_body(hashes, line);
                    return;
                }
                if c == b'r'
                    && hashes == 1
                    && self
                        .bytes
                        .get(j)
                        .is_some_and(|&b| b == b'_' || b.is_ascii_alphabetic())
                {
                    // Raw identifier r#name: lex the name itself.
                    self.i = j;
                    let word = self.take_ident_text();
                    self.out.push(Token {
                        tok: Tok::Ident(word),
                        line,
                    });
                    return;
                }
            }
        }
        self.i = start;
        let word = self.take_ident_text();
        self.out.push(Token {
            tok: Tok::Ident(word),
            line,
        });
    }

    fn take_ident_text(&mut self) -> String {
        let start = self.i;
        while self.i < self.bytes.len()
            && (self.bytes[self.i] == b'_' || self.bytes[self.i].is_ascii_alphanumeric())
        {
            self.i += 1;
        }
        self.src[start..self.i].to_owned()
    }

    /// Body of a `"…"` string whose opening quote is already consumed.
    fn string_unterminated_tail(&mut self, line: u32) {
        let start = self.i;
        let mut end = self.bytes.len();
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => {
                    // An escaped newline (line continuation) still ends a
                    // physical source line — keep the counter honest.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'"' => {
                    end = self.i;
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let body = self.src[start..end.min(self.i).min(self.src.len())].to_owned();
        self.out.push(Token {
            tok: Tok::LitStr(body),
            line,
        });
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("use std::thread;"),
            vec![
                Tok::Ident("use".into()),
                Tok::Ident("std".into()),
                Tok::Punct(':'),
                Tok::Punct(':'),
                Tok::Ident("thread".into()),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_hide_identifiers() {
        assert_eq!(kinds("// HashMap here\nx"), vec![Tok::Ident("x".into())]);
        assert_eq!(
            kinds("/* outer /* HashMap */ still comment */ y"),
            vec![Tok::Ident("y".into())]
        );
        assert_eq!(
            kinds("/// docs say HashMap\nz"),
            vec![Tok::Ident("z".into())]
        );
    }

    #[test]
    fn strings_hide_identifiers() {
        assert_eq!(
            kinds(r#"let s = "HashMap::new()";"#),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("s".into()),
                Tok::Punct('='),
                Tok::LitStr("HashMap::new()".into()),
                Tok::Punct(';'),
            ]
        );
        assert_eq!(
            kinds("r#\"raw HashMap \"# x"),
            vec![Tok::LitStr("raw HashMap ".into()), Tok::Ident("x".into())]
        );
        assert_eq!(
            kinds("br\"bytes\" b\"b\" q"),
            vec![
                Tok::LitStr("bytes".into()),
                Tok::LitStr("b".into()),
                Tok::Ident("q".into())
            ]
        );
        // Escaped quote does not end the string early.
        assert_eq!(
            kinds(r#""a\"HashMap" t"#),
            vec![Tok::LitStr(r#"a\"HashMap"#.into()), Tok::Ident("t".into())]
        );
    }

    #[test]
    fn chars_vs_lifetimes() {
        assert_eq!(kinds("'a'"), vec![Tok::LitChar]);
        assert_eq!(kinds("'\\''"), vec![Tok::LitChar]);
        // The escaped quote must not be taken for the closing quote:
        // everything after the literal keeps lexing normally.
        assert_eq!(
            kinds("'\\''; x"),
            vec![Tok::LitChar, Tok::Punct(';'), Tok::Ident("x".into())]
        );
        assert_eq!(kinds("b'x'"), vec![Tok::LitChar]);
        assert_eq!(
            kinds("&'a str"),
            vec![Tok::Punct('&'), Tok::Lifetime, Tok::Ident("str".into())]
        );
        assert_eq!(
            kinds("<'static>"),
            vec![Tok::Punct('<'), Tok::Lifetime, Tok::Punct('>')]
        );
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(kinds("0.5"), vec![Tok::LitFloat]);
        assert_eq!(
            kinds("0..5"),
            vec![Tok::LitNum, Tok::Punct('.'), Tok::Punct('.'), Tok::LitNum]
        );
        assert_eq!(
            kinds("1.max(2)"),
            vec![
                Tok::LitNum,
                Tok::Punct('.'),
                Tok::Ident("max".into()),
                Tok::Punct('('),
                Tok::LitNum,
                Tok::Punct(')'),
            ]
        );
        assert_eq!(kinds("0xFF_u8 1e9"), vec![Tok::LitNum, Tok::LitFloat]);
    }

    #[test]
    fn float_literal_classification() {
        assert_eq!(kinds("3f64 1.5e3"), vec![Tok::LitFloat, Tok::LitFloat]);
        // A negative exponent splits at the sign; the mantissa is still
        // recognisably a float, which is all the rules need.
        assert_eq!(
            kinds("2.5e-3"),
            vec![Tok::LitFloat, Tok::Punct('-'), Tok::LitNum]
        );
        // Hex digits include `e`; prefixed literals stay integers.
        assert_eq!(kinds("0xdead 0b10 0o77"), vec![Tok::LitNum; 3]);
        assert_eq!(kinds("1_000u64"), vec![Tok::LitNum]);
        assert_eq!(kinds("0.5f32"), vec![Tok::LitFloat]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#type"), vec![Tok::Ident("type".into())]);
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
        // Block comments advance the line counter too.
        let toks = lex("/* one\ntwo */ x");
        assert_eq!(toks[0].line, 2);
    }
}
