//! `pcqe-lint` — the in-repo static invariant analyzer.
//!
//! PR 1 made the engine deterministic-by-construction (bit-identical
//! results at any worker count) and hermetic (no registry dependencies).
//! Those properties were guarded only at the edges: a determinism test
//! and a dependency grep. This crate moves the invariants into a static
//! analysis pass that fails CI the moment a violating pattern is
//! *written*, instead of hoping a test notices the symptom later.
//!
//! The analyzer is std-only — no `syn`, no registry crates — and works
//! in two layers:
//!
//! 1. **Token layer.** Every Rust source is tokenized by a hand-rolled
//!    lexer ([`lexer`]) and matched against small token-window patterns
//!    ([`rules`]).
//! 2. **Graph layer.** The same token streams feed a lightweight item
//!    parser ([`item`]: fns, impls, `use` trees, visibility, per-fn call
//!    and panic sites), whose output links into a workspace-wide
//!    resolved call graph ([`graph`]) powering *reachability* rules —
//!    properties that hold along every path, not just at the call sites
//!    a token window happens to see.
//!
//! | rule | layer | protects | statement |
//! |------|-------|----------|-----------|
//! | `PCQE-D001` | token | determinism | no `HashMap`/`HashSet` in result-affecting crates |
//! | `PCQE-D002` | token | determinism | no RNG construction outside `pcqe-lineage::rng` |
//! | `PCQE-D003` | token | determinism | no `std::thread` outside `crates/par` |
//! | `PCQE-D004` | token | determinism | float compare/order through `pcqe_core::ord` only |
//! | `PCQE-C001` | token | determinism | `Mutex`/`RwLock`/`Atomic*`/`mpsc` contained to `pcqe-par`/`pcqe-obs` |
//! | `PCQE-G001` | graph | compliance | query entry points release rows only below the policy gate |
//! | `PCQE-H001` | manifest | hermeticity | only path deps in default-workspace manifests |
//! | `PCQE-P001` | token | panic-safety | no `unwrap`/`expect`/`panic!` in guarded library code |
//! | `PCQE-P002` | graph | panic-safety | no panic construct *reachable* from guarded public API |
//! | `PCQE-T001` | token | determinism | wall clock only in `crates/bench` + `core::clock` |
//! | `PCQE-A001` | hygiene | hygiene | allowlist entries must suppress something |
//! | `PCQE-A002` | hygiene | hygiene | allowlist entries must carry a non-empty reason |
//!
//! Justified exceptions live in `lint-allow.toml` ([`allowlist`]) with a
//! required reason; stale entries are themselves errors. Reports come in
//! human and JSON form ([`report`]). Run it as `cargo run -p pcqe-lint`,
//! via `ci.sh`, or through the tier-1 test `tests/lint_guard.rs`.

pub mod allowlist;
pub mod graph;
pub mod item;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod walk;

use allowlist::AllowEntry;
use rules::{Finding, Rule};
use std::fs;
use std::path::Path;

/// The outcome of scanning a tree.
#[derive(Debug)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by (path, line, rule code). Includes
    /// `PCQE-A001` findings for stale allowlist entries.
    pub findings: Vec<Finding>,
    /// Findings silenced by an allowlist entry, with the entry's reason.
    pub suppressed: Vec<(Finding, String)>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Manifests checked by H001.
    pub manifests_scanned: usize,
}

impl Analysis {
    /// Does the analysis gate (any error-severity finding)?
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }
}

/// Failures of the analyzer itself (not rule findings).
#[derive(Debug)]
pub enum LintError {
    /// Filesystem problems reading the tree.
    Io(String),
    /// The allowlist file failed to parse or was explicitly requested but
    /// missing.
    Allowlist(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(m) => write!(f, "io error: {m}"),
            LintError::Allowlist(m) => write!(f, "allowlist error: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Name of the allowlist file looked up at the scan root by default.
pub const DEFAULT_ALLOWLIST: &str = "lint-allow.toml";

/// Analyze the tree at `root`.
///
/// `allowlist_path`: `None` uses `<root>/lint-allow.toml` when present
/// (absence means an empty allowlist); `Some(path)` must exist.
pub fn analyze(root: &Path, allowlist_path: Option<&Path>) -> Result<Analysis, LintError> {
    let io = |e: std::io::Error, what: &str| LintError::Io(format!("{what}: {e}"));

    // --- Allowlist -----------------------------------------------------
    let entries: Vec<AllowEntry> = match allowlist_path {
        Some(p) => {
            let text = fs::read_to_string(p)
                .map_err(|e| LintError::Allowlist(format!("{}: {e}", p.display())))?;
            allowlist::parse(&text, &p.display().to_string()).map_err(LintError::Allowlist)?
        }
        None => {
            let p = root.join(DEFAULT_ALLOWLIST);
            if p.is_file() {
                let text = fs::read_to_string(&p).map_err(|e| io(e, DEFAULT_ALLOWLIST))?;
                allowlist::parse(&text, DEFAULT_ALLOWLIST).map_err(LintError::Allowlist)?
            } else {
                Vec::new()
            }
        }
    };

    // --- Scan ----------------------------------------------------------
    // Each file is lexed once; the token stream feeds both the token
    // rules and the item parser, whose output links into the workspace
    // call graph for the reachability rules (P002, G001).
    let mut raw: Vec<Finding> = Vec::new();
    let mut items: Vec<item::FileItems> = Vec::new();
    let sources = walk::rust_sources(root).map_err(|e| io(e, "walking sources"))?;
    for rel in &sources {
        if rules::FileClass::classify(rel).is_test_code {
            continue;
        }
        let text = fs::read_to_string(root.join(rel)).map_err(|e| io(e, rel))?;
        let toks = lexer::lex(&text);
        let mask = rules::test_region_mask(&toks);
        rules::check_tokens(rel, &toks, &mask, &mut raw);
        // The analyzer itself and the detached bench workspace stay out
        // of the call graph: no guarded product crate can depend on the
        // dev tooling (H001 enforces path-only deps), so a name-collision
        // edge into them is spurious by construction.
        if !rel.starts_with("crates/lint/") && !rel.starts_with("crates/bench/") {
            items.push(item::collect(rel, &toks, &mask));
        }
    }
    let call_graph = graph::CallGraph::build(&items);
    graph::panic_reachability(&call_graph, &mut raw);
    graph::policy_gating(&call_graph, &mut raw);
    let manifests = walk::workspace_manifests(root).map_err(|e| io(e, "walking manifests"))?;
    for rel in &manifests {
        let text = fs::read_to_string(root.join(rel)).map_err(|e| io(e, rel))?;
        manifest::check_manifest(rel, &text, &mut raw);
    }

    // --- Suppress ------------------------------------------------------
    let mut used = vec![0usize; entries.len()];
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed: Vec<(Finding, String)> = Vec::new();
    for f in raw {
        let hit = entries.iter().position(|e| {
            e.rule == f.rule && e.path == f.path && e.line.is_none_or(|l| l == f.line)
        });
        match hit {
            Some(idx) => {
                used[idx] += 1;
                suppressed.push((f, entries[idx].reason.clone()));
            }
            None => findings.push(f),
        }
    }

    // --- Allowlist hygiene (A001 stale, A002 unreasoned) ---------------
    let allow_name = allowlist_path
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| DEFAULT_ALLOWLIST.to_owned());
    for entry in &entries {
        if entry.reason.trim().is_empty() {
            findings.push(Finding {
                rule: Rule::A002,
                path: allow_name.clone(),
                line: entry.declared_at,
                message: format!(
                    "allowlist entry for {} at `{}`{} has no `reason`; every \
                     exception must say why it is sound",
                    entry.rule.code(),
                    entry.path,
                    entry.line.map(|l| format!(" line {l}")).unwrap_or_default(),
                ),
            });
        }
    }
    for (idx, entry) in entries.iter().enumerate() {
        if used[idx] == 0 {
            findings.push(Finding {
                rule: Rule::A001,
                path: allow_name.clone(),
                line: entry.declared_at,
                message: format!(
                    "stale allowlist entry: no {} finding at `{}`{} — delete the \
                     entry (reason was: {})",
                    entry.rule.code(),
                    entry.path,
                    entry.line.map(|l| format!(" line {l}")).unwrap_or_default(),
                    entry.reason
                ),
            });
        }
    }

    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.code().cmp(b.rule.code()))
    });

    Ok(Analysis {
        findings,
        suppressed,
        files_scanned: sources.len(),
        manifests_scanned: manifests.len(),
    })
}
