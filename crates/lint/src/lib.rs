//! `pcqe-lint` — the in-repo static invariant analyzer.
//!
//! PR 1 made the engine deterministic-by-construction (bit-identical
//! results at any worker count) and hermetic (no registry dependencies).
//! Those properties were guarded only at the edges: a determinism test
//! and a dependency grep. This crate moves the invariants into a static
//! analysis pass that fails CI the moment a violating pattern is
//! *written*, instead of hoping a test notices the symptom later.
//!
//! The analyzer is std-only — no `syn`, no registry crates — and
//! tokenizes every Rust source in the workspace with a hand-rolled lexer
//! ([`lexer`]), then matches small token-window patterns ([`rules`]):
//!
//! | rule | protects | statement |
//! |------|----------|-----------|
//! | `PCQE-D001` | determinism | no `HashMap`/`HashSet` in result-affecting crates |
//! | `PCQE-D002` | determinism | no RNG construction outside `pcqe-lineage::rng` |
//! | `PCQE-D003` | determinism | no `std::thread` outside `crates/par` |
//! | `PCQE-H001` | hermeticity | only path deps in default-workspace manifests |
//! | `PCQE-P001` | panic-safety | no `unwrap`/`expect`/`panic!` in guarded library code |
//! | `PCQE-T001` | determinism | wall clock only in `crates/bench` + `core::clock` |
//! | `PCQE-A001` | hygiene | allowlist entries must suppress something |
//!
//! Justified exceptions live in `lint-allow.toml` ([`allowlist`]) with a
//! required reason; stale entries are themselves errors. Reports come in
//! human and JSON form ([`report`]). Run it as `cargo run -p pcqe-lint`,
//! via `ci.sh`, or through the tier-1 test `tests/lint_guard.rs`.

pub mod allowlist;
pub mod lexer;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod walk;

use allowlist::AllowEntry;
use rules::{Finding, Rule};
use std::fs;
use std::path::Path;

/// The outcome of scanning a tree.
#[derive(Debug)]
pub struct Analysis {
    /// Unsuppressed findings, sorted by (path, line, rule code). Includes
    /// `PCQE-A001` findings for stale allowlist entries.
    pub findings: Vec<Finding>,
    /// Findings silenced by an allowlist entry, with the entry's reason.
    pub suppressed: Vec<(Finding, String)>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Manifests checked by H001.
    pub manifests_scanned: usize,
}

impl Analysis {
    /// Does the analysis gate (any error-severity finding)?
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }
}

/// Failures of the analyzer itself (not rule findings).
#[derive(Debug)]
pub enum LintError {
    /// Filesystem problems reading the tree.
    Io(String),
    /// The allowlist file failed to parse or was explicitly requested but
    /// missing.
    Allowlist(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(m) => write!(f, "io error: {m}"),
            LintError::Allowlist(m) => write!(f, "allowlist error: {m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Name of the allowlist file looked up at the scan root by default.
pub const DEFAULT_ALLOWLIST: &str = "lint-allow.toml";

/// Analyze the tree at `root`.
///
/// `allowlist_path`: `None` uses `<root>/lint-allow.toml` when present
/// (absence means an empty allowlist); `Some(path)` must exist.
pub fn analyze(root: &Path, allowlist_path: Option<&Path>) -> Result<Analysis, LintError> {
    let io = |e: std::io::Error, what: &str| LintError::Io(format!("{what}: {e}"));

    // --- Allowlist -----------------------------------------------------
    let entries: Vec<AllowEntry> = match allowlist_path {
        Some(p) => {
            let text = fs::read_to_string(p)
                .map_err(|e| LintError::Allowlist(format!("{}: {e}", p.display())))?;
            allowlist::parse(&text, &p.display().to_string()).map_err(LintError::Allowlist)?
        }
        None => {
            let p = root.join(DEFAULT_ALLOWLIST);
            if p.is_file() {
                let text = fs::read_to_string(&p).map_err(|e| io(e, DEFAULT_ALLOWLIST))?;
                allowlist::parse(&text, DEFAULT_ALLOWLIST).map_err(LintError::Allowlist)?
            } else {
                Vec::new()
            }
        }
    };

    // --- Scan ----------------------------------------------------------
    let mut raw: Vec<Finding> = Vec::new();
    let sources = walk::rust_sources(root).map_err(|e| io(e, "walking sources"))?;
    for rel in &sources {
        let text = fs::read_to_string(root.join(rel)).map_err(|e| io(e, rel))?;
        rules::check_source(rel, &text, &mut raw);
    }
    let manifests = walk::workspace_manifests(root).map_err(|e| io(e, "walking manifests"))?;
    for rel in &manifests {
        let text = fs::read_to_string(root.join(rel)).map_err(|e| io(e, rel))?;
        manifest::check_manifest(rel, &text, &mut raw);
    }

    // --- Suppress ------------------------------------------------------
    let mut used = vec![0usize; entries.len()];
    let mut findings: Vec<Finding> = Vec::new();
    let mut suppressed: Vec<(Finding, String)> = Vec::new();
    for f in raw {
        let hit = entries.iter().position(|e| {
            e.rule == f.rule && e.path == f.path && e.line.is_none_or(|l| l == f.line)
        });
        match hit {
            Some(idx) => {
                used[idx] += 1;
                suppressed.push((f, entries[idx].reason.clone()));
            }
            None => findings.push(f),
        }
    }

    // --- Stale allowlist entries ---------------------------------------
    let allow_name = allowlist_path
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| DEFAULT_ALLOWLIST.to_owned());
    for (idx, entry) in entries.iter().enumerate() {
        if used[idx] == 0 {
            findings.push(Finding {
                rule: Rule::A001,
                path: allow_name.clone(),
                line: entry.declared_at,
                message: format!(
                    "stale allowlist entry: no {} finding at `{}`{} — delete the \
                     entry (reason was: {})",
                    entry.rule.code(),
                    entry.path,
                    entry.line.map(|l| format!(" line {l}")).unwrap_or_default(),
                    entry.reason
                ),
            });
        }
    }

    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.code().cmp(b.rule.code()))
    });

    Ok(Analysis {
        findings,
        suppressed,
        files_scanned: sources.len(),
        manifests_scanned: manifests.len(),
    })
}
